//! Catalog statistics for cost-based planning.
//!
//! The paper's closing argument (§7) is that join queries beat nested
//! loops *because* the optimizer can choose among many set-oriented
//! implementations. Choosing needs numbers: per-extent cardinalities,
//! per-attribute distinct counts, and — specific to complex objects —
//! the average size of set-valued attributes (the fan-out of the §6.2
//! materialization patterns). [`CatalogStats`] carries those numbers,
//! either collected from a populated [`Database`] or synthesized from
//! generator parameters (see `oodb_datagen`).

use crate::Database;
use oodb_value::fxhash::{FxHashMap, FxHashSet};
use oodb_value::{Name, Value};

/// Statistics for one attribute of one extent.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Number of distinct values. For set-valued attributes this counts
    /// distinct *elements* across all sets (the domain the elements key
    /// into), not distinct sets.
    pub distinct: u64,
    /// Mean cardinality of the attribute when it is set-valued
    /// (`None` for scalar attributes).
    pub avg_set_len: Option<f64>,
}

/// Statistics for one extent (base table).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Number of stored objects.
    pub rows: u64,
    /// Per-attribute statistics.
    pub attrs: FxHashMap<Name, AttrStats>,
    /// Mean encoded row width in bytes
    /// ([`oodb_value::codec::encoded_size`]) — what the external-memory
    /// subsystem's spill-volume estimates are denominated in. `None`
    /// when unknown (synthetic statistics may approximate it).
    pub avg_row_bytes: Option<f64>,
}

/// Per-extent statistics over a whole object base.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogStats {
    tables: FxHashMap<Name, TableStats>,
    /// Observed per-operator output cardinalities from executed plans,
    /// keyed by operator label (e.g. `Scan(SUPPLIER)`, `Filter`). Fed by
    /// [`CatalogStats::absorb_observed`], consumed by the cost model as
    /// an override when a re-planned query contains the same operator —
    /// the adaptive feedback loop.
    observed: FxHashMap<String, u64>,
}

/// Two cardinalities differ *materially* when one is more than twice
/// the other (or exactly one of them is zero) — the tolerance that
/// decides whether absorbing an observation should trigger
/// re-optimization. A loose band keeps the feedback loop convergent:
/// re-planning with observed numbers reproduces the same observations,
/// so the second absorption is a no-op and cached plans stabilize.
fn materially_differs(old: u64, new: u64) -> bool {
    if old == new {
        return false;
    }
    if old == 0 || new == 0 {
        return true;
    }
    let (lo, hi) = (old.min(new) as f64, old.max(new) as f64);
    hi / lo > 2.0
}

impl CatalogStats {
    /// An empty statistics set (every lookup answers `None`).
    pub fn new() -> Self {
        CatalogStats::default()
    }

    /// Collects exact statistics by scanning every extent of `db`.
    pub fn from_database(db: &Database) -> Self {
        let mut stats = CatalogStats::new();
        for class in db.catalog().classes() {
            let Some(table) = db.table(&class.extent) else {
                continue;
            };
            let total_bytes: usize = table.rows().map(oodb_value::codec::encoded_row_size).sum();
            let mut ts = TableStats {
                rows: table.len() as u64,
                attrs: FxHashMap::default(),
                avg_row_bytes: (!table.is_empty()).then(|| total_bytes as f64 / table.len() as f64),
            };
            for (attr, _) in class.attrs.iter() {
                let mut distinct: FxHashSet<&Value> = FxHashSet::default();
                let mut set_lens: Option<(u64, u64)> = None; // (sets, total elems)
                for row in table.rows() {
                    match row.get(attr) {
                        Some(Value::Set(s)) => {
                            let (n, total) = set_lens.unwrap_or((0, 0));
                            set_lens = Some((n + 1, total + s.len() as u64));
                            for elem in s.iter() {
                                distinct.insert(elem);
                            }
                        }
                        Some(v) => {
                            distinct.insert(v);
                        }
                        None => {}
                    }
                }
                ts.attrs.insert(
                    attr.clone(),
                    AttrStats {
                        distinct: distinct.len() as u64,
                        avg_set_len: set_lens.map(|(n, total)| total as f64 / (n as f64).max(1.0)),
                    },
                );
            }
            stats.tables.insert(class.extent.clone(), ts);
        }
        stats
    }

    /// Registers (or replaces) statistics for an extent — used by
    /// synthesized statistics providers.
    pub fn set_table(&mut self, extent: Name, stats: TableStats) {
        self.tables.insert(extent, stats);
    }

    /// Statistics for an extent.
    pub fn table(&self, extent: &str) -> Option<&TableStats> {
        self.tables.get(extent)
    }

    /// Cardinality of an extent.
    pub fn cardinality(&self, extent: &str) -> Option<u64> {
        self.table(extent).map(|t| t.rows)
    }

    /// Distinct-value count of `extent.attr`.
    pub fn distinct(&self, extent: &str, attr: &str) -> Option<u64> {
        self.table(extent)
            .and_then(|t| t.attrs.get(attr))
            .map(|a| a.distinct)
    }

    /// Average set size of a set-valued `extent.attr` (`None` when the
    /// attribute is scalar or unknown).
    pub fn avg_set_len(&self, extent: &str, attr: &str) -> Option<f64> {
        self.table(extent)
            .and_then(|t| t.attrs.get(attr))
            .and_then(|a| a.avg_set_len)
    }

    /// Mean encoded row width of an extent in bytes (`None` when
    /// unknown).
    pub fn avg_row_bytes(&self, extent: &str) -> Option<f64> {
        self.table(extent).and_then(|t| t.avg_row_bytes)
    }

    /// True when no statistics are present at all.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Folds measured per-operator output cardinalities (label →
    /// `rows_out`, as produced by `Stats::operator_rows_by_label` after
    /// executing a plan) back into the statistics. `Scan(EXTENT)` rows
    /// update the extent cardinality itself; every label lands in the
    /// observed-cardinality override map the cost model consults on the
    /// next planning round.
    ///
    /// Returns `true` when any observation **materially** changed what
    /// the statistics previously claimed (more than 2× off, or a
    /// first-time observation of a label) — the signal that cached
    /// plans priced on the old numbers should be invalidated. Absorbing
    /// the same profile twice returns `false`, so the feedback loop
    /// converges instead of invalidating forever.
    pub fn absorb_observed<'p>(
        &mut self,
        profile: impl IntoIterator<Item = (&'p str, u64)>,
    ) -> bool {
        let mut material = false;
        for (label, rows) in profile {
            if let Some(extent) = label
                .strip_prefix("Scan(")
                .and_then(|rest| rest.strip_suffix(')'))
            {
                if let Some(t) = self.tables.get_mut(extent) {
                    if materially_differs(t.rows, rows) {
                        material = true;
                    }
                    t.rows = rows;
                }
            }
            match self.observed.get(label) {
                None => material = true,
                Some(&old) if materially_differs(old, rows) => material = true,
                Some(_) => {}
            }
            self.observed.insert(label.to_string(), rows);
        }
        material
    }

    /// The observed output cardinality previously absorbed for an
    /// operator label, if any.
    pub fn observed_rows(&self, label: &str) -> Option<u64> {
        self.observed.get(label).copied()
    }

    /// Whether any execution feedback has been absorbed.
    pub fn has_observations(&self) -> bool {
        !self.observed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::supplier_part_db;

    #[test]
    fn collects_cardinalities_and_distincts() {
        let db = supplier_part_db();
        let s = CatalogStats::from_database(&db);
        assert_eq!(s.cardinality("PART"), Some(7));
        assert_eq!(s.cardinality("SUPPLIER"), Some(5));
        assert_eq!(s.cardinality("DELIVERY"), Some(3));
        // 7 distinct pids, 4 distinct colors in the fixture
        assert_eq!(s.distinct("PART", "pid"), Some(7));
        assert_eq!(s.distinct("PART", "color"), Some(4));
        assert_eq!(s.cardinality("NOPE"), None);
        assert_eq!(s.distinct("PART", "nope"), None);
    }

    #[test]
    fn set_valued_attrs_get_avg_len_and_element_domain() {
        let db = supplier_part_db();
        let s = CatalogStats::from_database(&db);
        // s1..s5 supply 3+2+4+0+2 = 11 part refs over 5 suppliers
        let avg = s.avg_set_len("SUPPLIER", "parts").unwrap();
        assert!((avg - 11.0 / 5.0).abs() < 1e-9, "avg {avg}");
        // element domain: distinct referenced oids (11..14, 17, 999) = 6
        assert_eq!(s.distinct("SUPPLIER", "parts"), Some(6));
        // scalar attr has no set length
        assert_eq!(s.avg_set_len("PART", "color"), None);
    }

    #[test]
    fn empty_and_synthetic_tables() {
        let mut s = CatalogStats::new();
        assert!(s.is_empty());
        let mut ts = TableStats {
            rows: 1000,
            attrs: FxHashMap::default(),
            avg_row_bytes: None,
        };
        ts.attrs.insert(
            Name::from("k"),
            AttrStats {
                distinct: 1000,
                avg_set_len: None,
            },
        );
        s.set_table(Name::from("T"), ts);
        assert_eq!(s.cardinality("T"), Some(1000));
        assert_eq!(s.distinct("T", "k"), Some(1000));
        assert!(!s.is_empty());
    }

    #[test]
    fn absorb_observed_updates_scans_and_converges() {
        let mut s = CatalogStats::new();
        s.set_table(
            Name::from("T"),
            TableStats {
                rows: 1000,
                attrs: FxHashMap::default(),
                avg_row_bytes: None,
            },
        );
        assert!(!s.has_observations());
        // First absorption: scan cardinality corrected, new labels are
        // material.
        let material = s.absorb_observed([("Scan(T)", 120), ("Filter", 7)]);
        assert!(material, "first observation is material");
        assert_eq!(s.cardinality("T"), Some(120));
        assert_eq!(s.observed_rows("Filter"), Some(7));
        assert!(s.has_observations());
        // Same profile again: converged, nothing material.
        assert!(!s.absorb_observed([("Scan(T)", 120), ("Filter", 7)]));
        // Small drift stays within the 2x band.
        assert!(!s.absorb_observed([("Filter", 9)]));
        assert_eq!(s.observed_rows("Filter"), Some(9));
        // A >2x shift is material again.
        assert!(s.absorb_observed([("Filter", 40)]));
    }
}

//! Class catalog and object store for the OODB reproduction.
//!
//! The paper's mapping of OOSQL types to ADL (§3): *"each class extension
//! is mapped to a table of (possibly complex) objects; a field of type oid
//! is added to represent object identity, and class references are
//! implemented by pointers, also of type oid"*. Analogous to relational
//! convention, class extensions are called **base tables** (§2).
//!
//! This crate provides
//! * [`ClassDef`] — structural class definitions (name, extent, attributes,
//!   identity field);
//! * [`Catalog`] — the schema: classes indexed by class name and by extent
//!   name;
//! * [`Table`] — an extent: tuples plus an oid → row index (the *physical
//!   pointer* map that the materialize/assembly operator of §6.2 exploits);
//! * [`Database`] — catalog plus populated extents;
//! * [`fixtures`] — the paper's supplier–part database (§2) and the exact
//!   example tables of Figures 1–3.

pub mod class;
pub mod database;
pub mod error;
pub mod fixtures;
pub mod stats;
pub mod table;

pub use class::ClassDef;
pub use database::{Catalog, Database};
pub use error::CatalogError;
pub use stats::{AttrStats, CatalogStats, TableStats};
pub use table::Table;

//! Structural class definitions.

use crate::CatalogError;
use oodb_value::{Name, TupleType, Type};
use std::fmt;

/// A class with an extension (base table), as in the paper's §2 schema:
///
/// ```text
/// Class Supplier with extension SUPPLIER
/// attributes
///   sname : string,
///   parts_supplied : { Part }
/// end Supplier
/// ```
///
/// Following the §3 mapping, the attribute list here already contains the
/// added identity field of type `oid⟨Self⟩` (named by `identity`), and
/// class-typed attributes have been lowered to `oid⟨Class⟩` pointers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name, e.g. `Supplier`.
    pub name: Name,
    /// Extension (base table) name, e.g. `SUPPLIER`.
    pub extent: Name,
    /// Identity attribute, e.g. `eid`; has type `oid⟨name⟩` in `attrs`.
    pub identity: Name,
    /// All attributes, including the identity field.
    pub attrs: TupleType,
}

impl ClassDef {
    /// Builds a class definition, validating the identity field.
    pub fn new(
        name: Name,
        extent: Name,
        identity: Name,
        attrs: TupleType,
    ) -> Result<Self, CatalogError> {
        match attrs.field(&identity) {
            Some(Type::Oid(Some(class))) if *class == name => {}
            _ => {
                return Err(CatalogError::BadIdentityField {
                    class: name,
                    field: identity,
                })
            }
        }
        Ok(ClassDef {
            name,
            extent,
            identity,
            attrs,
        })
    }

    /// The type of one object of this class: a tuple of `attrs`.
    pub fn object_type(&self) -> Type {
        Type::Tuple(self.attrs.clone())
    }

    /// The type of the class extension: a set of objects — what the paper's
    /// §4 example writes as
    /// `SUPPLIER : {⟨eid : oid, sname : string, parts : {…}⟩}`.
    pub fn extent_type(&self) -> Type {
        Type::set(self.object_type())
    }

    /// The class names referenced by this class's attributes (directly or
    /// inside set/tuple constructors).
    pub fn referenced_classes(&self) -> Vec<Name> {
        let mut out = Vec::new();
        for (_, t) in self.attrs.iter() {
            collect_refs(t, &mut out);
        }
        out.sort();
        out.dedup();
        out
    }
}

fn collect_refs(t: &Type, out: &mut Vec<Name>) {
    match t {
        Type::Oid(Some(c)) => out.push(c.clone()),
        Type::Set(e) => collect_refs(e, out),
        Type::Tuple(tt) => {
            for (_, ft) in tt.iter() {
                collect_refs(ft, out);
            }
        }
        _ => {}
    }
}

impl fmt::Display for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Class {} with extension {}", self.name, self.extent)?;
        writeln!(f, "attributes")?;
        let mut first = true;
        for (n, t) in self.attrs.iter() {
            if !first {
                writeln!(f, ",")?;
            }
            write!(f, "  {n} : {t}")?;
            first = false;
        }
        writeln!(f)?;
        write!(f, "end {}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_value::name;

    fn supplier() -> ClassDef {
        ClassDef::new(
            name("Supplier"),
            name("SUPPLIER"),
            name("eid"),
            TupleType::from_pairs([
                ("eid", Type::Oid(Some(name("Supplier")))),
                ("sname", Type::Str),
                ("parts", Type::set(Type::Oid(Some(name("Part"))))),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn identity_field_must_be_self_oid() {
        let bad = ClassDef::new(
            name("Supplier"),
            name("SUPPLIER"),
            name("eid"),
            TupleType::from_pairs([("eid", Type::Int)]),
        );
        assert!(matches!(bad, Err(CatalogError::BadIdentityField { .. })));
        let missing = ClassDef::new(
            name("Supplier"),
            name("SUPPLIER"),
            name("eid"),
            TupleType::from_pairs([("sname", Type::Str)]),
        );
        assert!(missing.is_err());
    }

    #[test]
    fn extent_type_is_set_of_objects() {
        let s = supplier();
        assert!(s.extent_type().is_set());
        assert_eq!(s.extent_type().elem(), Some(&s.object_type()));
        let sch = s.extent_type().sch().unwrap();
        assert!(sch.iter().any(|n| n.as_ref() == "sname"));
    }

    #[test]
    fn referenced_classes_found_through_sets() {
        let s = supplier();
        let refs = s.referenced_classes();
        assert!(refs.contains(&name("Part")));
        assert!(refs.contains(&name("Supplier"))); // its own identity oid
    }

    #[test]
    fn display_matches_paper_shape() {
        let text = supplier().to_string();
        assert!(text.starts_with("Class Supplier with extension SUPPLIER"));
        assert!(text.contains("sname : string"));
        assert!(text.ends_with("end Supplier"));
    }
}

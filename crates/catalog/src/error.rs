//! Catalog and store errors.

use oodb_value::{Name, Oid};
use std::fmt;

/// Errors raised when building or mutating the catalog / database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Two classes share a name.
    DuplicateClass(Name),
    /// Two classes share an extent name.
    DuplicateExtent(Name),
    /// A class referenced another class that is not defined.
    UnknownClass(Name),
    /// An extent name that the catalog does not know.
    UnknownExtent(Name),
    /// The declared identity attribute is missing from the class's
    /// attribute list or has the wrong type.
    BadIdentityField { class: Name, field: Name },
    /// Inserted tuple does not match the class's attribute types.
    SchemaViolation { extent: Name, detail: String },
    /// Two objects in one extent carry the same oid.
    DuplicateOid { extent: Name, oid: Oid },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            CatalogError::DuplicateExtent(n) => write!(f, "duplicate extent `{n}`"),
            CatalogError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            CatalogError::UnknownExtent(n) => write!(f, "unknown extent `{n}`"),
            CatalogError::BadIdentityField { class, field } => {
                write!(
                    f,
                    "class `{class}` identity field `{field}` missing or not an oid"
                )
            }
            CatalogError::SchemaViolation { extent, detail } => {
                write!(f, "schema violation inserting into `{extent}`: {detail}")
            }
            CatalogError::DuplicateOid { extent, oid } => {
                write!(f, "duplicate oid {oid} in extent `{extent}`")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_value::name;

    #[test]
    fn display_mentions_offender() {
        assert!(CatalogError::UnknownExtent(name("NOPE"))
            .to_string()
            .contains("NOPE"));
        let e = CatalogError::DuplicateOid {
            extent: name("PART"),
            oid: Oid(3),
        };
        assert!(e.to_string().contains("@3"));
    }
}

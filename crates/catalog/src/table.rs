//! Extents (base tables) with oid indexes.

use crate::CatalogError;
use oodb_value::fxhash::FxHashMap;
use oodb_value::{Name, Oid, Set, Tuple, Value};

/// A populated class extension: a table of complex objects.
///
/// Rows are stored in insertion order (scans are cheap and deterministic);
/// the `oid → row` index makes object identifiers behave like *physical*
/// pointers, which is the property pointer-based joins (assembly, §6.2)
/// rely on. Set-valued attributes are stored inline with their tuple —
/// the paper's "assuming set-valued attributes are stored clustered" (§3),
/// which is why unnesting them is undesirable.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Identity attribute name within each row tuple.
    identity: Name,
    rows: Vec<Tuple>,
    oid_index: FxHashMap<Oid, usize>,
    /// Secondary hash indexes: attribute → (value → row positions). These
    /// back the *index nested-loop join* the paper lists among the join
    /// implementations unnesting makes available (§6).
    secondary: FxHashMap<Name, FxHashMap<Value, Vec<usize>>>,
    /// Monotonic write counter: bumped by every successful [`Table::insert`]
    /// and [`Table::create_index`]. Caches keyed on query results (the
    /// server's plan/result caches) stamp entries with the versions of the
    /// extents they read and treat any bump as invalidation.
    version: u64,
}

impl Table {
    /// An empty table whose rows carry their oid in attribute `identity`.
    pub fn new(identity: Name) -> Self {
        Table {
            identity,
            rows: Vec::new(),
            oid_index: FxHashMap::default(),
            secondary: FxHashMap::default(),
            version: 0,
        }
    }

    /// The extent's write version (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Builds (or rebuilds) a secondary hash index on `attr`. Rows lacking
    /// the attribute are rejected.
    pub fn create_index(&mut self, attr: &Name) -> Result<(), CatalogError> {
        let mut idx: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
        for (i, row) in self.rows.iter().enumerate() {
            let v = row.get(attr).ok_or_else(|| CatalogError::SchemaViolation {
                extent: self.identity.clone(),
                detail: format!("cannot index missing attribute `{attr}`"),
            })?;
            idx.entry(v.clone()).or_default().push(i);
        }
        self.secondary.insert(attr.clone(), idx);
        self.version += 1;
        Ok(())
    }

    /// True if a secondary index exists on `attr`.
    pub fn has_index(&self, attr: &str) -> bool {
        self.secondary.contains_key(attr)
    }

    /// Probes the secondary index on `attr` for `key`, yielding the
    /// matching rows. `None` when no such index exists.
    pub fn index_probe(&self, attr: &str, key: &Value) -> Option<Vec<&Tuple>> {
        let idx = self.secondary.get(attr)?;
        Some(
            idx.get(key)
                .map(|rows| rows.iter().map(|&i| &self.rows[i]).collect())
                .unwrap_or_default(),
        )
    }

    /// Name of the identity attribute.
    pub fn identity(&self) -> &Name {
        &self.identity
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts an object; maintains the oid index. The caller (the
    /// [`crate::Database`]) has already schema-checked the tuple.
    pub fn insert(&mut self, extent: &Name, row: Tuple) -> Result<(), CatalogError> {
        let oid = row
            .get(&self.identity)
            .and_then(|v| v.as_oid().ok())
            .ok_or_else(|| CatalogError::SchemaViolation {
                extent: extent.clone(),
                detail: format!("missing oid attribute `{}`", self.identity),
            })?;
        if self.oid_index.insert(oid, self.rows.len()).is_some() {
            return Err(CatalogError::DuplicateOid {
                extent: extent.clone(),
                oid,
            });
        }
        let pos = self.rows.len();
        for (attr, idx) in self.secondary.iter_mut() {
            let v = row.get(attr).ok_or_else(|| CatalogError::SchemaViolation {
                extent: extent.clone(),
                detail: format!("indexed attribute `{attr}` missing"),
            })?;
            idx.entry(v.clone()).or_default().push(pos);
        }
        self.rows.push(row);
        self.version += 1;
        Ok(())
    }

    /// Row lookup by oid — the pointer dereference behind the materialize
    /// operator.
    pub fn by_oid(&self, oid: Oid) -> Option<&Tuple> {
        self.oid_index.get(&oid).map(|&i| &self.rows[i])
    }

    /// Scans rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Row access by position (used by generators).
    pub fn row(&self, i: usize) -> Option<&Tuple> {
        self.rows.get(i)
    }

    /// All oids in this extent, in insertion order.
    pub fn oids(&self) -> impl Iterator<Item = Oid> + '_ {
        let id = self.identity.clone();
        self.rows
            .iter()
            .filter_map(move |r| r.get(&id).and_then(|v| v.as_oid().ok()))
    }

    /// The extent as an ADL set value (what a `Table` leaf of an ADL
    /// expression evaluates to).
    pub fn as_set_value(&self) -> Value {
        Value::Set(Set::from_values(
            self.rows.iter().cloned().map(Value::Tuple).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_value::name;

    fn row(oid: u64, pname: &str) -> Tuple {
        Tuple::from_pairs([("pid", Value::Oid(Oid(oid))), ("pname", Value::str(pname))])
    }

    #[test]
    fn insert_and_lookup_by_oid() {
        let mut t = Table::new(name("pid"));
        t.insert(&name("PART"), row(1, "bolt")).unwrap();
        t.insert(&name("PART"), row(2, "nut")).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.by_oid(Oid(2)).unwrap().get("pname"),
            Some(&Value::str("nut"))
        );
        assert!(t.by_oid(Oid(9)).is_none());
    }

    #[test]
    fn duplicate_oid_rejected() {
        let mut t = Table::new(name("pid"));
        t.insert(&name("PART"), row(1, "bolt")).unwrap();
        let err = t.insert(&name("PART"), row(1, "nut")).unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateOid { .. }));
    }

    #[test]
    fn missing_identity_rejected() {
        let mut t = Table::new(name("pid"));
        let bad = Tuple::from_pairs([("pname", Value::str("bolt"))]);
        assert!(matches!(
            t.insert(&name("PART"), bad),
            Err(CatalogError::SchemaViolation { .. })
        ));
    }

    #[test]
    fn as_set_value_is_a_set_of_tuples() {
        let mut t = Table::new(name("pid"));
        t.insert(&name("PART"), row(2, "nut")).unwrap();
        t.insert(&name("PART"), row(1, "bolt")).unwrap();
        let v = t.as_set_value();
        let s = v.as_set().unwrap();
        assert_eq!(s.len(), 2);
        // oids enumerate in insertion order
        let oids: Vec<Oid> = t.oids().collect();
        assert_eq!(oids, vec![Oid(2), Oid(1)]);
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;
    use oodb_value::name;

    fn row(oid: u64, color: &str) -> Tuple {
        Tuple::from_pairs([("pid", Value::Oid(Oid(oid))), ("color", Value::str(color))])
    }

    #[test]
    fn create_and_probe_index() {
        let mut t = Table::new(name("pid"));
        t.insert(&name("PART"), row(1, "red")).unwrap();
        t.insert(&name("PART"), row(2, "blue")).unwrap();
        t.insert(&name("PART"), row(3, "red")).unwrap();
        assert!(!t.has_index("color"));
        t.create_index(&name("color")).unwrap();
        assert!(t.has_index("color"));
        let reds = t.index_probe("color", &Value::str("red")).unwrap();
        assert_eq!(reds.len(), 2);
        let none = t.index_probe("color", &Value::str("green")).unwrap();
        assert!(none.is_empty());
        assert!(t.index_probe("nope", &Value::str("red")).is_none());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = Table::new(name("pid"));
        t.create_index(&name("color")).unwrap();
        t.insert(&name("PART"), row(1, "red")).unwrap();
        t.insert(&name("PART"), row(2, "red")).unwrap();
        let reds = t.index_probe("color", &Value::str("red")).unwrap();
        assert_eq!(reds.len(), 2);
    }
}

//! The paper's example databases, as executable fixtures.
//!
//! * [`supplier_part_catalog`] / [`supplier_part_db`] — the §2 schema
//!   (`Supplier`, `Part`, `Delivery`) with a small hand-authored instance
//!   that exercises every example query of the paper, including a supplier
//!   violating referential integrity (Example Query 4) and a supplier with
//!   an empty `parts` set (the dangling-tuple cases of §5.2.2);
//! * [`figure12_db`] — the `X`/`Y` tables of Figures 1 and 2 (the Complex
//!   Object bug example);
//! * [`figure3_db`] — the `X`/`Y` tables of Figure 3 (the nestjoin
//!   example).
//!
//! Figure tables in the paper are plain relations without object identity;
//! our store keys every row by an oid, so the fixtures add surrogate
//! identity attributes (`xid`, `yid`). Tests project them away before
//! comparing against the paper's printed results.

use crate::{Catalog, ClassDef, Database};
use oodb_value::{name, Oid, Tuple, TupleType, Type, Value};

/// The §2 schema: Supplier / Part / Delivery, lowered per §3 (identity
/// oid fields added, class references as oid pointers).
///
/// ADL types, as printed in §4:
/// ```text
/// SUPPLIER : {⟨eid : oid, sname : string, parts : {oid⟨Part⟩}⟩}
/// PART     : {⟨pid : oid, pname : string, price : int, color : string⟩}
/// DELIVERY : {⟨did : oid, supplier : oid⟨Supplier⟩,
///              supply : {⟨part : oid⟨Part⟩, quantity : int⟩}, date : date⟩}
/// ```
/// (The paper's `parts : {⟨pid : oid⟩}` wraps each pointer in a unary
/// tuple; we store the oids directly — the two representations are
/// isomorphic and all rewrite rules are representation-agnostic.)
pub fn supplier_part_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_class(
        ClassDef::new(
            name("Supplier"),
            name("SUPPLIER"),
            name("eid"),
            TupleType::from_pairs([
                ("eid", Type::Oid(Some(name("Supplier")))),
                ("sname", Type::Str),
                ("parts", Type::set(Type::Oid(Some(name("Part"))))),
            ]),
        )
        .expect("valid Supplier class"),
    )
    .expect("fresh catalog");
    c.add_class(
        ClassDef::new(
            name("Part"),
            name("PART"),
            name("pid"),
            TupleType::from_pairs([
                ("pid", Type::Oid(Some(name("Part")))),
                ("pname", Type::Str),
                ("price", Type::Int),
                ("color", Type::Str),
            ]),
        )
        .expect("valid Part class"),
    )
    .expect("fresh catalog");
    c.add_class(
        ClassDef::new(
            name("Delivery"),
            name("DELIVERY"),
            name("did"),
            TupleType::from_pairs([
                ("did", Type::Oid(Some(name("Delivery")))),
                ("supplier", Type::Oid(Some(name("Supplier")))),
                (
                    "supply",
                    Type::set(Type::tuple([
                        ("part", Type::Oid(Some(name("Part")))),
                        ("quantity", Type::Int),
                    ])),
                ),
                ("date", Type::Date),
            ]),
        )
        .expect("valid Delivery class"),
    )
    .expect("fresh catalog");
    c
}

/// Part oids used by [`supplier_part_db`]; `DANGLING_PART` names no object.
pub const PART_OIDS: [u64; 7] = [11, 12, 13, 14, 15, 16, 17];
/// A pointer that violates referential integrity (Example Query 4).
pub const DANGLING_PART: u64 = 999;

/// A small, fully hand-authored supplier–part instance.
///
/// * `s1` supplies `{p1, p2, p3}`; `s2` supplies `{p2, p3}` (⊂ of s1's);
///   `s3` supplies `{p1, p2, p3, p4}` (⊇ of s1's — the answer to Example
///   Query 3.1 together with `s1` itself); `s4` supplies nothing (empty
///   set-valued attribute); `s5` supplies `{p7, @999}` — `@999` dangles,
///   making `s5` the answer to Example Query 4.
/// * Parts `p1`, `p3`, `p5` are red.
/// * `d1`/`d3` (both dated 940101, the date of Example Query 2) are by
///   `s1`; `d3` includes red parts, `d2` (by `s2`) does not.
pub fn supplier_part_db() -> Database {
    let mut db = Database::new(supplier_part_catalog()).expect("catalog is closed");

    let parts: [(u64, &str, i64, &str); 7] = [
        (11, "bolt", 10, "red"),
        (12, "nut", 5, "blue"),
        (13, "screw", 7, "red"),
        (14, "washer", 2, "green"),
        (15, "gear", 50, "red"),
        (16, "axle", 30, "blue"),
        (17, "pin", 1, "black"),
    ];
    for (pid, pname, price, color) in parts {
        db.insert(
            "PART",
            Tuple::from_pairs([
                ("pid", Value::Oid(Oid(pid))),
                ("pname", Value::str(pname)),
                ("price", Value::Int(price)),
                ("color", Value::str(color)),
            ]),
        )
        .expect("part row conforms");
    }

    let suppliers: [(u64, &str, &[u64]); 5] = [
        (1, "s1", &[11, 12, 13]),
        (2, "s2", &[12, 13]),
        (3, "s3", &[11, 12, 13, 14]),
        (4, "s4", &[]),
        (5, "s5", &[17, DANGLING_PART]),
    ];
    for (eid, sname, part_oids) in suppliers {
        db.insert(
            "SUPPLIER",
            Tuple::from_pairs([
                ("eid", Value::Oid(Oid(eid))),
                ("sname", Value::str(sname)),
                (
                    "parts",
                    Value::set(part_oids.iter().map(|&p| Value::Oid(Oid(p)))),
                ),
            ]),
        )
        .expect("supplier row conforms");
    }

    #[allow(clippy::type_complexity)]
    let deliveries: [(u64, u64, &[(u64, i64)], i64); 3] = [
        (21, 1, &[(11, 100), (12, 50)], 940101),
        (22, 2, &[(14, 10)], 940102),
        (23, 1, &[(13, 5), (15, 2)], 940101),
    ];
    for (did, supplier, supply, date) in deliveries {
        db.insert(
            "DELIVERY",
            Tuple::from_pairs([
                ("did", Value::Oid(Oid(did))),
                ("supplier", Value::Oid(Oid(supplier))),
                (
                    "supply",
                    Value::set(supply.iter().map(|&(p, q)| {
                        Value::tuple([("part", Value::Oid(Oid(p))), ("quantity", Value::Int(q))])
                    })),
                ),
                ("date", Value::Date(date)),
            ]),
        )
        .expect("delivery row conforms");
    }
    db
}

/// The `X`/`Y` tables of Figures 1 and 2.
///
/// Reconstructed from the running text of §5.2.2: the nested query is
/// `σ[x : x.c ⊆ α[y : y.e](σ[y : x.a = y.d](Y))](X)`; the tuple
/// `⟨a = 2, c = ∅⟩ ∈ X` is matched by no `y ∈ Y`, so its subquery result
/// is empty, `∅ ⊆ ∅` holds, and the tuple **must** appear in the result —
/// but the join of the GaWo87 transformation loses it (the Complex Object
/// bug). Column names follow the figure (`X(a, c)`, `Y(d, e)`, join
/// columns `a`/`d`), which keeps the join schemas disjoint.
///
/// ```text
/// X: a  c            Y: d  e
///    1  {1,2}           1  1
///    2  {}              1  2
///    3  {2,3}           1  3
///                       3  3
/// ```
pub fn figure12_db() -> Database {
    let mut cat = Catalog::new();
    cat.add_class(
        ClassDef::new(
            name("XRow"),
            name("X"),
            name("xid"),
            TupleType::from_pairs([
                ("xid", Type::Oid(Some(name("XRow")))),
                ("a", Type::Int),
                ("c", Type::set(Type::Int)),
            ]),
        )
        .expect("valid XRow class"),
    )
    .expect("fresh catalog");
    cat.add_class(
        ClassDef::new(
            name("YRow"),
            name("Y"),
            name("yid"),
            TupleType::from_pairs([
                ("yid", Type::Oid(Some(name("YRow")))),
                ("d", Type::Int),
                ("e", Type::Int),
            ]),
        )
        .expect("valid YRow class"),
    )
    .expect("fresh catalog");
    let mut db = Database::new(cat).expect("catalog is closed");

    let xs: [(u64, i64, &[i64]); 3] = [(1, 1, &[1, 2]), (2, 2, &[]), (3, 3, &[2, 3])];
    for (xid, a, c) in xs {
        db.insert(
            "X",
            Tuple::from_pairs([
                ("xid", Value::Oid(Oid(xid))),
                ("a", Value::Int(a)),
                ("c", Value::set(c.iter().map(|&i| Value::Int(i)))),
            ]),
        )
        .expect("X row conforms");
    }
    let ys: [(u64, i64, i64); 4] = [(11, 1, 1), (12, 1, 2), (13, 1, 3), (14, 3, 3)];
    for (yid, d, e) in ys {
        db.insert(
            "Y",
            Tuple::from_pairs([
                ("yid", Value::Oid(Oid(yid))),
                ("d", Value::Int(d)),
                ("e", Value::Int(e)),
            ]),
        )
        .expect("Y row conforms");
    }
    db
}

/// The `X`/`Y` tables of Figure 3 (nestjoin example): `X` and `Y` are
/// equijoined on the second attribute (`x.b = y.d`); each left tuple is
/// concatenated with the **set** of matching right tuples, and a left
/// tuple with no matches keeps an empty set instead of being lost.
///
/// ```text
/// X: a  b            Y: c  d
///    1  1               1  1
///    2  1               2  1
///    3  3               3  2
/// ```
pub fn figure3_db() -> Database {
    let mut cat = Catalog::new();
    cat.add_class(
        ClassDef::new(
            name("XRow"),
            name("X"),
            name("xid"),
            TupleType::from_pairs([
                ("xid", Type::Oid(Some(name("XRow")))),
                ("a", Type::Int),
                ("b", Type::Int),
            ]),
        )
        .expect("valid XRow class"),
    )
    .expect("fresh catalog");
    cat.add_class(
        ClassDef::new(
            name("YRow"),
            name("Y"),
            name("yid"),
            TupleType::from_pairs([
                ("yid", Type::Oid(Some(name("YRow")))),
                ("c", Type::Int),
                ("d", Type::Int),
            ]),
        )
        .expect("valid YRow class"),
    )
    .expect("fresh catalog");
    let mut db = Database::new(cat).expect("catalog is closed");

    for (xid, a, b) in [(1, 1, 1), (2, 2, 1), (3, 3, 3)] {
        db.insert(
            "X",
            Tuple::from_pairs([
                ("xid", Value::Oid(Oid(xid))),
                ("a", Value::Int(a)),
                ("b", Value::Int(b)),
            ]),
        )
        .expect("X row conforms");
    }
    for (yid, c, d) in [(11, 1, 1), (12, 2, 1), (13, 3, 2)] {
        db.insert(
            "Y",
            Tuple::from_pairs([
                ("yid", Value::Oid(Oid(yid))),
                ("c", Value::Int(c)),
                ("d", Value::Int(d)),
            ]),
        )
        .expect("Y row conforms");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supplier_part_db_is_well_formed() {
        let db = supplier_part_db();
        assert_eq!(db.table("SUPPLIER").unwrap().len(), 5);
        assert_eq!(db.table("PART").unwrap().len(), 7);
        assert_eq!(db.table("DELIVERY").unwrap().len(), 3);
        assert_eq!(db.object_count(), 15);
    }

    #[test]
    fn s5_has_a_dangling_part_pointer() {
        let db = supplier_part_db();
        assert!(db.deref("Part", Oid(DANGLING_PART)).is_none());
        let s5 = db.deref("Supplier", Oid(5)).unwrap();
        let parts = s5.get("parts").unwrap().as_set().unwrap();
        assert!(parts.contains(&Value::Oid(Oid(DANGLING_PART))));
    }

    #[test]
    fn s4_has_empty_parts() {
        let db = supplier_part_db();
        let s4 = db.deref("Supplier", Oid(4)).unwrap();
        assert!(s4.get("parts").unwrap().as_set().unwrap().is_empty());
    }

    #[test]
    fn deliveries_by_s1_on_940101() {
        let db = supplier_part_db();
        let matching = db
            .table("DELIVERY")
            .unwrap()
            .rows()
            .filter(|d| {
                d.get("date") == Some(&Value::Date(940101))
                    && d.get("supplier") == Some(&Value::Oid(Oid(1)))
            })
            .count();
        assert_eq!(matching, 2); // d1 and d3 — Example Query 2's answer
    }

    #[test]
    fn figure12_tables_match_the_paper() {
        let db = figure12_db();
        assert_eq!(db.table("X").unwrap().len(), 3);
        assert_eq!(db.table("Y").unwrap().len(), 4);
        // the critical tuple: ⟨a = 2, c = ∅⟩
        let empty_c = db
            .table("X")
            .unwrap()
            .rows()
            .find(|r| r.get("a") == Some(&Value::Int(2)))
            .unwrap();
        assert_eq!(empty_c.get("c"), Some(&Value::empty_set()));
    }

    #[test]
    fn figure3_tables_match_the_paper() {
        let db = figure3_db();
        assert_eq!(db.table("X").unwrap().len(), 3);
        assert_eq!(db.table("Y").unwrap().len(), 3);
        // x₃ = ⟨a = 3, b = 3⟩ has no partner with d = 3
        let b_vals: Vec<&Value> = db
            .table("Y")
            .unwrap()
            .rows()
            .map(|r| r.get("d").unwrap())
            .collect();
        assert!(!b_vals.contains(&&Value::Int(3)));
    }
}

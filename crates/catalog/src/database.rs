//! The catalog (schema) and the database (populated extents).

use crate::{CatalogError, ClassDef, Table};
use oodb_value::fxhash::FxHashMap;
use oodb_value::{Name, Oid, Tuple, Type, Value};

/// The schema of an object base: a collection of class definitions,
/// addressable by class name and by extent (base table) name.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    classes: Vec<ClassDef>,
    by_class: FxHashMap<Name, usize>,
    by_extent: FxHashMap<Name, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a class; rejects duplicate class or extent names.
    pub fn add_class(&mut self, def: ClassDef) -> Result<(), CatalogError> {
        if self.by_class.contains_key(&def.name) {
            return Err(CatalogError::DuplicateClass(def.name.clone()));
        }
        if self.by_extent.contains_key(&def.extent) {
            return Err(CatalogError::DuplicateExtent(def.extent.clone()));
        }
        let idx = self.classes.len();
        self.by_class.insert(def.name.clone(), idx);
        self.by_extent.insert(def.extent.clone(), idx);
        self.classes.push(def);
        Ok(())
    }

    /// Looks up a class by class name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.by_class.get(name).map(|&i| &self.classes[i])
    }

    /// Looks up a class by extent (base table) name.
    pub fn class_by_extent(&self, extent: &str) -> Option<&ClassDef> {
        self.by_extent.get(extent).map(|&i| &self.classes[i])
    }

    /// The ADL type of an extent: `{⟨attrs⟩}`.
    pub fn extent_type(&self, extent: &str) -> Option<Type> {
        self.class_by_extent(extent).map(ClassDef::extent_type)
    }

    /// True if `name` is a known extent.
    pub fn is_extent(&self, name: &str) -> bool {
        self.by_extent.contains_key(name)
    }

    /// All classes, in definition order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter()
    }

    /// Validates that every class referenced by attributes is defined.
    pub fn validate(&self) -> Result<(), CatalogError> {
        for c in &self.classes {
            for r in c.referenced_classes() {
                if !self.by_class.contains_key(&r) {
                    return Err(CatalogError::UnknownClass(r));
                }
            }
        }
        Ok(())
    }
}

/// A populated object base: a [`Catalog`] plus one [`Table`] per extent.
#[derive(Clone, Debug)]
pub struct Database {
    catalog: Catalog,
    tables: FxHashMap<Name, Table>,
}

impl Database {
    /// An empty database over the given (validated) catalog.
    pub fn new(catalog: Catalog) -> Result<Self, CatalogError> {
        catalog.validate()?;
        let mut tables = FxHashMap::default();
        for c in catalog.classes() {
            tables.insert(c.extent.clone(), Table::new(c.identity.clone()));
        }
        Ok(Database { catalog, tables })
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The extent called `name`.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// The extent called `name`, or an error.
    pub fn table_required(&self, name: &str) -> Result<&Table, CatalogError> {
        self.table(name)
            .ok_or_else(|| CatalogError::UnknownExtent(Name::from(name)))
    }

    /// Inserts an object into an extent, checking it against the class's
    /// attribute types.
    pub fn insert(&mut self, extent: &str, row: Tuple) -> Result<(), CatalogError> {
        let class = self
            .catalog
            .class_by_extent(extent)
            .ok_or_else(|| CatalogError::UnknownExtent(Name::from(extent)))?;
        if let Err(detail) = conforms_tuple(&row, &class.attrs) {
            return Err(CatalogError::SchemaViolation {
                extent: class.extent.clone(),
                detail,
            });
        }
        let extent_name = class.extent.clone();
        self.tables
            .get_mut(&extent_name)
            .expect("table exists for every extent")
            .insert(&extent_name, row)
    }

    /// Builds a secondary hash index on `extent.attr` (used by the index
    /// nested-loop join).
    pub fn create_index(&mut self, extent: &str, attr: &str) -> Result<(), CatalogError> {
        let class = self
            .catalog
            .class_by_extent(extent)
            .ok_or_else(|| CatalogError::UnknownExtent(Name::from(extent)))?;
        if !class.attrs.has_field(attr) {
            return Err(CatalogError::SchemaViolation {
                extent: class.extent.clone(),
                detail: format!("no attribute `{attr}` to index"),
            });
        }
        let extent_name = class.extent.clone();
        self.tables
            .get_mut(&extent_name)
            .expect("table exists for every extent")
            .create_index(&Name::from(attr))
    }

    /// The write version of extent `name`: bumped by every successful
    /// [`Database::insert`] / [`Database::create_index`] against it.
    /// Unknown extents report `0` (they can only ever be read as errors,
    /// which no cache stores). Version stamps taken from these counters
    /// are how the serving layer invalidates cached results on writes.
    pub fn extent_version(&self, name: &str) -> u64 {
        self.tables.get(name).map(Table::version).unwrap_or(0)
    }

    /// Pointer dereference: the object of `class` identified by `oid`
    /// (`None` for dangling pointers — which Example Query 4 hunts for).
    pub fn deref(&self, class: &str, oid: Oid) -> Option<&Tuple> {
        let c = self.catalog.class(class)?;
        self.tables.get(&c.extent)?.by_oid(oid)
    }

    /// Total number of stored objects (all extents).
    pub fn object_count(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

/// Structural conformance check of a value against a type.
///
/// `Unknown` accepts anything; empty sets conform to any set type; oid
/// class tags are checked only for presence of *an* oid (tag verification
/// against actual referents is referential integrity, which the paper
/// deliberately allows to be violated — Example Query 4 queries for it).
pub fn conforms(value: &Value, ty: &Type) -> Result<(), String> {
    match (value, ty) {
        (_, Type::Unknown) => Ok(()),
        (Value::Bool(_), Type::Bool)
        | (Value::Int(_), Type::Int)
        | (Value::Float(_), Type::Float)
        | (Value::Str(_), Type::Str)
        | (Value::Date(_), Type::Date)
        | (Value::Oid(_), Type::Oid(_)) => Ok(()),
        (Value::Set(s), Type::Set(elem)) => {
            for v in s.iter() {
                conforms(v, elem)?;
            }
            Ok(())
        }
        (Value::Tuple(t), Type::Tuple(tt)) => conforms_tuple(t, tt),
        (v, t) => Err(format!("value {v} does not conform to type {t}")),
    }
}

fn conforms_tuple(t: &Tuple, tt: &oodb_value::TupleType) -> Result<(), String> {
    if t.arity() != tt.arity() {
        return Err(format!(
            "tuple {t} has {} attributes, type {tt} expects {}",
            t.arity(),
            tt.arity()
        ));
    }
    for (n, v) in t.iter() {
        match tt.field(n) {
            Some(ft) => conforms(v, ft)?,
            None => return Err(format!("unexpected attribute `{n}`")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_value::{name, TupleType};

    fn part_class() -> ClassDef {
        ClassDef::new(
            name("Part"),
            name("PART"),
            name("pid"),
            TupleType::from_pairs([
                ("pid", Type::Oid(Some(name("Part")))),
                ("pname", Type::Str),
                ("price", Type::Int),
                ("color", Type::Str),
            ]),
        )
        .unwrap()
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_class(part_class()).unwrap();
        c
    }

    fn part(oid: u64, pname: &str, price: i64, color: &str) -> Tuple {
        Tuple::from_pairs([
            ("pid", Value::Oid(Oid(oid))),
            ("pname", Value::str(pname)),
            ("price", Value::Int(price)),
            ("color", Value::str(color)),
        ])
    }

    #[test]
    fn add_and_lookup_classes() {
        let c = catalog();
        assert!(c.class("Part").is_some());
        assert!(c.class_by_extent("PART").is_some());
        assert!(c.is_extent("PART"));
        assert!(!c.is_extent("Part"));
        assert!(c.extent_type("PART").unwrap().is_set());
    }

    #[test]
    fn duplicate_class_and_extent_rejected() {
        let mut c = catalog();
        assert!(matches!(
            c.add_class(part_class()),
            Err(CatalogError::DuplicateClass(_))
        ));
        let other = ClassDef::new(
            name("Part2"),
            name("PART"),
            name("pid"),
            TupleType::from_pairs([("pid", Type::Oid(Some(name("Part2"))))]),
        )
        .unwrap();
        assert!(matches!(
            c.add_class(other),
            Err(CatalogError::DuplicateExtent(_))
        ));
    }

    #[test]
    fn validate_catches_unknown_references() {
        let mut c = Catalog::new();
        c.add_class(
            ClassDef::new(
                name("Supplier"),
                name("SUPPLIER"),
                name("eid"),
                TupleType::from_pairs([
                    ("eid", Type::Oid(Some(name("Supplier")))),
                    ("parts", Type::set(Type::Oid(Some(name("Part"))))),
                ]),
            )
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            Database::new(c),
            Err(CatalogError::UnknownClass(_))
        ));
    }

    #[test]
    fn insert_checks_schema() {
        let mut db = Database::new(catalog()).unwrap();
        db.insert("PART", part(1, "bolt", 10, "red")).unwrap();
        // wrong type for price:
        let bad = Tuple::from_pairs([
            ("pid", Value::Oid(Oid(2))),
            ("pname", Value::str("nut")),
            ("price", Value::str("not a number")),
            ("color", Value::str("red")),
        ]);
        assert!(matches!(
            db.insert("PART", bad),
            Err(CatalogError::SchemaViolation { .. })
        ));
        // missing attribute:
        let short = Tuple::from_pairs([("pid", Value::Oid(Oid(3)))]);
        assert!(db.insert("PART", short).is_err());
        // unknown extent:
        assert!(matches!(
            db.insert("NOPE", part(4, "x", 1, "blue")),
            Err(CatalogError::UnknownExtent(_))
        ));
        assert_eq!(db.object_count(), 1);
    }

    #[test]
    fn deref_follows_pointers() {
        let mut db = Database::new(catalog()).unwrap();
        db.insert("PART", part(7, "bolt", 10, "red")).unwrap();
        let t = db.deref("Part", Oid(7)).unwrap();
        assert_eq!(t.get("pname"), Some(&Value::str("bolt")));
        assert!(db.deref("Part", Oid(8)).is_none()); // dangling
        assert!(db.deref("Nope", Oid(7)).is_none());
    }

    #[test]
    fn conforms_accepts_empty_sets_anywhere() {
        let ty = Type::set(Type::Oid(Some(name("Part"))));
        assert!(conforms(&Value::empty_set(), &ty).is_ok());
        assert!(conforms(&Value::Int(3), &ty).is_err());
    }
}

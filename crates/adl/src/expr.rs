//! The ADL expression IR.
//!
//! ADL (paper §3) is a typed algebra for complex objects allowing nesting
//! of expressions. Its *iterators* — map `α`, select `σ`, the join family,
//! and quantifiers — take functions (lambda expressions `λx.e`, written
//! `x : e`) as parameters; within a function body other operators may
//! occur, which is exactly how nested (tuple-oriented) queries are
//! represented. The unnesting rules of the paper rewrite these nested
//! shapes into the set-oriented operators (`×`, `⋈`, `⋉`, `▷`, `⊣`, `ν`,
//! `μ`, …).

use oodb_value::{ArithOp, CmpOp, Name, SetCmpOp, Value};

/// Quantifier kinds appearing in predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QuantKind {
    /// `∃x ∈ e • p`
    Exists,
    /// `∀x ∈ e • p`
    Forall,
}

impl QuantKind {
    /// The dual quantifier (used when pushing negations through).
    pub fn dual(self) -> QuantKind {
        match self {
            QuantKind::Exists => QuantKind::Forall,
            QuantKind::Forall => QuantKind::Exists,
        }
    }
}

/// Join operator kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JoinKind {
    /// Regular join `⋈`: concatenation of every matching pair.
    Inner,
    /// Semijoin `⋉`: left tuples with at least one match (paper def. 11) —
    /// "useful in processing so-called tree queries".
    Semi,
    /// Antijoin `▷`: left tuples with **no** match (paper def. 12) — "can
    /// be employed to efficiently process tree queries involving universal
    /// quantification".
    Anti,
    /// Left outer join `⟕`: like `⋈` but dangling left tuples survive with
    /// `NULL`-padded right attributes. Not part of core ADL; §5.2.2 cites
    /// it (\[GaWo87\]) as one repair of the COUNT/Complex-Object bug.
    LeftOuter,
}

/// Aggregate functions ("of course aggregate functions are part of the
/// language too", §3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggOp {
    /// Set cardinality.
    Count,
    /// Sum of a set of numbers.
    Sum,
    /// Minimum (error on `∅`).
    Min,
    /// Maximum (error on `∅`).
    Max,
    /// Average (error on `∅`).
    Avg,
}

impl AggOp {
    /// Lower-case name as used in queries.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Avg => "avg",
        }
    }
}

/// Binary set operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetOp {
    /// `∪`
    Union,
    /// `∩`
    Intersect,
    /// `−`
    Difference,
}

impl SetOp {
    /// Paper symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            SetOp::Union => "∪",
            SetOp::Intersect => "∩",
            SetOp::Difference => "−",
        }
    }
}

/// An ADL expression.
///
/// Lambda-bearing variants (`Map`, `Select`, `Join`, `NestJoin`, `Quant`,
/// `Let`) carry the bound variable name explicitly; [`crate::vars`]
/// provides free-variable analysis and capture-avoiding substitution over
/// this representation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A constant.
    Lit(Value),
    /// A variable reference.
    Var(Name),
    /// A base table (class extension) by extent name.
    Table(Name),

    /// Tuple construction `⟨a₁ = e₁, …⟩`.
    TupleCons(Vec<(Name, Expr)>),
    /// Attribute access `e.a`.
    Field(Box<Expr>, Name),
    /// Tuple subscription `e[a₁, …, aₙ]` (paper def. 2).
    TupleProject(Box<Expr>, Vec<Name>),
    /// Tuple update/extension `e except (a₁ = e₁, …)` (paper def. 3).
    Except(Box<Expr>, Vec<(Name, Expr)>),
    /// Tuple concatenation `e₁ ∘ e₂`.
    Concat(Box<Expr>, Box<Expr>),
    /// Materialization of an object reference: the object of class `.1`
    /// identified by the oid `.0` evaluates to. This is the logical
    /// *materialize* operator of \[BlMG93\] (paper §6.2), inserted wherever
    /// OOSQL path expressions traverse inter-object references.
    Deref(Box<Expr>, Name),

    /// `NULL` test. Only meaningful on outerjoin padding (§5.2.2's
    /// \[GaWo87\] repair of the COUNT bug needs to distinguish padded
    /// groups); ADL proper never produces `NULL`.
    IsNull(Box<Expr>),
    /// Scalar comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),

    /// Set construction `{e₁, …, eₙ}`.
    SetCons(Vec<Expr>),
    /// Binary set operator.
    SetOp(SetOp, Box<Expr>, Box<Expr>),
    /// Set comparison (Table 1 operators).
    SetCmp(SetCmpOp, Box<Expr>, Box<Expr>),
    /// Multiple union `⋃(e)` (paper def. 1).
    Flatten(Box<Expr>),
    /// Aggregate application.
    Agg(AggOp, Box<Expr>),

    /// Map / function application `α[x : body](input)` (paper def. 4).
    Map {
        /// Bound variable.
        var: Name,
        /// Function body (may reference `var`).
        body: Box<Expr>,
        /// Set operand.
        input: Box<Expr>,
    },
    /// Selection `σ[x : pred](input)` (paper def. 5).
    Select {
        /// Bound variable.
        var: Name,
        /// Selection predicate.
        pred: Box<Expr>,
        /// Set operand.
        input: Box<Expr>,
    },
    /// Projection `π_{a₁,…,aₙ}(input)` (paper def. 6).
    Project {
        /// Retained attributes.
        attrs: Vec<Name>,
        /// Set-of-tuples operand.
        input: Box<Expr>,
    },
    /// Renaming `ρ_{a→b,…}(input)`.
    Rename {
        /// `(old, new)` attribute name pairs.
        pairs: Vec<(Name, Name)>,
        /// Set-of-tuples operand.
        input: Box<Expr>,
    },
    /// Unnest `μ_a(input)` (paper def. 7).
    Unnest {
        /// The set-valued attribute to flatten into the parent.
        attr: Name,
        /// Set-of-tuples operand.
        input: Box<Expr>,
    },
    /// Nest `ν_{A→a}(input)` (paper def. 8): group on `SCH ∖ A`, collect
    /// the `A`-projections as a set-valued attribute `a`.
    Nest {
        /// The attributes `A` that are collected into the new set.
        attrs: Vec<Name>,
        /// Name of the new set-valued attribute.
        as_attr: Name,
        /// Set-of-tuples operand.
        input: Box<Expr>,
    },
    /// Extended Cartesian product (operand tuples are concatenated,
    /// paper def. 9).
    Product(Box<Expr>, Box<Expr>),
    /// The join family (paper defs. 10–12 + left outer).
    Join {
        /// Which join.
        kind: JoinKind,
        /// Variable bound to left tuples in `pred`.
        lvar: Name,
        /// Variable bound to right tuples in `pred`.
        rvar: Name,
        /// Join predicate `x₁,x₂ : p(x₁,x₂)`.
        pred: Box<Expr>,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// The nestjoin `e₁ ⊣_{x₁,x₂ : p(x₁,x₂); g; a} e₂` (paper §6.1,
    /// definition 1, and \[StAB94\]'s extended form): each left tuple is
    /// concatenated with `⟨a = X⟩` where `X` collects `g(x₂)` over the
    /// matching right tuples. Dangling left tuples keep `a = ∅`.
    NestJoin {
        /// Variable bound to left tuples in `pred`.
        lvar: Name,
        /// Variable bound to right tuples in `pred` and in `rfunc`.
        rvar: Name,
        /// Match predicate.
        pred: Box<Expr>,
        /// Optional function applied to matching right tuples (the
        /// extended nestjoin parameter; `None` = identity, the paper's
        /// simple form).
        rfunc: Option<Box<Expr>>,
        /// Name of the new set-valued attribute (`a ∉ SCH(e₁)`).
        as_attr: Name,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Quantifier expression `∃/∀ x ∈ range • pred`.
    Quant {
        /// Which quantifier.
        q: QuantKind,
        /// Bound variable.
        var: Name,
        /// Range expression (a set).
        range: Box<Expr>,
        /// Quantified predicate.
        pred: Box<Expr>,
    },
    /// Relational division `e₁ ÷ e₂` (\[Codd72\]; the paper lists division
    /// among ADL's operators — universal quantification over base tables
    /// maps to it in the classical translation).
    Div(Box<Expr>, Box<Expr>),
    /// Local definition `let x = e₁ in e₂` — the paper's `with` construct;
    /// also the target of uncorrelated-subquery hoisting ("uncorrelated
    /// subqueries simply are constants, and treated as such", §3).
    Let {
        /// Bound variable.
        var: Name,
        /// Bound value.
        value: Box<Expr>,
        /// Body.
        body: Box<Expr>,
    },
}

impl Expr {
    /// `true` literal.
    pub fn true_() -> Expr {
        Expr::Lit(Value::Bool(true))
    }

    /// `false` literal.
    pub fn false_() -> Expr {
        Expr::Lit(Value::Bool(false))
    }

    /// Integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Value::Int(i))
    }

    /// String literal.
    pub fn str(s: &str) -> Expr {
        Expr::Lit(Value::str(s))
    }

    /// The empty-set literal `∅`.
    pub fn empty_set() -> Expr {
        Expr::Lit(Value::empty_set())
    }

    /// Variable reference.
    pub fn var(n: &str) -> Expr {
        Expr::Var(Name::from(n))
    }

    /// Base table reference.
    pub fn table(n: &str) -> Expr {
        Expr::Table(Name::from(n))
    }

    /// `self.field`
    pub fn field(self, f: &str) -> Expr {
        Expr::Field(Box::new(self), Name::from(f))
    }

    /// Is this expression a boolean literal with the given value?
    pub fn is_bool_lit(&self, b: bool) -> bool {
        matches!(self, Expr::Lit(Value::Bool(v)) if *v == b)
    }

    /// Structural size (node count) — used to cap rewriting and report
    /// plan complexity.
    pub fn size(&self) -> usize {
        let mut n = 1;
        self.for_each_child(&mut |c| n += c.size());
        n
    }

    /// Applies `f` to every direct child expression.
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        use Expr::*;
        match self {
            Lit(_) | Var(_) | Table(_) => {}
            TupleCons(fields) => fields.iter().for_each(|(_, e)| f(e)),
            Field(e, _)
            | TupleProject(e, _)
            | Deref(e, _)
            | Not(e)
            | IsNull(e)
            | Flatten(e)
            | Agg(_, e) => f(e),
            Except(e, updates) => {
                f(e);
                updates.iter().for_each(|(_, u)| f(u));
            }
            Concat(a, b)
            | Cmp(_, a, b)
            | Arith(_, a, b)
            | And(a, b)
            | Or(a, b)
            | SetOp(_, a, b)
            | SetCmp(_, a, b)
            | Product(a, b)
            | Div(a, b) => {
                f(a);
                f(b);
            }
            SetCons(es) => es.iter().for_each(f),
            Map { body, input, .. } => {
                f(body);
                f(input);
            }
            Select { pred, input, .. } => {
                f(pred);
                f(input);
            }
            Project { input, .. }
            | Rename { input, .. }
            | Unnest { input, .. }
            | Nest { input, .. } => f(input),
            Join {
                pred, left, right, ..
            } => {
                f(pred);
                f(left);
                f(right);
            }
            NestJoin {
                pred,
                rfunc,
                left,
                right,
                ..
            } => {
                f(pred);
                if let Some(g) = rfunc {
                    f(g);
                }
                f(left);
                f(right);
            }
            Quant { range, pred, .. } => {
                f(range);
                f(pred);
            }
            Let { value, body, .. } => {
                f(value);
                f(body);
            }
        }
    }

    /// Rebuilds this node with every direct child replaced by
    /// `f(child)`. The workhorse of bottom-up rewriting.
    pub fn map_children(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        use Expr::*;
        let fb = |e: Box<Expr>, f: &mut dyn FnMut(Expr) -> Expr| Box::new(f(*e));
        match self {
            e @ (Lit(_) | Var(_) | Table(_)) => e,
            TupleCons(fields) => TupleCons(fields.into_iter().map(|(n, e)| (n, f(e))).collect()),
            Field(e, n) => Field(fb(e, f), n),
            TupleProject(e, ns) => TupleProject(fb(e, f), ns),
            Except(e, updates) => {
                let e = fb(e, f);
                Except(e, updates.into_iter().map(|(n, u)| (n, f(u))).collect())
            }
            Concat(a, b) => {
                let a = fb(a, f);
                Concat(a, fb(b, f))
            }
            Deref(e, c) => Deref(fb(e, f), c),
            Cmp(op, a, b) => {
                let a = fb(a, f);
                Cmp(op, a, fb(b, f))
            }
            Arith(op, a, b) => {
                let a = fb(a, f);
                Arith(op, a, fb(b, f))
            }
            Not(e) => Not(fb(e, f)),
            IsNull(e) => IsNull(fb(e, f)),
            And(a, b) => {
                let a = fb(a, f);
                And(a, fb(b, f))
            }
            Or(a, b) => {
                let a = fb(a, f);
                Or(a, fb(b, f))
            }
            SetCons(es) => SetCons(es.into_iter().map(&mut *f).collect()),
            SetOp(op, a, b) => {
                let a = fb(a, f);
                SetOp(op, a, fb(b, f))
            }
            SetCmp(op, a, b) => {
                let a = fb(a, f);
                SetCmp(op, a, fb(b, f))
            }
            Flatten(e) => Flatten(fb(e, f)),
            Agg(op, e) => Agg(op, fb(e, f)),
            Map { var, body, input } => {
                let body = fb(body, f);
                Map {
                    var,
                    body,
                    input: fb(input, f),
                }
            }
            Select { var, pred, input } => {
                let pred = fb(pred, f);
                Select {
                    var,
                    pred,
                    input: fb(input, f),
                }
            }
            Project { attrs, input } => Project {
                attrs,
                input: fb(input, f),
            },
            Rename { pairs, input } => Rename {
                pairs,
                input: fb(input, f),
            },
            Unnest { attr, input } => Unnest {
                attr,
                input: fb(input, f),
            },
            Nest {
                attrs,
                as_attr,
                input,
            } => Nest {
                attrs,
                as_attr,
                input: fb(input, f),
            },
            Product(a, b) => {
                let a = fb(a, f);
                Product(a, fb(b, f))
            }
            Join {
                kind,
                lvar,
                rvar,
                pred,
                left,
                right,
            } => {
                let pred = fb(pred, f);
                let left = fb(left, f);
                Join {
                    kind,
                    lvar,
                    rvar,
                    pred,
                    left,
                    right: fb(right, f),
                }
            }
            NestJoin {
                lvar,
                rvar,
                pred,
                rfunc,
                as_attr,
                left,
                right,
            } => {
                let pred = fb(pred, f);
                let rfunc = rfunc.map(|g| fb(g, f));
                let left = fb(left, f);
                NestJoin {
                    lvar,
                    rvar,
                    pred,
                    rfunc,
                    as_attr,
                    left,
                    right: fb(right, f),
                }
            }
            Quant {
                q,
                var,
                range,
                pred,
            } => {
                let range = fb(range, f);
                Quant {
                    q,
                    var,
                    range,
                    pred: fb(pred, f),
                }
            }
            Div(a, b) => {
                let a = fb(a, f);
                Div(a, fb(b, f))
            }
            Let { var, value, body } => {
                let value = fb(value, f);
                Let {
                    var,
                    value,
                    body: fb(body, f),
                }
            }
        }
    }

    /// True if any node in the tree satisfies `p`.
    pub fn any_node(&self, p: &mut impl FnMut(&Expr) -> bool) -> bool {
        if p(self) {
            return true;
        }
        let mut found = false;
        self.for_each_child(&mut |c| {
            if !found && c.any_node(p) {
                found = true;
            }
        });
        found
    }

    /// True if the expression mentions any base table anywhere.
    pub fn mentions_table(&self) -> bool {
        self.any_node(&mut |e| matches!(e, Expr::Table(_)))
    }
}

/// Splits a predicate into its top-level conjuncts.
pub fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

/// Rebuilds a conjunction from parts (`true` for the empty list).
pub fn conjoin(parts: Vec<Expr>) -> Expr {
    parts
        .into_iter()
        .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
        .unwrap_or_else(Expr::true_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::int(1).size(), 1);
        let e = and(eq(var("x").field("a"), Expr::int(1)), Expr::true_());
        // And, Cmp, Field, Var, Lit, Lit
        assert_eq!(e.size(), 6);
    }

    #[test]
    fn map_children_rebuilds_structure() {
        let e = select("x", eq(var("x").field("a"), Expr::int(1)), Expr::table("X"));
        // replace every integer literal 1 with 2, only at child level + recursion
        fn bump(e: Expr) -> Expr {
            match e {
                Expr::Lit(Value::Int(1)) => Expr::int(2),
                other => other.map_children(&mut bump),
            }
        }
        let out = bump(e);
        let expected = select("x", eq(var("x").field("a"), Expr::int(2)), Expr::table("X"));
        assert_eq!(out, expected);
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let p = and(and(var("a"), var("b")), var("c"));
        let cs = conjuncts(&p);
        assert_eq!(cs.len(), 3);
        assert_eq!(conjoin(cs.into_iter().cloned().collect()), p);
        assert_eq!(conjoin(vec![]), Expr::true_());
    }

    #[test]
    fn mentions_table_scans_deeply() {
        let e = exists("y", Expr::table("PART"), Expr::true_());
        assert!(e.mentions_table());
        let e2 = exists("z", var("x").field("c"), Expr::true_());
        assert!(!e2.mentions_table());
    }

    #[test]
    fn quant_dual() {
        assert_eq!(QuantKind::Exists.dual(), QuantKind::Forall);
        assert_eq!(QuantKind::Forall.dual(), QuantKind::Exists);
    }
}

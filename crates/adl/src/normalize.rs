//! Canonical alpha-normalization of ADL expressions.
//!
//! Two queries that differ only in bound-variable names (`select s.sname
//! from s in SUPPLIER …` vs `select x.sname from x in SUPPLIER …`)
//! translate to alpha-equivalent ADL and should hit the same plan-cache
//! entry. [`normalize`] renames every binder to a canonical `%N` name in
//! a fixed traversal order, so alpha-equivalent expressions become
//! *syntactically equal* — their [`std::fmt::Display`] renderings can
//! then serve as exact cache keys ([`normal_key`]).
//!
//! Free variables keep their names (a cache key must distinguish `x.a`
//! from `y.a` when `x`/`y` are bound elsewhere); canonical names skip
//! over any free name, and `%` cannot appear in parser-produced
//! identifiers, so capture is impossible.

use crate::expr::Expr;
use crate::vars::free_vars;
use oodb_value::fxhash::FxHashSet;
use oodb_value::Name;

/// Renames every binder in `e` to a canonical `%N` name (left-to-right,
/// operands before the lambdas that scope over them — the same order
/// [`crate::vars::free_vars`] walks). Alpha-equivalent expressions
/// normalize to equal expressions:
///
/// ```
/// use oodb_adl::dsl::*;
/// use oodb_adl::{alpha_eq, normalize};
/// let a = select("x", eq(var("x").field("a"), oodb_adl::Expr::int(1)), table("T"));
/// let b = select("u", eq(var("u").field("a"), oodb_adl::Expr::int(1)), table("T"));
/// assert!(alpha_eq(&a, &b));
/// assert_eq!(normalize(&a), normalize(&b));
/// ```
pub fn normalize(e: &Expr) -> Expr {
    let free = free_vars(e);
    let mut scope: Vec<(Name, Name)> = Vec::new();
    let mut counter = 0usize;
    norm(e, &free, &mut scope, &mut counter)
}

/// The canonical cache key for `e`: the [`Display`](std::fmt::Display)
/// rendering of [`normalize`]`(e)`. Exact (no hash collisions); pair it
/// with [`key_hash`] where a compact fingerprint is wanted.
pub fn normal_key(e: &Expr) -> String {
    normalize(e).to_string()
}

/// FNV-1a 64-bit hash of a key string — a stable, dependency-free
/// fingerprint for displaying / wire-encoding cache keys. Not used for
/// lookup (the exact string is), so collisions are cosmetic.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every base table (extent) mentioned by `e` — via [`Expr::Table`]
/// scans — sorted and deduplicated. [`Expr::Deref`] *classes* are
/// reported separately by [`referenced_classes`] because mapping a class
/// to its extent needs a catalog.
pub fn referenced_tables(e: &Expr) -> Vec<Name> {
    let mut out: Vec<Name> = Vec::new();
    collect(e, &mut |x| {
        if let Expr::Table(n) = x {
            out.push(n.clone());
        }
    });
    out.sort();
    out.dedup();
    out
}

/// Every class whose objects `e` can reach through [`Expr::Deref`]
/// (pointer materialization), sorted and deduplicated. Together with
/// [`referenced_tables`] this bounds the set of extents whose contents
/// can influence `e`'s value — the invalidation footprint of a cached
/// result.
pub fn referenced_classes(e: &Expr) -> Vec<Name> {
    let mut out: Vec<Name> = Vec::new();
    collect(e, &mut |x| {
        if let Expr::Deref(_, class) = x {
            out.push(class.clone());
        }
    });
    out.sort();
    out.dedup();
    out
}

fn collect<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    e.for_each_child(&mut |c| collect(c, f));
}

fn norm(
    e: &Expr,
    free: &FxHashSet<Name>,
    scope: &mut Vec<(Name, Name)>,
    counter: &mut usize,
) -> Expr {
    // Next canonical binder name, skipping any that happens to occur
    // free (parser identifiers never contain `%`, but ADL is also built
    // programmatically and the key must be exact for arbitrary names).
    let next = |counter: &mut usize| -> Name {
        loop {
            let candidate = Name::from(format!("%{}", *counter).as_str());
            *counter += 1;
            if !free.contains(&candidate) {
                return candidate;
            }
        }
    };
    match e {
        Expr::Var(n) => {
            let renamed = scope
                .iter()
                .rev()
                .find(|(orig, _)| orig == n)
                .map(|(_, canon)| canon.clone())
                .unwrap_or_else(|| n.clone());
            Expr::Var(renamed)
        }
        Expr::Map { var, body, input } => {
            let input = norm(input, free, scope, counter);
            let canon = next(counter);
            scope.push((var.clone(), canon.clone()));
            let body = norm(body, free, scope, counter);
            scope.pop();
            Expr::Map {
                var: canon,
                body: Box::new(body),
                input: Box::new(input),
            }
        }
        Expr::Select { var, pred, input } => {
            let input = norm(input, free, scope, counter);
            let canon = next(counter);
            scope.push((var.clone(), canon.clone()));
            let pred = norm(pred, free, scope, counter);
            scope.pop();
            Expr::Select {
                var: canon,
                pred: Box::new(pred),
                input: Box::new(input),
            }
        }
        Expr::Quant {
            q,
            var,
            range,
            pred,
        } => {
            let range = norm(range, free, scope, counter);
            let canon = next(counter);
            scope.push((var.clone(), canon.clone()));
            let pred = norm(pred, free, scope, counter);
            scope.pop();
            Expr::Quant {
                q: *q,
                var: canon,
                range: Box::new(range),
                pred: Box::new(pred),
            }
        }
        Expr::Let { var, value, body } => {
            let value = norm(value, free, scope, counter);
            let canon = next(counter);
            scope.push((var.clone(), canon.clone()));
            let body = norm(body, free, scope, counter);
            scope.pop();
            Expr::Let {
                var: canon,
                value: Box::new(value),
                body: Box::new(body),
            }
        }
        Expr::Join {
            kind,
            lvar,
            rvar,
            pred,
            left,
            right,
        } => {
            let left = norm(left, free, scope, counter);
            let right = norm(right, free, scope, counter);
            let lc = next(counter);
            let rc = next(counter);
            scope.push((lvar.clone(), lc.clone()));
            scope.push((rvar.clone(), rc.clone()));
            let pred = norm(pred, free, scope, counter);
            scope.pop();
            scope.pop();
            Expr::Join {
                kind: *kind,
                lvar: lc,
                rvar: rc,
                pred: Box::new(pred),
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        Expr::NestJoin {
            lvar,
            rvar,
            pred,
            rfunc,
            as_attr,
            left,
            right,
        } => {
            let left = norm(left, free, scope, counter);
            let right = norm(right, free, scope, counter);
            let lc = next(counter);
            let rc = next(counter);
            scope.push((lvar.clone(), lc.clone()));
            scope.push((rvar.clone(), rc.clone()));
            let pred = norm(pred, free, scope, counter);
            scope.pop();
            scope.pop();
            let rfunc = rfunc.as_ref().map(|g| {
                scope.push((rvar.clone(), rc.clone()));
                let g = norm(g, free, scope, counter);
                scope.pop();
                Box::new(g)
            });
            Expr::NestJoin {
                lvar: lc,
                rvar: rc,
                pred: Box::new(pred),
                rfunc,
                as_attr: as_attr.clone(),
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        other => other
            .clone()
            .map_children(&mut |c| norm(&c, free, scope, counter)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::vars::alpha_eq;

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        let a = select(
            "x",
            exists(
                "y",
                table("T"),
                eq(var("x").field("a"), var("y").field("b")),
            ),
            table("S"),
        );
        let b = select(
            "p",
            exists(
                "q",
                table("T"),
                eq(var("p").field("a"), var("q").field("b")),
            ),
            table("S"),
        );
        assert!(alpha_eq(&a, &b));
        assert_eq!(normal_key(&a), normal_key(&b));
        assert_eq!(key_hash(&normal_key(&a)), key_hash(&normal_key(&b)));
    }

    #[test]
    fn different_shapes_get_different_keys() {
        let a = select("x", eq(var("x").field("a"), Expr::int(1)), table("T"));
        let b = select("x", eq(var("x").field("b"), Expr::int(1)), table("T"));
        let c = select("x", eq(var("x").field("a"), Expr::int(2)), table("T"));
        assert_ne!(normal_key(&a), normal_key(&b));
        assert_ne!(normal_key(&a), normal_key(&c));
    }

    #[test]
    fn free_variables_survive_and_distinguish() {
        // `f` free: keys must distinguish which free variable is used.
        let a = select("x", eq(var("x").field("a"), var("f")), table("T"));
        let b = select("x", eq(var("x").field("a"), var("g")), table("T"));
        assert_ne!(normal_key(&a), normal_key(&b));
        // Free vars are untouched by normalization.
        assert!(normal_key(&a).contains('f'));
    }

    #[test]
    fn canonical_names_avoid_free_collisions() {
        // A free variable literally named `%0` must not be captured by
        // the first canonical binder.
        let poisoned = select("x", eq(var("x").field("a"), var("%0")), table("T"));
        let n = normalize(&poisoned);
        use crate::vars::free_vars;
        assert!(free_vars(&n).iter().any(|v| v.as_ref() == "%0"));
        let plain = select("x", eq(var("x").field("a"), var("%0")), table("T"));
        assert_eq!(normalize(&plain), n);
    }

    #[test]
    fn nestjoin_and_let_binders_normalize() {
        let mk = |lv: &str, rv: &str, bound: &str| Expr::Let {
            var: Name::from(bound),
            value: Box::new(table("S")),
            body: Box::new(nestjoin(
                lv,
                rv,
                eq(var(lv), var(rv)),
                "kids",
                var(bound),
                table("T"),
            )),
        };
        let a = mk("l", "r", "u");
        let b = mk("i", "j", "w");
        assert_eq!(normal_key(&a), normal_key(&b));
    }

    #[test]
    fn table_footprint_is_sorted_and_deduped() {
        let e = set_op(
            crate::SetOp::Union,
            join("a", "b", eq(var("a"), var("b")), table("Z"), table("A")),
            table("A"),
        );
        let names: Vec<String> = referenced_tables(&e)
            .iter()
            .map(|n| n.to_string())
            .collect();
        assert_eq!(names, vec!["A".to_string(), "Z".to_string()]);
    }
}

//! Variable analysis: free variables, fresh names, capture-avoiding
//! substitution, and α-equivalence.
//!
//! The rewrite rules of the paper all carry side conditions like "let `x`
//! not be free in `Y`" (Rule 1) or involve substitutions such as
//! `P' = P(x, Y')[z[X]/x, z.ys/Y']` (§6.1). This module implements the
//! binding discipline those rules rely on.

use crate::expr::Expr;
use oodb_value::fxhash::FxHashSet;
use oodb_value::Name;

/// The set of variables occurring free in `e`.
pub fn free_vars(e: &Expr) -> FxHashSet<Name> {
    let mut out = FxHashSet::default();
    collect_free(e, &mut Vec::new(), &mut out);
    out
}

/// True if `var` occurs free in `e` — the "x not free in Y" side
/// condition of Rule 1.
pub fn is_free_in(var: &str, e: &Expr) -> bool {
    free_vars(e).iter().any(|n| n.as_ref() == var)
}

fn collect_free(e: &Expr, bound: &mut Vec<Name>, out: &mut FxHashSet<Name>) {
    match e {
        Expr::Var(n) => {
            if !bound.iter().any(|b| b == n) {
                out.insert(n.clone());
            }
        }
        Expr::Map { var, body, input } => {
            collect_free(input, bound, out);
            bound.push(var.clone());
            collect_free(body, bound, out);
            bound.pop();
        }
        Expr::Select { var, pred, input } => {
            collect_free(input, bound, out);
            bound.push(var.clone());
            collect_free(pred, bound, out);
            bound.pop();
        }
        Expr::Join {
            lvar,
            rvar,
            pred,
            left,
            right,
            ..
        } => {
            collect_free(left, bound, out);
            collect_free(right, bound, out);
            bound.push(lvar.clone());
            bound.push(rvar.clone());
            collect_free(pred, bound, out);
            bound.pop();
            bound.pop();
        }
        Expr::NestJoin {
            lvar,
            rvar,
            pred,
            rfunc,
            left,
            right,
            ..
        } => {
            collect_free(left, bound, out);
            collect_free(right, bound, out);
            bound.push(lvar.clone());
            bound.push(rvar.clone());
            collect_free(pred, bound, out);
            bound.pop();
            bound.pop();
            if let Some(g) = rfunc {
                bound.push(rvar.clone());
                collect_free(g, bound, out);
                bound.pop();
            }
        }
        Expr::Quant {
            var, range, pred, ..
        } => {
            collect_free(range, bound, out);
            bound.push(var.clone());
            collect_free(pred, bound, out);
            bound.pop();
        }
        Expr::Let { var, value, body } => {
            collect_free(value, bound, out);
            bound.push(var.clone());
            collect_free(body, bound, out);
            bound.pop();
        }
        other => other.for_each_child(&mut |c| collect_free(c, bound, out)),
    }
}

/// Produces a variable name based on `base` that is not in `avoid`.
///
/// Deterministic: tries `base`, then `base_1`, `base_2`, … — rewrite output
/// is stable across runs, which tests rely on.
pub fn fresh_name(base: &str, avoid: &FxHashSet<Name>) -> Name {
    let contains = |n: &str| avoid.iter().any(|a| a.as_ref() == n);
    if !contains(base) {
        return Name::from(base);
    }
    for i in 1u32.. {
        let cand = format!("{base}_{i}");
        if !contains(&cand) {
            return Name::from(cand.as_str());
        }
    }
    unreachable!("u32 namespace exhausted")
}

/// Capture-avoiding substitution `e[replacement / var]`.
///
/// Binders shadow: descending under a binder for `var` stops the
/// substitution. Binders whose name occurs free in `replacement` are
/// α-renamed first so the replacement's free variables are never captured.
pub fn subst(e: &Expr, var: &str, replacement: &Expr) -> Expr {
    let fv = free_vars(replacement);
    subst_inner(e, var, replacement, &fv)
}

fn subst_inner(e: &Expr, var: &str, replacement: &Expr, repl_fv: &FxHashSet<Name>) -> Expr {
    // Rename binder `b` of `scopes` (sub-expressions in the binder's scope)
    // when it would capture; returns the possibly renamed binder + scopes.
    fn guard_binder(
        b: &Name,
        scopes: Vec<&Expr>,
        var: &str,
        repl_fv: &FxHashSet<Name>,
    ) -> (Name, Vec<Expr>) {
        let needs_rename = b.as_ref() != var
            && repl_fv.iter().any(|n| n == b)
            && scopes.iter().any(|s| is_free_in(var, s));
        if needs_rename {
            let mut avoid = repl_fv.clone();
            for s in &scopes {
                avoid.extend(free_vars(s));
            }
            avoid.insert(Name::from(var));
            let nb = fresh_name(b, &avoid);
            let renamed = scopes
                .into_iter()
                .map(|s| subst(s, b, &Expr::Var(nb.clone())))
                .collect();
            (nb, renamed)
        } else {
            (b.clone(), scopes.into_iter().cloned().collect())
        }
    }

    match e {
        Expr::Var(n) if n.as_ref() == var => replacement.clone(),
        Expr::Var(_) | Expr::Lit(_) | Expr::Table(_) => e.clone(),
        Expr::Map {
            var: b,
            body,
            input,
        } => {
            let input = subst_inner(input, var, replacement, repl_fv);
            if b.as_ref() == var {
                return Expr::Map {
                    var: b.clone(),
                    body: body.clone(),
                    input: Box::new(input),
                };
            }
            let (b, mut scopes) = guard_binder(b, vec![body], var, repl_fv);
            let body = subst_inner(&scopes.remove(0), var, replacement, repl_fv);
            Expr::Map {
                var: b,
                body: Box::new(body),
                input: Box::new(input),
            }
        }
        Expr::Select {
            var: b,
            pred,
            input,
        } => {
            let input = subst_inner(input, var, replacement, repl_fv);
            if b.as_ref() == var {
                return Expr::Select {
                    var: b.clone(),
                    pred: pred.clone(),
                    input: Box::new(input),
                };
            }
            let (b, mut scopes) = guard_binder(b, vec![pred], var, repl_fv);
            let pred = subst_inner(&scopes.remove(0), var, replacement, repl_fv);
            Expr::Select {
                var: b,
                pred: Box::new(pred),
                input: Box::new(input),
            }
        }
        Expr::Quant {
            q,
            var: b,
            range,
            pred,
        } => {
            let range = subst_inner(range, var, replacement, repl_fv);
            if b.as_ref() == var {
                return Expr::Quant {
                    q: *q,
                    var: b.clone(),
                    range: Box::new(range),
                    pred: pred.clone(),
                };
            }
            let (b, mut scopes) = guard_binder(b, vec![pred], var, repl_fv);
            let pred = subst_inner(&scopes.remove(0), var, replacement, repl_fv);
            Expr::Quant {
                q: *q,
                var: b,
                range: Box::new(range),
                pred: Box::new(pred),
            }
        }
        Expr::Let {
            var: b,
            value,
            body,
        } => {
            let value = subst_inner(value, var, replacement, repl_fv);
            if b.as_ref() == var {
                return Expr::Let {
                    var: b.clone(),
                    value: Box::new(value),
                    body: body.clone(),
                };
            }
            let (b, mut scopes) = guard_binder(b, vec![body], var, repl_fv);
            let body = subst_inner(&scopes.remove(0), var, replacement, repl_fv);
            Expr::Let {
                var: b,
                value: Box::new(value),
                body: Box::new(body),
            }
        }
        Expr::Join {
            kind,
            lvar,
            rvar,
            pred,
            left,
            right,
        } => {
            let left = subst_inner(left, var, replacement, repl_fv);
            let right = subst_inner(right, var, replacement, repl_fv);
            if lvar.as_ref() == var || rvar.as_ref() == var {
                return Expr::Join {
                    kind: *kind,
                    lvar: lvar.clone(),
                    rvar: rvar.clone(),
                    pred: pred.clone(),
                    left: Box::new(left),
                    right: Box::new(right),
                };
            }
            // Join predicates bind two variables; guard each in turn.
            let (lvar2, mut scopes) = guard_binder(lvar, vec![pred], var, repl_fv);
            let pred1 = scopes.remove(0);
            let (rvar2, mut scopes) = guard_binder(rvar, vec![&pred1], var, repl_fv);
            let pred2 = scopes.remove(0);
            let pred = subst_inner(&pred2, var, replacement, repl_fv);
            Expr::Join {
                kind: *kind,
                lvar: lvar2,
                rvar: rvar2,
                pred: Box::new(pred),
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        Expr::NestJoin {
            lvar,
            rvar,
            pred,
            rfunc,
            as_attr,
            left,
            right,
        } => {
            let left = subst_inner(left, var, replacement, repl_fv);
            let right = subst_inner(right, var, replacement, repl_fv);
            if lvar.as_ref() == var || rvar.as_ref() == var {
                return Expr::NestJoin {
                    lvar: lvar.clone(),
                    rvar: rvar.clone(),
                    pred: pred.clone(),
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                    left: Box::new(left),
                    right: Box::new(right),
                };
            }
            let (lvar2, mut scopes) = guard_binder(lvar, vec![pred], var, repl_fv);
            let pred1 = scopes.remove(0);
            let mut scope_vec: Vec<&Expr> = vec![&pred1];
            let rfunc_ref;
            if let Some(g) = rfunc {
                rfunc_ref = g.as_ref().clone();
                scope_vec.push(&rfunc_ref);
            }
            let (rvar2, mut scopes) = guard_binder(rvar, scope_vec, var, repl_fv);
            let pred2 = scopes.remove(0);
            let rfunc2 = if rfunc.is_some() {
                Some(scopes.remove(0))
            } else {
                None
            };
            let pred = subst_inner(&pred2, var, replacement, repl_fv);
            let rfunc = rfunc2.map(|g| Box::new(subst_inner(&g, var, replacement, repl_fv)));
            Expr::NestJoin {
                lvar: lvar2,
                rvar: rvar2,
                pred: Box::new(pred),
                rfunc,
                as_attr: as_attr.clone(),
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        other => other
            .clone()
            .map_children(&mut |c| subst_inner(&c, var, replacement, repl_fv)),
    }
}

/// α-equivalence: structural equality modulo bound variable names.
pub fn alpha_eq(a: &Expr, b: &Expr) -> bool {
    alpha_eq_inner(a, b, &mut Vec::new())
}

/// Bound-variable correspondence stack used by α-equivalence.
type PairStack = Vec<(Name, Name)>;

fn alpha_eq_inner(a: &Expr, b: &Expr, pairs: &mut PairStack) -> bool {
    use Expr::*;
    let with_pair =
        |pairs: &mut PairStack, va: &Name, vb: &Name, k: &mut dyn FnMut(&mut PairStack) -> bool| {
            pairs.push((va.clone(), vb.clone()));
            let r = k(pairs);
            pairs.pop();
            r
        };
    match (a, b) {
        (Var(x), Var(y)) => {
            for (px, py) in pairs.iter().rev() {
                if px == x || py == y {
                    return px == x && py == y;
                }
            }
            x == y
        }
        (Lit(x), Lit(y)) => x == y,
        (Table(x), Table(y)) => x == y,
        (
            Map {
                var: va,
                body: ba,
                input: ia,
            },
            Map {
                var: vb,
                body: bb,
                input: ib,
            },
        ) => {
            alpha_eq_inner(ia, ib, pairs)
                && with_pair(pairs, va, vb, &mut |p| alpha_eq_inner(ba, bb, p))
        }
        (
            Select {
                var: va,
                pred: pa,
                input: ia,
            },
            Select {
                var: vb,
                pred: pb,
                input: ib,
            },
        ) => {
            alpha_eq_inner(ia, ib, pairs)
                && with_pair(pairs, va, vb, &mut |p| alpha_eq_inner(pa, pb, p))
        }
        (
            Quant {
                q: qa,
                var: va,
                range: ra,
                pred: pa,
            },
            Quant {
                q: qb,
                var: vb,
                range: rb,
                pred: pb,
            },
        ) => {
            qa == qb
                && alpha_eq_inner(ra, rb, pairs)
                && with_pair(pairs, va, vb, &mut |p| alpha_eq_inner(pa, pb, p))
        }
        (
            Let {
                var: va,
                value: la,
                body: ba,
            },
            Let {
                var: vb,
                value: lb,
                body: bb,
            },
        ) => {
            alpha_eq_inner(la, lb, pairs)
                && with_pair(pairs, va, vb, &mut |p| alpha_eq_inner(ba, bb, p))
        }
        (
            Join {
                kind: ka,
                lvar: la,
                rvar: ra,
                pred: pa,
                left: lla,
                right: rra,
            },
            Join {
                kind: kb,
                lvar: lb,
                rvar: rb,
                pred: pb,
                left: llb,
                right: rrb,
            },
        ) => {
            ka == kb
                && alpha_eq_inner(lla, llb, pairs)
                && alpha_eq_inner(rra, rrb, pairs)
                && with_pair(pairs, la, lb, &mut |p| {
                    with_pair(p, ra, rb, &mut |p2| alpha_eq_inner(pa, pb, p2))
                })
        }
        (
            NestJoin {
                lvar: la,
                rvar: ra,
                pred: pa,
                rfunc: fa,
                as_attr: aa,
                left: lla,
                right: rra,
            },
            NestJoin {
                lvar: lb,
                rvar: rb,
                pred: pb,
                rfunc: fbx,
                as_attr: ab,
                left: llb,
                right: rrb,
            },
        ) => {
            aa == ab
                && alpha_eq_inner(lla, llb, pairs)
                && alpha_eq_inner(rra, rrb, pairs)
                && with_pair(pairs, la, lb, &mut |p| {
                    with_pair(p, ra, rb, &mut |p2| alpha_eq_inner(pa, pb, p2))
                })
                && match (fa, fbx) {
                    (None, None) => true,
                    (Some(ga), Some(gb)) => {
                        with_pair(pairs, ra, rb, &mut |p| alpha_eq_inner(ga, gb, p))
                    }
                    _ => false,
                }
        }
        // Non-binding nodes: same discriminant, same non-expr payload,
        // α-equivalent children in order.
        _ => {
            if std::mem::discriminant(a) != std::mem::discriminant(b) {
                return false;
            }
            if !same_shape(a, b) {
                return false;
            }
            let (mut ca, mut cb) = (Vec::new(), Vec::new());
            a.for_each_child(&mut |c| ca.push(c));
            b.for_each_child(&mut |c| cb.push(c));
            ca.len() == cb.len() && ca.iter().zip(&cb).all(|(x, y)| alpha_eq_inner(x, y, pairs))
        }
    }
}

/// Non-expression payload equality for non-binding variants.
fn same_shape(a: &Expr, b: &Expr) -> bool {
    use Expr::*;
    match (a, b) {
        (TupleCons(fa), TupleCons(fbb)) => {
            fa.len() == fbb.len() && fa.iter().zip(fbb).all(|((na, _), (nb, _))| na == nb)
        }
        (Field(_, na), Field(_, nb)) => na == nb,
        (TupleProject(_, na), TupleProject(_, nb)) => na == nb,
        (Except(_, ua), Except(_, ub)) => {
            ua.len() == ub.len() && ua.iter().zip(ub).all(|((na, _), (nb, _))| na == nb)
        }
        (Deref(_, ca), Deref(_, cb)) => ca == cb,
        (Cmp(oa, ..), Cmp(ob, ..)) => oa == ob,
        (Arith(oa, ..), Arith(ob, ..)) => oa == ob,
        (SetOp(oa, ..), SetOp(ob, ..)) => oa == ob,
        (SetCmp(oa, ..), SetCmp(ob, ..)) => oa == ob,
        (Agg(oa, _), Agg(ob, _)) => oa == ob,
        (Project { attrs: aa, .. }, Project { attrs: ab, .. }) => aa == ab,
        (Rename { pairs: pa, .. }, Rename { pairs: pb, .. }) => pa == pb,
        (Unnest { attr: aa, .. }, Unnest { attr: ab, .. }) => aa == ab,
        (
            Nest {
                attrs: aa,
                as_attr: na,
                ..
            },
            Nest {
                attrs: ab,
                as_attr: nb,
                ..
            },
        ) => aa == ab && na == nb,
        _ => true,
    }
}

/// Negation of a quantifier expression by pushing `¬` through (¬∃ ≡ ∀¬,
/// ¬∀ ≡ ∃¬) — §5.2.1: "the universal quantifier is transformed into a
/// negated existential quantifier by pushing through negation".
pub fn negate(e: &Expr) -> Expr {
    match e {
        Expr::Not(inner) => (**inner).clone(),
        Expr::Lit(Value::Bool(b)) => Expr::Lit(Value::Bool(!b)),
        Expr::And(a, b) => Expr::Or(Box::new(negate(a)), Box::new(negate(b))),
        Expr::Or(a, b) => Expr::And(Box::new(negate(a)), Box::new(negate(b))),
        Expr::Quant {
            q,
            var,
            range,
            pred,
        } => Expr::Quant {
            q: q.dual(),
            var: var.clone(),
            range: range.clone(),
            pred: Box::new(negate(pred)),
        },
        Expr::Cmp(op, a, b) => Expr::Cmp(op.negate(), a.clone(), b.clone()),
        other => Expr::Not(Box::new(other.clone())),
    }
}

use oodb_value::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn free_vars_respects_binders() {
        // σ[x : x.a = y.b](X) — x bound, y free
        let e = select(
            "x",
            eq(var("x").field("a"), var("y").field("b")),
            table("X"),
        );
        let fv = free_vars(&e);
        assert!(fv.iter().any(|n| n.as_ref() == "y"));
        assert!(!fv.iter().any(|n| n.as_ref() == "x"));
        assert!(is_free_in("y", &e));
        assert!(!is_free_in("x", &e));
    }

    #[test]
    fn free_vars_in_quantifier_range_but_not_pred() {
        // ∃x ∈ x.c • x.a = 1 : the *range* x is free, the pred x is bound
        let e = exists(
            "x",
            var("x").field("c"),
            eq(var("x").field("a"), Expr::int(1)),
        );
        assert!(is_free_in("x", &e));
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        let e = and(
            eq(var("x"), Expr::int(1)),
            exists("x", table("Y"), eq(var("x"), Expr::int(2))),
        );
        let out = subst(&e, "x", &Expr::int(9));
        let expected = and(
            eq(Expr::int(9), Expr::int(1)),
            exists("x", table("Y"), eq(var("x"), Expr::int(2))),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn subst_avoids_capture() {
        // (∃y ∈ Y • y = x)[y / x] must not capture: the binder is renamed.
        let e = exists("y", table("Y"), eq(var("y"), var("x")));
        let out = subst(&e, "x", &var("y"));
        // the result must be α-equivalent to ∃y' ∈ Y • y' = y
        let expected = exists("y_1", table("Y"), eq(var("y_1"), var("y")));
        assert!(alpha_eq(&out, &expected), "got {out:?}");
        // and NOT equal to the captured version
        let captured = exists("y", table("Y"), eq(var("y"), var("y")));
        assert!(!alpha_eq(&out, &captured));
    }

    #[test]
    fn subst_into_join_predicate() {
        let e = semijoin(
            "a",
            "b",
            eq(var("a").field("k"), var("z")),
            table("X"),
            table("Y"),
        );
        let out = subst(&e, "z", &Expr::int(5));
        let expected = semijoin(
            "a",
            "b",
            eq(var("a").field("k"), Expr::int(5)),
            table("X"),
            table("Y"),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn fresh_name_is_deterministic() {
        let mut avoid = FxHashSet::default();
        assert_eq!(fresh_name("y", &avoid).as_ref(), "y");
        avoid.insert(Name::from("y"));
        assert_eq!(fresh_name("y", &avoid).as_ref(), "y_1");
        avoid.insert(Name::from("y_1"));
        assert_eq!(fresh_name("y", &avoid).as_ref(), "y_2");
    }

    #[test]
    fn alpha_eq_ignores_binder_names() {
        let a = select("x", eq(var("x").field("a"), Expr::int(1)), table("X"));
        let b = select("u", eq(var("u").field("a"), Expr::int(1)), table("X"));
        assert!(alpha_eq(&a, &b));
        let c = select("u", eq(var("u").field("b"), Expr::int(1)), table("X"));
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn alpha_eq_distinguishes_free_vars() {
        assert!(alpha_eq(&var("x"), &var("x")));
        assert!(!alpha_eq(&var("x"), &var("y")));
    }

    #[test]
    fn negate_pushes_through_quantifiers() {
        // ¬∀z ∈ c • p  ≡  ∃z ∈ c • ¬p
        let e = forall("z", var("c"), eq(var("z"), Expr::int(1)));
        let n = negate(&e);
        let expected = exists("z", var("c"), ne(var("z"), Expr::int(1)));
        assert_eq!(n, expected);
        // double negation cancels
        assert_eq!(negate(&Expr::Not(Box::new(var("p")))), var("p"));
        assert_eq!(negate(&Expr::true_()), Expr::false_());
    }

    #[test]
    fn negate_demorgan() {
        let e = and(var("p"), var("q"));
        let n = negate(&e);
        assert_eq!(
            n,
            or(Expr::Not(Box::new(var("p"))), Expr::Not(Box::new(var("q"))))
        );
    }
}

//! A small construction DSL for ADL expressions.
//!
//! Rewrite rules, tests and benchmarks build many expressions; these free
//! functions keep them close to the paper's notation:
//!
//! ```
//! use oodb_adl::dsl::*;
//! // σ[s : ∃x ∈ s.parts • ∃p ∈ PART • x = p.pid ∧ p.color = "red"](SUPPLIER)
//! let q = select(
//!     "s",
//!     exists(
//!         "x",
//!         var("s").field("parts"),
//!         exists(
//!             "p",
//!             table("PART"),
//!             and(
//!                 eq(var("x"), var("p").field("pid")),
//!                 eq(var("p").field("color"), str_lit("red")),
//!             ),
//!         ),
//!     ),
//!     table("SUPPLIER"),
//! );
//! assert!(q.mentions_table());
//! ```

use crate::expr::{AggOp, Expr, JoinKind, QuantKind, SetOp};
use oodb_value::{ArithOp, CmpOp, Name, SetCmpOp, Value};

/// Variable reference.
pub fn var(n: &str) -> Expr {
    Expr::var(n)
}

/// Base table reference.
pub fn table(n: &str) -> Expr {
    Expr::table(n)
}

/// Integer literal.
pub fn int(i: i64) -> Expr {
    Expr::int(i)
}

/// String literal.
pub fn str_lit(s: &str) -> Expr {
    Expr::str(s)
}

/// Literal from a value.
pub fn lit(v: Value) -> Expr {
    Expr::Lit(v)
}

/// `a = b`
pub fn eq(a: Expr, b: Expr) -> Expr {
    Expr::Cmp(CmpOp::Eq, Box::new(a), Box::new(b))
}

/// `a ≠ b`
pub fn ne(a: Expr, b: Expr) -> Expr {
    Expr::Cmp(CmpOp::Ne, Box::new(a), Box::new(b))
}

/// `a < b`
pub fn lt(a: Expr, b: Expr) -> Expr {
    Expr::Cmp(CmpOp::Lt, Box::new(a), Box::new(b))
}

/// `a ≤ b`
pub fn le(a: Expr, b: Expr) -> Expr {
    Expr::Cmp(CmpOp::Le, Box::new(a), Box::new(b))
}

/// `a > b`
pub fn gt(a: Expr, b: Expr) -> Expr {
    Expr::Cmp(CmpOp::Gt, Box::new(a), Box::new(b))
}

/// `a ≥ b`
pub fn ge(a: Expr, b: Expr) -> Expr {
    Expr::Cmp(CmpOp::Ge, Box::new(a), Box::new(b))
}

/// `a ∧ b`
pub fn and(a: Expr, b: Expr) -> Expr {
    Expr::And(Box::new(a), Box::new(b))
}

/// `a ∨ b`
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::Or(Box::new(a), Box::new(b))
}

/// `¬a`
pub fn not(a: Expr) -> Expr {
    Expr::Not(Box::new(a))
}

/// Arithmetic.
pub fn arith(op: ArithOp, a: Expr, b: Expr) -> Expr {
    Expr::Arith(op, Box::new(a), Box::new(b))
}

/// Set comparison `a θ b`.
pub fn set_cmp(op: SetCmpOp, a: Expr, b: Expr) -> Expr {
    Expr::SetCmp(op, Box::new(a), Box::new(b))
}

/// `x ∈ s`
pub fn member(x: Expr, s: Expr) -> Expr {
    set_cmp(SetCmpOp::In, x, s)
}

/// Binary set operation.
pub fn set_op(op: SetOp, a: Expr, b: Expr) -> Expr {
    Expr::SetOp(op, Box::new(a), Box::new(b))
}

/// `⋃(e)` — flatten / multiple union.
pub fn flatten(e: Expr) -> Expr {
    Expr::Flatten(Box::new(e))
}

/// `count(e)`
pub fn count(e: Expr) -> Expr {
    Expr::Agg(AggOp::Count, Box::new(e))
}

/// Aggregate application.
pub fn agg(op: AggOp, e: Expr) -> Expr {
    Expr::Agg(op, Box::new(e))
}

/// `α[var : body](input)`
pub fn map(v: &str, body: Expr, input: Expr) -> Expr {
    Expr::Map {
        var: Name::from(v),
        body: Box::new(body),
        input: Box::new(input),
    }
}

/// `σ[var : pred](input)`
pub fn select(v: &str, pred: Expr, input: Expr) -> Expr {
    Expr::Select {
        var: Name::from(v),
        pred: Box::new(pred),
        input: Box::new(input),
    }
}

/// `π_{attrs}(input)`
pub fn project(attrs: &[&str], input: Expr) -> Expr {
    Expr::Project {
        attrs: attrs.iter().map(|a| Name::from(*a)).collect(),
        input: Box::new(input),
    }
}

/// `ρ_{old→new}(input)`
pub fn rename(pairs: &[(&str, &str)], input: Expr) -> Expr {
    Expr::Rename {
        pairs: pairs
            .iter()
            .map(|(o, n)| (Name::from(*o), Name::from(*n)))
            .collect(),
        input: Box::new(input),
    }
}

/// `μ_attr(input)`
pub fn unnest(attr: &str, input: Expr) -> Expr {
    Expr::Unnest {
        attr: Name::from(attr),
        input: Box::new(input),
    }
}

/// `ν_{attrs→as_attr}(input)`
pub fn nest(attrs: &[&str], as_attr: &str, input: Expr) -> Expr {
    Expr::Nest {
        attrs: attrs.iter().map(|a| Name::from(*a)).collect(),
        as_attr: Name::from(as_attr),
        input: Box::new(input),
    }
}

/// `l × r`
pub fn product(l: Expr, r: Expr) -> Expr {
    Expr::Product(Box::new(l), Box::new(r))
}

/// `l ⋈_{lv,rv : pred} r`
pub fn join(lv: &str, rv: &str, pred: Expr, l: Expr, r: Expr) -> Expr {
    Expr::Join {
        kind: JoinKind::Inner,
        lvar: Name::from(lv),
        rvar: Name::from(rv),
        pred: Box::new(pred),
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// `l ⋉_{lv,rv : pred} r`
pub fn semijoin(lv: &str, rv: &str, pred: Expr, l: Expr, r: Expr) -> Expr {
    Expr::Join {
        kind: JoinKind::Semi,
        lvar: Name::from(lv),
        rvar: Name::from(rv),
        pred: Box::new(pred),
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// `l ▷_{lv,rv : pred} r`
pub fn antijoin(lv: &str, rv: &str, pred: Expr, l: Expr, r: Expr) -> Expr {
    Expr::Join {
        kind: JoinKind::Anti,
        lvar: Name::from(lv),
        rvar: Name::from(rv),
        pred: Box::new(pred),
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// `l ⟕_{lv,rv : pred} r` — left outer join.
pub fn outerjoin(lv: &str, rv: &str, pred: Expr, l: Expr, r: Expr) -> Expr {
    Expr::Join {
        kind: JoinKind::LeftOuter,
        lvar: Name::from(lv),
        rvar: Name::from(rv),
        pred: Box::new(pred),
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// Simple nestjoin `l ⊣_{lv,rv : pred; as_attr} r`.
pub fn nestjoin(lv: &str, rv: &str, pred: Expr, as_attr: &str, l: Expr, r: Expr) -> Expr {
    Expr::NestJoin {
        lvar: Name::from(lv),
        rvar: Name::from(rv),
        pred: Box::new(pred),
        rfunc: None,
        as_attr: Name::from(as_attr),
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// Extended nestjoin with a function over right tuples.
pub fn nestjoin_with(
    lv: &str,
    rv: &str,
    pred: Expr,
    rfunc: Expr,
    as_attr: &str,
    l: Expr,
    r: Expr,
) -> Expr {
    Expr::NestJoin {
        lvar: Name::from(lv),
        rvar: Name::from(rv),
        pred: Box::new(pred),
        rfunc: Some(Box::new(rfunc)),
        as_attr: Name::from(as_attr),
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// `∃v ∈ range • pred`
pub fn exists(v: &str, range: Expr, pred: Expr) -> Expr {
    Expr::Quant {
        q: QuantKind::Exists,
        var: Name::from(v),
        range: Box::new(range),
        pred: Box::new(pred),
    }
}

/// `∀v ∈ range • pred`
pub fn forall(v: &str, range: Expr, pred: Expr) -> Expr {
    Expr::Quant {
        q: QuantKind::Forall,
        var: Name::from(v),
        range: Box::new(range),
        pred: Box::new(pred),
    }
}

/// Tuple construction `⟨n₁ = e₁, …⟩`.
pub fn tuple(fields: Vec<(&str, Expr)>) -> Expr {
    Expr::TupleCons(
        fields
            .into_iter()
            .map(|(n, e)| (Name::from(n), e))
            .collect(),
    )
}

/// Tuple concatenation `a ∘ b`.
pub fn concat(a: Expr, b: Expr) -> Expr {
    Expr::Concat(Box::new(a), Box::new(b))
}

/// Tuple subscription `e[attrs]`.
pub fn tuple_project(e: Expr, attrs: &[&str]) -> Expr {
    Expr::TupleProject(Box::new(e), attrs.iter().map(|a| Name::from(*a)).collect())
}

/// `e except (n₁ = e₁, …)`
pub fn except(e: Expr, updates: Vec<(&str, Expr)>) -> Expr {
    Expr::Except(
        Box::new(e),
        updates
            .into_iter()
            .map(|(n, u)| (Name::from(n), u))
            .collect(),
    )
}

/// Materialize / pointer dereference: the `class` object named by oid `e`.
pub fn deref(e: Expr, class: &str) -> Expr {
    Expr::Deref(Box::new(e), Name::from(class))
}

/// `let v = value in body`
pub fn let_(v: &str, value: Expr, body: Expr) -> Expr {
    Expr::Let {
        var: Name::from(v),
        value: Box::new(value),
        body: Box::new(body),
    }
}

/// Relational division `a ÷ b`.
pub fn div(a: Expr, b: Expr) -> Expr {
    Expr::Div(Box::new(a), Box::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_builds_expected_nodes() {
        assert!(matches!(var("x"), Expr::Var(_)));
        assert!(matches!(
            select("x", Expr::true_(), table("X")),
            Expr::Select { .. }
        ));
        assert!(matches!(
            semijoin("a", "b", Expr::true_(), table("X"), table("Y")),
            Expr::Join {
                kind: JoinKind::Semi,
                ..
            }
        ));
        assert!(matches!(
            nestjoin("a", "b", Expr::true_(), "ys", table("X"), table("Y")),
            Expr::NestJoin { rfunc: None, .. }
        ));
        assert!(matches!(count(table("X")), Expr::Agg(AggOp::Count, _)));
        assert!(matches!(
            set_op(SetOp::Union, var("a"), var("b")),
            Expr::SetOp(..)
        ));
    }
}

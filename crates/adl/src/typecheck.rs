//! Type inference for ADL expressions.
//!
//! ADL is a typed algebra (§3); every operator has typing constraints
//! (e.g. unnest requires a set-valued attribute whose elements are tuples,
//! joins require disjoint schemas so tuple concatenation is defined). The
//! checker both validates hand-built plans and computes the schemas the
//! physical planner needs (outer joins must know the right-hand attribute
//! set to pad, nest must know the grouping attributes, …).

use crate::expr::{AggOp, Expr, JoinKind};
use oodb_catalog::Catalog;
use oodb_value::fxhash::FxHashMap;
use oodb_value::{Name, TupleType, Type};
use std::fmt;

/// Static type errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdlTypeError {
    /// Unbound variable.
    UnboundVar(Name),
    /// Unknown base table.
    UnknownTable(Name),
    /// Unknown class in a `Deref`.
    UnknownClass(Name),
    /// Attribute missing from a tuple type.
    NoSuchAttr { attr: Name, ty: String },
    /// Operator applied to an operand of the wrong shape.
    Shape { op: &'static str, found: String },
    /// Two operand types failed to unify.
    Mismatch {
        op: &'static str,
        lhs: String,
        rhs: String,
    },
    /// Attribute conflicts in concatenation/product/join.
    Conflict { op: &'static str, attr: Name },
    /// Nestjoin group attribute already present in the left schema
    /// (`a ∉ SCH(e₁)` side condition of definition 1).
    GroupAttrTaken(Name),
    /// Aggregate typing error.
    BadAggregate { agg: &'static str, found: String },
    /// Division schema condition violated (`SCH(e₂) ⊄ SCH(e₁)`).
    BadDivision { lhs: String, rhs: String },
}

impl fmt::Display for AdlTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdlTypeError::UnboundVar(n) => write!(f, "unbound variable `{n}`"),
            AdlTypeError::UnknownTable(n) => write!(f, "unknown base table `{n}`"),
            AdlTypeError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            AdlTypeError::NoSuchAttr { attr, ty } => {
                write!(f, "no attribute `{attr}` in {ty}")
            }
            AdlTypeError::Shape { op, found } => {
                write!(f, "`{op}` applied to operand of type {found}")
            }
            AdlTypeError::Mismatch { op, lhs, rhs } => {
                write!(f, "`{op}` operand types do not match: {lhs} vs {rhs}")
            }
            AdlTypeError::Conflict { op, attr } => {
                write!(f, "attribute `{attr}` appears on both sides of `{op}`")
            }
            AdlTypeError::GroupAttrTaken(a) => {
                write!(f, "nestjoin group attribute `{a}` already in left schema")
            }
            AdlTypeError::BadAggregate { agg, found } => {
                write!(f, "aggregate `{agg}` not defined on {found}")
            }
            AdlTypeError::BadDivision { lhs, rhs } => {
                write!(f, "division schema condition violated: {lhs} ÷ {rhs}")
            }
        }
    }
}

impl std::error::Error for AdlTypeError {}

/// A lexical variable typing environment.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    vars: FxHashMap<Name, Type>,
}

impl TypeEnv {
    /// Empty environment.
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// Returns an environment extended with `var : ty`.
    pub fn bind(&self, var: &Name, ty: Type) -> TypeEnv {
        let mut vars = self.vars.clone();
        vars.insert(var.clone(), ty);
        TypeEnv { vars }
    }

    /// Looks a variable up.
    pub fn get(&self, var: &str) -> Option<&Type> {
        self.vars.get(var)
    }
}

/// Infers the type of `e` in environment `env` against `catalog`.
pub fn infer(e: &Expr, env: &TypeEnv, catalog: &Catalog) -> Result<Type, AdlTypeError> {
    use Expr::*;
    match e {
        Lit(v) => Ok(v.type_of()),
        Var(n) => env
            .get(n)
            .cloned()
            .ok_or_else(|| AdlTypeError::UnboundVar(n.clone())),
        Table(n) => catalog
            .extent_type(n)
            .ok_or_else(|| AdlTypeError::UnknownTable(n.clone())),

        TupleCons(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (n, fe) in fields {
                out.push((n.clone(), infer(fe, env, catalog)?));
            }
            TupleType::new(out)
                .map(Type::Tuple)
                .map_err(|_| AdlTypeError::Conflict {
                    op: "tuple construction",
                    attr: dup_name(fields),
                })
        }
        Field(inner, attr) => {
            let t = infer(inner, env, catalog)?;
            field_type(&t, attr)
        }
        TupleProject(inner, attrs) => {
            let t = infer(inner, env, catalog)?;
            let tt = tuple_of(&t, "tuple subscription")?;
            tt.subscript(attrs)
                .map(Type::Tuple)
                .map_err(|_| AdlTypeError::NoSuchAttr {
                    attr: attrs
                        .iter()
                        .find(|a| !tt.has_field(a))
                        .cloned()
                        .unwrap_or_else(|| Name::from("?")),
                    ty: t.to_string(),
                })
        }
        Except(inner, updates) => {
            let t = infer(inner, env, catalog)?;
            let mut tt = tuple_of(&t, "except")?.clone();
            for (n, ue) in updates {
                let ut = infer(ue, env, catalog)?;
                tt = tt.with_field(n.clone(), ut);
            }
            Ok(Type::Tuple(tt))
        }
        Concat(a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            let (ta, tb) = (tuple_of(&ta, "∘")?, tuple_of(&tb, "∘")?);
            ta.concat(tb).map(Type::Tuple).map_err(|e| match e {
                oodb_value::ValueError::DuplicateField(a) => {
                    AdlTypeError::Conflict { op: "∘", attr: a }
                }
                _ => AdlTypeError::Shape {
                    op: "∘",
                    found: ta.to_string(),
                },
            })
        }
        Deref(inner, class) => {
            let t = infer(inner, env, catalog)?;
            let c = catalog
                .class(class)
                .ok_or_else(|| AdlTypeError::UnknownClass(class.clone()))?;
            match t {
                Type::Oid(None) => Ok(c.object_type()),
                Type::Oid(Some(tag)) if tag == c.name => Ok(c.object_type()),
                other => Err(AdlTypeError::Shape {
                    op: "deref",
                    found: other.to_string(),
                }),
            }
        }

        Cmp(op, a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            let numeric_mix = matches!(
                (&ta, &tb),
                (Type::Int, Type::Float) | (Type::Float, Type::Int)
            );
            if ta.unify(&tb).is_none() && !numeric_mix {
                return Err(AdlTypeError::Mismatch {
                    op: op.symbol(),
                    lhs: ta.to_string(),
                    rhs: tb.to_string(),
                });
            }
            use oodb_value::CmpOp;
            if !matches!(op, CmpOp::Eq | CmpOp::Ne) && !ta.is_ordered() && !numeric_mix {
                return Err(AdlTypeError::Shape {
                    op: op.symbol(),
                    found: ta.to_string(),
                });
            }
            Ok(Type::Bool)
        }
        Arith(op, a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            match (&ta, &tb) {
                (Type::Int, Type::Int) => Ok(Type::Int),
                (Type::Float, Type::Float)
                | (Type::Int, Type::Float)
                | (Type::Float, Type::Int) => Ok(Type::Float),
                (Type::Unknown, _) | (_, Type::Unknown) => Ok(Type::Unknown),
                _ => Err(AdlTypeError::Mismatch {
                    op: op.symbol(),
                    lhs: ta.to_string(),
                    rhs: tb.to_string(),
                }),
            }
        }
        Not(inner) => {
            expect_bool(infer(inner, env, catalog)?, "¬")?;
            Ok(Type::Bool)
        }
        IsNull(inner) => {
            infer(inner, env, catalog)?;
            Ok(Type::Bool)
        }
        And(a, b) | Or(a, b) => {
            expect_bool(infer(a, env, catalog)?, "∧/∨")?;
            expect_bool(infer(b, env, catalog)?, "∧/∨")?;
            Ok(Type::Bool)
        }

        SetCons(es) => {
            let mut elem = Type::Unknown;
            for se in es {
                let t = infer(se, env, catalog)?;
                elem = elem.unify(&t).ok_or_else(|| AdlTypeError::Mismatch {
                    op: "set construction",
                    lhs: elem.to_string(),
                    rhs: t.to_string(),
                })?;
            }
            Ok(Type::set(elem))
        }
        SetOp(op, a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            set_of(&ta, op.symbol())?;
            ta.unify(&tb).ok_or_else(|| AdlTypeError::Mismatch {
                op: op.symbol(),
                lhs: ta.to_string(),
                rhs: tb.to_string(),
            })
        }
        SetCmp(op, a, b) => {
            use oodb_value::SetCmpOp::*;
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            let ok = match op {
                In | NotIn => {
                    let eb = set_of(&tb, op.symbol())?;
                    ta.unify(eb).is_some()
                }
                Contains | NotContains => {
                    let ea = set_of(&ta, op.symbol())?;
                    ea.unify(&tb).is_some()
                }
                _ => {
                    set_of(&ta, op.symbol())?;
                    set_of(&tb, op.symbol())?;
                    ta.unify(&tb).is_some()
                }
            };
            if ok {
                Ok(Type::Bool)
            } else {
                Err(AdlTypeError::Mismatch {
                    op: op.symbol(),
                    lhs: ta.to_string(),
                    rhs: tb.to_string(),
                })
            }
        }
        Flatten(inner) => {
            let t = infer(inner, env, catalog)?;
            let elem = set_of(&t, "⋃")?;
            match elem {
                Type::Set(_) => Ok(elem.clone()),
                Type::Unknown => Ok(Type::set(Type::Unknown)),
                other => Err(AdlTypeError::Shape {
                    op: "⋃",
                    found: format!("{{{other}}}"),
                }),
            }
        }
        Agg(op, inner) => {
            let t = infer(inner, env, catalog)?;
            let elem = set_of(&t, op.name())?;
            match op {
                AggOp::Count => Ok(Type::Int),
                AggOp::Sum => match elem {
                    Type::Int | Type::Unknown => Ok(Type::Int),
                    Type::Float => Ok(Type::Float),
                    other => Err(AdlTypeError::BadAggregate {
                        agg: op.name(),
                        found: format!("{{{other}}}"),
                    }),
                },
                AggOp::Min | AggOp::Max => {
                    if elem.is_ordered() {
                        Ok(elem.clone())
                    } else {
                        Err(AdlTypeError::BadAggregate {
                            agg: op.name(),
                            found: format!("{{{elem}}}"),
                        })
                    }
                }
                AggOp::Avg => match elem {
                    Type::Int | Type::Float | Type::Unknown => Ok(Type::Float),
                    other => Err(AdlTypeError::BadAggregate {
                        agg: op.name(),
                        found: format!("{{{other}}}"),
                    }),
                },
            }
        }

        Map { var, body, input } => {
            let ti = infer(input, env, catalog)?;
            let elem = set_of(&ti, "α")?.clone();
            let bt = infer(body, &env.bind(var, elem), catalog)?;
            Ok(Type::set(bt))
        }
        Select { var, pred, input } => {
            let ti = infer(input, env, catalog)?;
            let elem = set_of(&ti, "σ")?.clone();
            expect_bool(infer(pred, &env.bind(var, elem), catalog)?, "σ predicate")?;
            Ok(ti)
        }
        Project { attrs, input } => {
            let ti = infer(input, env, catalog)?;
            let tt = table_of(&ti, "π")?;
            tt.subscript(attrs)
                .map(|t| Type::set(Type::Tuple(t)))
                .map_err(|_| AdlTypeError::NoSuchAttr {
                    attr: attrs
                        .iter()
                        .find(|a| !tt.has_field(a))
                        .cloned()
                        .unwrap_or_else(|| Name::from("?")),
                    ty: ti.to_string(),
                })
        }
        Rename { pairs, input } => {
            let ti = infer(input, env, catalog)?;
            let tt = table_of(&ti, "ρ")?;
            let mut fields: Vec<(Name, Type)> = Vec::with_capacity(tt.arity());
            for (n, t) in tt.iter() {
                let new = pairs
                    .iter()
                    .find(|(o, _)| o == n)
                    .map(|(_, nn)| nn.clone())
                    .unwrap_or_else(|| n.clone());
                fields.push((new, t.clone()));
            }
            for (o, _) in pairs {
                if !tt.has_field(o) {
                    return Err(AdlTypeError::NoSuchAttr {
                        attr: o.clone(),
                        ty: ti.to_string(),
                    });
                }
            }
            TupleType::new(fields)
                .map(|t| Type::set(Type::Tuple(t)))
                .map_err(|_| AdlTypeError::Conflict {
                    op: "ρ",
                    attr: pairs.first().map(|(_, n)| n.clone()).unwrap_or_default(),
                })
        }
        Unnest { attr, input } => {
            let ti = infer(input, env, catalog)?;
            let tt = table_of(&ti, "μ")?;
            let at = tt.field(attr).ok_or_else(|| AdlTypeError::NoSuchAttr {
                attr: attr.clone(),
                ty: ti.to_string(),
            })?;
            let inner_elem = set_of(at, "μ")?;
            // Generalized μ: tuple elements concatenate (paper def. 7);
            // atomic elements replace the attribute in place, so that
            // set-valued attributes of atoms (e.g. sets of oids) can be
            // flattened by the option-1 rewrite as well.
            let inner_tt = match inner_elem {
                Type::Tuple(t) => t.clone(),
                Type::Unknown => TupleType::default(),
                atomic if atomic.is_atomic() => {
                    TupleType::from_pairs([(attr.as_ref(), atomic.clone())])
                }
                other => {
                    return Err(AdlTypeError::Shape {
                        op: "μ",
                        found: format!("{{{other}}}"),
                    })
                }
            };
            let rest = tt.without(attr);
            rest.concat(&inner_tt)
                .map(|t| Type::set(Type::Tuple(t)))
                .map_err(|e| match e {
                    oodb_value::ValueError::DuplicateField(a) => {
                        AdlTypeError::Conflict { op: "μ", attr: a }
                    }
                    _ => AdlTypeError::Shape {
                        op: "μ",
                        found: ti.to_string(),
                    },
                })
        }
        Nest {
            attrs,
            as_attr,
            input,
        } => {
            let ti = infer(input, env, catalog)?;
            let tt = table_of(&ti, "ν")?;
            let grouped = tt.subscript(attrs).map_err(|_| AdlTypeError::NoSuchAttr {
                attr: attrs
                    .iter()
                    .find(|a| !tt.has_field(a))
                    .cloned()
                    .unwrap_or_else(|| Name::from("?")),
                ty: ti.to_string(),
            })?;
            let mut rest = tt.clone();
            for a in attrs {
                rest = rest.without(a);
            }
            if rest.has_field(as_attr) {
                return Err(AdlTypeError::GroupAttrTaken(as_attr.clone()));
            }
            let out = rest.with_field(as_attr.clone(), Type::set(Type::Tuple(grouped)));
            Ok(Type::set(Type::Tuple(out)))
        }
        Product(a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            let (ta_t, tb_t) = (table_of(&ta, "×")?, table_of(&tb, "×")?);
            ta_t.concat(tb_t)
                .map(|t| Type::set(Type::Tuple(t)))
                .map_err(|e| match e {
                    oodb_value::ValueError::DuplicateField(attr) => {
                        AdlTypeError::Conflict { op: "×", attr }
                    }
                    _ => AdlTypeError::Shape {
                        op: "×",
                        found: ta.to_string(),
                    },
                })
        }
        Join {
            kind,
            lvar,
            rvar,
            pred,
            left,
            right,
        } => {
            let tl = infer(left, env, catalog)?;
            let tr = infer(right, env, catalog)?;
            let (lelem, relem) = (set_of(&tl, "join")?.clone(), set_of(&tr, "join")?.clone());
            let penv = env.bind(lvar, lelem.clone()).bind(rvar, relem.clone());
            expect_bool(infer(pred, &penv, catalog)?, "join predicate")?;
            match kind {
                JoinKind::Semi | JoinKind::Anti => Ok(tl),
                JoinKind::Inner | JoinKind::LeftOuter => {
                    let lt = table_of(&tl, "⋈")?;
                    let rt = table_of(&tr, "⋈")?;
                    lt.concat(rt)
                        .map(|t| Type::set(Type::Tuple(t)))
                        .map_err(|e| match e {
                            oodb_value::ValueError::DuplicateField(attr) => {
                                AdlTypeError::Conflict { op: "⋈", attr }
                            }
                            _ => AdlTypeError::Shape {
                                op: "⋈",
                                found: tl.to_string(),
                            },
                        })
                }
            }
        }
        NestJoin {
            lvar,
            rvar,
            pred,
            rfunc,
            as_attr,
            left,
            right,
        } => {
            let tl = infer(left, env, catalog)?;
            let tr = infer(right, env, catalog)?;
            let lelem = set_of(&tl, "⊣")?.clone();
            let relem = set_of(&tr, "⊣")?.clone();
            let penv = env.bind(lvar, lelem.clone()).bind(rvar, relem.clone());
            expect_bool(infer(pred, &penv, catalog)?, "⊣ predicate")?;
            let collected = match rfunc {
                Some(g) => infer(g, &env.bind(rvar, relem), catalog)?,
                None => relem.clone(),
            };
            let lt = tuple_of(&lelem, "⊣")?;
            if lt.has_field(as_attr) {
                return Err(AdlTypeError::GroupAttrTaken(as_attr.clone()));
            }
            let out = lt.with_field(as_attr.clone(), Type::set(collected));
            Ok(Type::set(Type::Tuple(out)))
        }
        Quant {
            q: _,
            var,
            range,
            pred,
        } => {
            let tr = infer(range, env, catalog)?;
            let elem = set_of(&tr, "quantifier range")?.clone();
            expect_bool(
                infer(pred, &env.bind(var, elem), catalog)?,
                "quantified predicate",
            )?;
            Ok(Type::Bool)
        }
        Div(a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            let (at, bt) = (table_of(&ta, "÷")?, table_of(&tb, "÷")?);
            // SCH(b) must be a proper, type-compatible subset of SCH(a)
            let mut rest = at.clone();
            for (n, t) in bt.iter() {
                match at.field(n) {
                    Some(ft) if ft.unify(t).is_some() => rest = rest.without(n),
                    _ => {
                        return Err(AdlTypeError::BadDivision {
                            lhs: ta.to_string(),
                            rhs: tb.to_string(),
                        })
                    }
                }
            }
            if rest.arity() == 0 || rest.arity() == at.arity() {
                return Err(AdlTypeError::BadDivision {
                    lhs: ta.to_string(),
                    rhs: tb.to_string(),
                });
            }
            Ok(Type::set(Type::Tuple(rest)))
        }
        Let { var, value, body } => {
            let tv = infer(value, env, catalog)?;
            infer(body, &env.bind(var, tv), catalog)
        }
    }
}

fn field_type(t: &Type, attr: &Name) -> Result<Type, AdlTypeError> {
    match t {
        Type::Tuple(tt) => tt
            .field(attr)
            .cloned()
            .ok_or_else(|| AdlTypeError::NoSuchAttr {
                attr: attr.clone(),
                ty: t.to_string(),
            }),
        other => Err(AdlTypeError::Shape {
            op: "field access",
            found: other.to_string(),
        }),
    }
}

fn dup_name(fields: &[(Name, Expr)]) -> Name {
    let mut seen: Vec<&Name> = Vec::new();
    for (n, _) in fields {
        if seen.contains(&n) {
            return n.clone();
        }
        seen.push(n);
    }
    Name::from("?")
}

fn expect_bool(t: Type, op: &'static str) -> Result<(), AdlTypeError> {
    match t {
        Type::Bool | Type::Unknown => Ok(()),
        other => Err(AdlTypeError::Shape {
            op,
            found: other.to_string(),
        }),
    }
}

fn set_of<'a>(t: &'a Type, op: &'static str) -> Result<&'a Type, AdlTypeError> {
    match t {
        Type::Set(e) => Ok(e),
        other => Err(AdlTypeError::Shape {
            op,
            found: other.to_string(),
        }),
    }
}

fn tuple_of<'a>(t: &'a Type, op: &'static str) -> Result<&'a TupleType, AdlTypeError> {
    match t {
        Type::Tuple(tt) => Ok(tt),
        other => Err(AdlTypeError::Shape {
            op,
            found: other.to_string(),
        }),
    }
}

/// The element tuple type of a table type (`{⟨…⟩}`).
fn table_of<'a>(t: &'a Type, op: &'static str) -> Result<&'a TupleType, AdlTypeError> {
    match t {
        Type::Set(e) => tuple_of(e, op),
        other => Err(AdlTypeError::Shape {
            op,
            found: other.to_string(),
        }),
    }
}

/// Infers the type of a closed expression (no free variables).
pub fn infer_closed(e: &Expr, catalog: &Catalog) -> Result<Type, AdlTypeError> {
    infer(e, &TypeEnv::new(), catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn infer_sp(e: &Expr) -> Result<Type, AdlTypeError> {
        infer_closed(e, &supplier_part_catalog())
    }

    #[test]
    fn tables_and_selections_type() {
        let cat = supplier_part_catalog();
        let t = infer_closed(&table("SUPPLIER"), &cat).unwrap();
        assert!(t.is_set());
        let q = select(
            "s",
            eq(var("s").field("sname"), str_lit("s1")),
            table("SUPPLIER"),
        );
        assert_eq!(infer_sp(&q).unwrap(), t);
    }

    #[test]
    fn unknown_table_and_unbound_var_error() {
        assert!(matches!(
            infer_sp(&table("NOPE")),
            Err(AdlTypeError::UnknownTable(_))
        ));
        assert!(matches!(
            infer_sp(&var("x")),
            Err(AdlTypeError::UnboundVar(_))
        ));
    }

    #[test]
    fn map_produces_set_of_body_type() {
        let q = map("s", var("s").field("sname"), table("SUPPLIER"));
        assert_eq!(infer_sp(&q).unwrap(), Type::set(Type::Str));
    }

    #[test]
    fn field_on_non_tuple_fails() {
        let q = map(
            "s",
            var("s").field("sname").field("oops"),
            table("SUPPLIER"),
        );
        assert!(matches!(infer_sp(&q), Err(AdlTypeError::Shape { .. })));
    }

    #[test]
    fn semijoin_keeps_left_type() {
        let cat = supplier_part_catalog();
        let q = semijoin(
            "s",
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            table("SUPPLIER"),
            table("PART"),
        );
        assert_eq!(
            infer_closed(&q, &cat).unwrap(),
            cat.extent_type("SUPPLIER").unwrap()
        );
    }

    #[test]
    fn inner_join_concatenates_schemas_and_detects_conflicts() {
        // SUPPLIER ⋈ PART works (disjoint attrs)…
        let q = join("s", "p", Expr::true_(), table("SUPPLIER"), table("PART"));
        let t = infer_sp(&q).unwrap();
        let sch = t.sch().unwrap();
        assert!(sch.iter().any(|n| n.as_ref() == "sname"));
        assert!(sch.iter().any(|n| n.as_ref() == "color"));
        // …but SUPPLIER ⋈ SUPPLIER conflicts.
        let q2 = join(
            "a",
            "b",
            Expr::true_(),
            table("SUPPLIER"),
            table("SUPPLIER"),
        );
        assert!(matches!(infer_sp(&q2), Err(AdlTypeError::Conflict { .. })));
    }

    #[test]
    fn quantifier_types_as_bool() {
        let q = exists(
            "p",
            table("PART"),
            eq(var("p").field("color"), str_lit("red")),
        );
        assert_eq!(infer_sp(&q).unwrap(), Type::Bool);
        // non-bool predicate rejected
        let bad = exists("p", table("PART"), var("p").field("price"));
        assert!(infer_sp(&bad).is_err());
    }

    #[test]
    fn nestjoin_adds_group_attribute() {
        let q = nestjoin(
            "s",
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            "parts_suppl",
            table("SUPPLIER"),
            table("PART"),
        );
        let t = infer_sp(&q).unwrap();
        let tt = t.elem().unwrap().as_tuple().unwrap();
        assert!(tt.has_field("parts_suppl"));
        assert!(tt.field("parts_suppl").unwrap().is_set());
        // group attr collision detected
        let bad = nestjoin(
            "s",
            "p",
            Expr::true_(),
            "sname",
            table("SUPPLIER"),
            table("PART"),
        );
        assert!(matches!(
            infer_sp(&bad),
            Err(AdlTypeError::GroupAttrTaken(_))
        ));
    }

    #[test]
    fn nestjoin_rfunc_changes_collected_type() {
        let q = nestjoin_with(
            "s",
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            var("p").field("pname"),
            "names",
            table("SUPPLIER"),
            table("PART"),
        );
        let t = infer_sp(&q).unwrap();
        let tt = t.elem().unwrap().as_tuple().unwrap();
        assert_eq!(tt.field("names").unwrap(), &Type::set(Type::Str));
    }

    #[test]
    fn nest_and_unnest_type() {
        let cat = supplier_part_catalog();
        // μ_supply(DELIVERY): supply elements are ⟨part, quantity⟩ tuples
        let q = unnest("supply", table("DELIVERY"));
        let t = infer_closed(&q, &cat).unwrap();
        let tt = t.elem().unwrap().as_tuple().unwrap();
        assert!(tt.has_field("part"));
        assert!(tt.has_field("quantity"));
        assert!(tt.has_field("did"));
        assert!(!tt.has_field("supply"));
        // ν groups them back
        let q2 = nest(&["part", "quantity"], "supply", q);
        let t2 = infer_closed(&q2, &cat).unwrap();
        let tt2 = t2.elem().unwrap().as_tuple().unwrap();
        assert!(tt2.has_field("supply"));
    }

    #[test]
    fn unnest_of_atomic_set_flattens_in_place() {
        // SUPPLIER.parts is a set of oids; the generalized μ replaces the
        // attribute by each element (the paper's def. 7 covers tuple
        // elements; atoms are the unary-tuple degenerate case).
        let q = unnest("parts", table("SUPPLIER"));
        let t = infer_sp(&q).unwrap();
        let tt = t.elem().unwrap().as_tuple().unwrap();
        assert_eq!(
            tt.field("parts"),
            Some(&Type::Oid(Some(oodb_value::name("Part"))))
        );
        assert!(tt.has_field("sname"));
        // a set of sets still cannot be μ-flattened into a tuple schema
        let q2 = unnest(
            "c",
            Expr::Lit(oodb_value::Value::set([oodb_value::Value::tuple([(
                "c",
                oodb_value::Value::set([oodb_value::Value::set([])]),
            )])])),
        );
        let _ = q2; // typing a literal needs no catalog lookups
    }

    #[test]
    fn aggregates_type() {
        assert_eq!(infer_sp(&count(table("PART"))).unwrap(), Type::Int);
        let prices = map("p", var("p").field("price"), table("PART"));
        assert_eq!(
            infer_sp(&agg(AggOp::Sum, prices.clone())).unwrap(),
            Type::Int
        );
        assert_eq!(
            infer_sp(&agg(AggOp::Avg, prices.clone())).unwrap(),
            Type::Float
        );
        assert_eq!(infer_sp(&agg(AggOp::Min, prices)).unwrap(), Type::Int);
        assert!(infer_sp(&agg(AggOp::Sum, table("PART"))).is_err());
    }

    #[test]
    fn deref_materializes_class_type() {
        let cat = supplier_part_catalog();
        let q = map(
            "d",
            deref(var("d").field("supplier"), "Supplier").field("sname"),
            table("DELIVERY"),
        );
        assert_eq!(infer_closed(&q, &cat).unwrap(), Type::set(Type::Str));
        // wrong class tag rejected
        let bad = map(
            "d",
            deref(var("d").field("supplier"), "Part"),
            table("DELIVERY"),
        );
        assert!(infer_closed(&bad, &cat).is_err());
    }

    #[test]
    fn division_schema_condition() {
        let cat = supplier_part_catalog();
        // π_{did,part}(μ_supply(DELIVERY)) ÷ π_{part}(…) is well-formed
        let all = project(&["did", "part"], unnest("supply", table("DELIVERY")));
        let divisor = project(&["part"], unnest("supply", table("DELIVERY")));
        let q = div(all.clone(), divisor);
        let t = infer_closed(&q, &cat).unwrap();
        let tt = t.elem().unwrap().as_tuple().unwrap();
        assert!(tt.has_field("did") && !tt.has_field("part"));
        // dividing by itself violates the proper-subset condition
        assert!(matches!(
            infer_closed(&div(all.clone(), all), &cat),
            Err(AdlTypeError::BadDivision { .. })
        ));
    }

    #[test]
    fn let_binds_subquery_type() {
        let q = let_(
            "Y1",
            map("p", var("p").field("pid"), table("PART")),
            count(var("Y1")),
        );
        assert_eq!(infer_sp(&q).unwrap(), Type::Int);
    }

    #[test]
    fn set_cmp_typing() {
        let pids = map("p", var("p").field("pid"), table("PART"));
        let q = set_cmp(oodb_value::SetCmpOp::SubsetEq, pids.clone(), pids.clone());
        assert_eq!(infer_sp(&q).unwrap(), Type::Bool);
        let bad = set_cmp(
            oodb_value::SetCmpOp::SubsetEq,
            pids,
            map("p", var("p").field("pname"), table("PART")),
        );
        assert!(infer_sp(&bad).is_err());
    }
}

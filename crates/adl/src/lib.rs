//! # ADL — a typed algebra for complex objects
//!
//! The algebraic target language of *From Nested-Loop to Join Queries in
//! OODB* (Steenhagen, Apers, Blanken, de By; VLDB 1994), §3.
//!
//! ADL supports the tuple `⟨⟩` and set `{}` constructors, object identity
//! (`oid`), and two families of operators:
//!
//! * **iterators** — operators with lambda-expression parameters: map `α`,
//!   select `σ`, the join family (`⋈`, `⋉`, `▷`, and the paper's nestjoin
//!   `⊣`), and quantifiers `∃`/`∀`. Nesting other operators inside their
//!   parameters is how tuple-oriented (nested-loop) processing is
//!   expressed;
//! * **set-oriented operators** — product `×`, flatten `⋃`, projection
//!   `π`, renaming `ρ`, nest `ν` / unnest `μ`, division `÷`, set
//!   operations and comparisons, aggregates.
//!
//! The crate provides the expression IR ([`expr::Expr`]), variable
//! analysis and substitution ([`vars`]), type inference ([`typecheck`]),
//! a construction DSL ([`dsl`]), and a paper-notation pretty printer.
//!
//! The goal of translation and optimization (paper §3): *"to remove base
//! tables from the parameter expressions of iterators, moving from tuple-
//! to set-oriented query processing"* — implemented in the `oodb-core`
//! crate on top of this IR.

pub mod display;
pub mod dsl;
pub mod expr;
pub mod normalize;
pub mod typecheck;
pub mod vars;

pub use expr::{AggOp, Expr, JoinKind, QuantKind, SetOp};
pub use normalize::{key_hash, normal_key, normalize, referenced_classes, referenced_tables};
pub use typecheck::{infer, infer_closed, AdlTypeError, TypeEnv};
pub use vars::{alpha_eq, free_vars, fresh_name, is_free_in, negate, subst};

//! Paper-style pretty printing of ADL expressions.
//!
//! Output mirrors the paper's notation: `σ[x : p](X)`, `α[x : f](X)`,
//! `X ⋉_{x,y : p} Y`, `X ⊣_{x,y : p; a} Y`, `∃y ∈ Y • p`, `ν_{A→a}(e)`,
//! `μ_a(e)` — so rewrite traces read like the derivations in §5.

use crate::expr::{Expr, JoinKind, QuantKind};
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(self, f)
    }
}

fn write_names(f: &mut fmt::Formatter<'_>, names: &[oodb_value::Name]) -> fmt::Result {
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{n}")?;
    }
    Ok(())
}

fn write_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use Expr::*;
    match e {
        Lit(v) => write!(f, "{v}"),
        Var(n) => write!(f, "{n}"),
        Table(n) => write!(f, "{n}"),
        TupleCons(fields) => {
            write!(f, "⟨")?;
            for (i, (n, v)) in fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n} = {v}")?;
            }
            write!(f, "⟩")
        }
        Field(e, n) => write!(f, "{e}.{n}"),
        TupleProject(e, ns) => {
            write!(f, "{e}[")?;
            write_names(f, ns)?;
            write!(f, "]")
        }
        Except(e, updates) => {
            write!(f, "{e} except (")?;
            for (i, (n, v)) in updates.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n} = {v}")?;
            }
            write!(f, ")")
        }
        Concat(a, b) => write!(f, "({a} ∘ {b})"),
        Deref(e, c) => write!(f, "deref⟨{c}⟩({e})"),
        Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        Not(e) => write!(f, "¬{e}"),
        IsNull(e) => write!(f, "isnull({e})"),
        And(a, b) => write!(f, "({a} ∧ {b})"),
        Or(a, b) => write!(f, "({a} ∨ {b})"),
        SetCons(es) => {
            write!(f, "{{")?;
            for (i, v) in es.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")
        }
        SetOp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        SetCmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        Flatten(e) => write!(f, "⋃({e})"),
        Agg(op, e) => write!(f, "{}({e})", op.name()),
        Map { var, body, input } => write!(f, "α[{var} : {body}]({input})"),
        Select { var, pred, input } => write!(f, "σ[{var} : {pred}]({input})"),
        Project { attrs, input } => {
            write!(f, "π_")?;
            write_names(f, attrs)?;
            write!(f, "({input})")
        }
        Rename { pairs, input } => {
            write!(f, "ρ_")?;
            for (i, (o, n)) in pairs.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{o}→{n}")?;
            }
            write!(f, "({input})")
        }
        Unnest { attr, input } => write!(f, "μ_{attr}({input})"),
        Nest {
            attrs,
            as_attr,
            input,
        } => {
            write!(f, "ν_")?;
            write_names(f, attrs)?;
            write!(f, "→{as_attr}({input})")
        }
        Product(a, b) => write!(f, "({a} × {b})"),
        Join {
            kind,
            lvar,
            rvar,
            pred,
            left,
            right,
        } => {
            let sym = match kind {
                JoinKind::Inner => "⋈",
                JoinKind::Semi => "⋉",
                JoinKind::Anti => "▷",
                JoinKind::LeftOuter => "⟕",
            };
            write!(f, "({left} {sym}_{{{lvar},{rvar} : {pred}}} {right})")
        }
        NestJoin {
            lvar,
            rvar,
            pred,
            rfunc,
            as_attr,
            left,
            right,
        } => {
            write!(f, "({left} ⊣_{{{lvar},{rvar} : {pred}")?;
            if let Some(g) = rfunc {
                write!(f, "; {rvar} : {g}")?;
            }
            write!(f, "; {as_attr}}} {right})")
        }
        Quant {
            q,
            var,
            range,
            pred,
        } => {
            let sym = match q {
                QuantKind::Exists => "∃",
                QuantKind::Forall => "∀",
            };
            write!(f, "{sym}{var} ∈ {range} • {pred}")
        }
        Div(a, b) => write!(f, "({a} ÷ {b})"),
        Let { var, value, body } => write!(f, "let {var} = {value} in {body}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::dsl::*;
    use crate::expr::Expr;

    #[test]
    fn selection_prints_like_the_paper() {
        let q = select(
            "x",
            exists("y", table("Y"), eq(var("y"), var("x").field("c"))),
            table("X"),
        );
        assert_eq!(q.to_string(), "σ[x : ∃y ∈ Y • (y = x.c)](X)");
    }

    #[test]
    fn semijoin_prints_like_the_paper() {
        // X ⋉_{x,y : y = x.c ∧ q} Y  (Rewriting Example 1's result)
        let e = semijoin(
            "x",
            "y",
            and(eq(var("y"), var("x").field("c")), var("q")),
            table("X"),
            table("Y"),
        );
        assert_eq!(e.to_string(), "(X ⋉_{x,y : ((y = x.c) ∧ q)} Y)");
    }

    #[test]
    fn nestjoin_prints_group_attribute() {
        let e = nestjoin(
            "s",
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            "parts_suppl",
            table("SUPPLIER"),
            table("PART"),
        );
        assert_eq!(
            e.to_string(),
            "(SUPPLIER ⊣_{s,p : (p.pid ∈ s.parts); parts_suppl} PART)"
        );
    }

    #[test]
    fn restructuring_operators_print() {
        assert_eq!(
            unnest("parts", table("SUPPLIER")).to_string(),
            "μ_parts(SUPPLIER)"
        );
        assert_eq!(nest(&["e"], "ys", table("Z")).to_string(), "ν_e→ys(Z)");
        assert_eq!(project(&["a", "c"], table("X")).to_string(), "π_a,c(X)");
        assert_eq!(flatten(table("X")).to_string(), "⋃(X)");
    }

    #[test]
    fn quantifiers_and_let_print() {
        let e = let_(
            "Y1",
            select("y", Expr::true_(), table("Y")),
            forall("z", var("c"), member(var("z"), var("Y1"))),
        );
        assert_eq!(
            e.to_string(),
            "let Y1 = σ[y : true](Y) in ∀z ∈ c • (z ∈ Y1)"
        );
    }
}

//! Compact binary encoding of [`Value`]s for spill files.
//!
//! The external-memory subsystem (`oodb-spill`) persists rows to disk as
//! length-prefixed records; this module is the row payload format. The
//! encoding is:
//!
//! * **canonical** — encoding a value and decoding it yields a value that
//!   is `==` to the original (tuples and sets keep their canonical field
//!   and element order, floats round-trip through their canonicalised bit
//!   pattern, so even NaN survives);
//! * **self-delimiting** — every value starts with a one-byte tag and
//!   fixed-width or length-prefixed payloads, so records can be
//!   concatenated without separators;
//! * **deterministic** — equal values produce identical byte strings,
//!   which the spill-partition hashing and the round-trip property tests
//!   rely on.
//!
//! [`encoded_size`] computes the exact byte length without allocating —
//! it is the unit of account of the engine's `MemoryBudget`.

use crate::{Name, Oid, Set, Tuple, Value, ValueError, F64};

/// Value tags (first byte of every encoded value).
mod tag {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const INT: u8 = 3;
    pub const FLOAT: u8 = 4;
    pub const STR: u8 = 5;
    pub const DATE: u8 = 6;
    pub const OID: u8 = 7;
    pub const TUPLE: u8 = 8;
    pub const SET: u8 = 9;
}

/// Appends the encoding of `v` to `out`.
pub fn encode_into(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(tag::NULL),
        Value::Bool(false) => out.push(tag::FALSE),
        Value::Bool(true) => out.push(tag::TRUE),
        Value::Int(i) => {
            out.push(tag::INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&x.get().to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(tag::STR);
            push_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(tag::DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Oid(Oid(o)) => {
            out.push(tag::OID);
            out.extend_from_slice(&o.to_le_bytes());
        }
        Value::Tuple(t) => {
            out.push(tag::TUPLE);
            push_len(out, t.arity());
            for (name, field) in t.iter() {
                push_len(out, name.len());
                out.extend_from_slice(name.as_bytes());
                encode_into(field, out);
            }
        }
        Value::Set(s) => {
            out.push(tag::SET);
            push_len(out, s.len());
            for elem in s.iter() {
                encode_into(elem, out);
            }
        }
    }
}

/// The encoding of `v` as a fresh buffer.
pub fn encode(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_size(v));
    encode_into(v, &mut out);
    out
}

/// Exact byte length [`encode`] would produce, without allocating. This
/// is the memory-accounting unit of the spill subsystem: a hash table or
/// sort run "holds N bytes" when the encoded sizes of its rows sum to N.
pub fn encoded_size(v: &Value) -> usize {
    match v {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) | Value::Date(_) | Value::Oid(_) => 9,
        Value::Str(s) => 1 + 4 + s.len(),
        Value::Tuple(t) => encoded_row_size(t),
        Value::Set(s) => 1 + 4 + s.iter().map(encoded_size).sum::<usize>(),
    }
}

/// [`encoded_size`] of a tuple-shaped row without wrapping it in a
/// [`Value`] — statistics collectors measure whole extents, so the
/// wrap (a deep clone) would dominate.
pub fn encoded_row_size(t: &Tuple) -> usize {
    1 + 4
        + t.iter()
            .map(|(n, f)| 4 + n.len() + encoded_size(f))
            .sum::<usize>()
}

/// Encodes `rows` as a length-prefixed row block — a `u32` count
/// followed by the concatenated self-delimiting encodings. This is the
/// payload format of the wire protocol's row chunks: the serving layer
/// frames each pipeline batch with this exact encoding, so the wire
/// format and the spill format share one codec.
pub fn encode_rows(rows: &[Value], out: &mut Vec<u8>) {
    push_len(out, rows.len());
    for v in rows {
        encode_into(v, out);
    }
}

/// Decodes a row block produced by [`encode_rows`], consuming all of
/// `bytes`.
pub fn decode_rows(bytes: &[u8]) -> Result<Vec<Value>, ValueError> {
    if bytes.len() < 4 {
        return Err(codec_err("row block shorter than its count".into()));
    }
    let n = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let mut pos = 4usize;
    // Cap the preallocation: a hostile count must not allocate ahead of
    // the bytes that back it.
    let mut rows = Vec::with_capacity(n.min(bytes.len() / 2 + 1));
    for _ in 0..n {
        let mut local = pos;
        let v = decode_at(bytes, &mut local)?;
        pos = local;
        rows.push(v);
    }
    if pos != bytes.len() {
        return Err(codec_err(format!(
            "trailing garbage after row block: {} of {} bytes unread",
            bytes.len() - pos,
            bytes.len()
        )));
    }
    Ok(rows)
}

/// Decodes one value from the front of `bytes`, returning it and the
/// number of bytes consumed.
pub fn decode_prefix(bytes: &[u8]) -> Result<(Value, usize), ValueError> {
    let mut pos = 0usize;
    let v = decode_at(bytes, &mut pos)?;
    Ok((v, pos))
}

/// Decodes exactly one value spanning all of `bytes`.
pub fn decode(bytes: &[u8]) -> Result<Value, ValueError> {
    let (v, used) = decode_prefix(bytes)?;
    if used != bytes.len() {
        return Err(codec_err(format!(
            "trailing garbage: {} of {} bytes unread",
            bytes.len() - used,
            bytes.len()
        )));
    }
    Ok(v)
}

fn codec_err(msg: String) -> ValueError {
    ValueError::Codec(msg)
}

pub(crate) fn take<'b>(bytes: &'b [u8], pos: &mut usize, n: usize) -> Result<&'b [u8], ValueError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| codec_err(format!("truncated value: needed {n} bytes at {pos}")))?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

pub(crate) fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<usize, ValueError> {
    let b = take(bytes, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize)
}

pub(crate) fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, ValueError> {
    let b = take(bytes, pos, 8)?;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

pub(crate) fn push_len(out: &mut Vec<u8>, len: usize) {
    // lengths are bounded by in-memory sizes, which fit u32 on every
    // platform this engine targets
    out.extend_from_slice(&(len as u32).to_le_bytes());
}

fn decode_at(bytes: &[u8], pos: &mut usize) -> Result<Value, ValueError> {
    let t = take(bytes, pos, 1)?[0];
    Ok(match t {
        tag::NULL => Value::Null,
        tag::FALSE => Value::Bool(false),
        tag::TRUE => Value::Bool(true),
        tag::INT => Value::Int(take_u64(bytes, pos)? as i64),
        tag::FLOAT => {
            // the encoder wrote the canonicalised bit pattern, so
            // rebuilding through `F64::new` is the identity — but it
            // keeps the canonicalisation invariant even for bytes that
            // did not come from our encoder
            Value::Float(F64::new(f64::from_bits(take_u64(bytes, pos)?)))
        }
        tag::STR => {
            let n = take_u32(bytes, pos)?;
            let s = std::str::from_utf8(take(bytes, pos, n)?)
                .map_err(|e| codec_err(format!("invalid utf-8 in string: {e}")))?;
            Value::Str(Name::from(s))
        }
        tag::DATE => Value::Date(take_u64(bytes, pos)? as i64),
        tag::OID => Value::Oid(Oid(take_u64(bytes, pos)?)),
        tag::TUPLE => {
            let n = take_u32(bytes, pos)?;
            let mut fields = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let nl = take_u32(bytes, pos)?;
                let name = std::str::from_utf8(take(bytes, pos, nl)?)
                    .map_err(|e| codec_err(format!("invalid utf-8 in field name: {e}")))?;
                let field = decode_at(bytes, pos)?;
                fields.push((Name::from(name), field));
            }
            Value::Tuple(Tuple::new(fields)?)
        }
        tag::SET => {
            let n = take_u32(bytes, pos)?;
            let mut elems = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                elems.push(decode_at(bytes, pos)?);
            }
            Value::Set(Set::from_values(elems))
        }
        other => return Err(codec_err(format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let bytes = encode(v);
        assert_eq!(bytes.len(), encoded_size(v), "size mismatch for {v}");
        assert_eq!(&decode(&bytes).unwrap(), v, "roundtrip failed for {v}");
    }

    #[test]
    fn atoms_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::float(3.5),
            Value::float(-0.0),
            Value::float(f64::NAN),
            Value::float(f64::INFINITY),
            Value::float(f64::NEG_INFINITY),
            Value::float(f64::MIN_POSITIVE / 2.0), // subnormal
            Value::str(""),
            Value::str("héllo \"quoted\"\n"),
            Value::Date(940101),
            Value::Oid(Oid(u64::MAX)),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::tuple([
            ("a", Value::Int(1)),
            (
                "b",
                Value::set([
                    Value::tuple([("x", Value::str("s")), ("y", Value::empty_set())]),
                    Value::Null,
                ]),
            ),
            ("c", Value::set([])),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn row_size_matches_wrapped_size() {
        let t = crate::Tuple::from_pairs([
            ("a", Value::Int(1)),
            ("b", Value::set([Value::str("x"), Value::Null])),
        ]);
        assert_eq!(encoded_row_size(&t), encoded_size(&Value::Tuple(t.clone())));
        assert_eq!(
            encoded_row_size(&crate::Tuple::empty()),
            encoded_size(&Value::Tuple(crate::Tuple::empty()))
        );
    }

    #[test]
    fn equal_values_encode_identically() {
        // construction order differs, canonical encoding must not
        let a = Value::set([Value::Int(2), Value::Int(1)]);
        let b = Value::set([Value::Int(1), Value::Int(2)]);
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        let bytes = encode(&Value::str("hello"));
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&[0xFF]).is_err());
        assert!(decode(&[]).is_err());
        // trailing garbage after a complete value
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode(&extended).is_err());
    }
}

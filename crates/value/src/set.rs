//! Order-canonical sets of complex values.
//!
//! ADL tables and set-valued attributes are sets, not bags: duplicate
//! elimination is part of the algebra's semantics (projection, map and
//! union all deduplicate). [`Set`] keeps elements **sorted and unique**, so
//!
//! * `Eq`, `Ord` and `Hash` are structural (two sets with the same members
//!   are the same value, regardless of construction order), and
//! * membership and the set-comparison operators `⊂ ⊆ = ⊇ ⊃` are
//!   logarithmic/linear merges rather than quadratic scans.

use crate::{Value, ValueError};
use std::fmt;

/// A set of [`Value`]s with canonical (sorted, deduplicated) storage.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Set {
    elems: Vec<Value>,
}

impl Set {
    /// The empty set `∅`.
    pub fn empty() -> Self {
        Set { elems: Vec::new() }
    }

    /// Builds a set from arbitrary (unsorted, possibly duplicated) values.
    pub fn from_values(mut elems: Vec<Value>) -> Self {
        elems.sort();
        elems.dedup();
        Set { elems }
    }

    /// A singleton set.
    pub fn singleton(v: Value) -> Self {
        Set { elems: vec![v] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True for `∅`.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test `v ∈ self`.
    pub fn contains(&self, v: &Value) -> bool {
        self.elems.binary_search(v).is_ok()
    }

    /// Inserts an element, keeping canonical order. Returns `true` if the
    /// element was new.
    pub fn insert(&mut self, v: Value) -> bool {
        match self.elems.binary_search(&v) {
            Ok(_) => false,
            Err(i) => {
                self.elems.insert(i, v);
                true
            }
        }
    }

    /// Iterates elements in canonical order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.elems.iter()
    }

    /// The elements as a slice (canonical order).
    pub fn as_slice(&self) -> &[Value] {
        &self.elems
    }

    /// Consumes the set, yielding its elements in canonical order.
    pub fn into_values(self) -> Vec<Value> {
        self.elems
    }

    /// Set union `self ∪ other` (linear merge).
    pub fn union(&self, other: &Set) -> Set {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.elems[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.elems[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.elems[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.elems[i..]);
        out.extend_from_slice(&other.elems[j..]);
        Set { elems: out }
    }

    /// Set intersection `self ∩ other`.
    pub fn intersect(&self, other: &Set) -> Set {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        Set {
            elems: small
                .elems
                .iter()
                .filter(|v| large.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &Set) -> Set {
        Set {
            elems: self
                .elems
                .iter()
                .filter(|v| !other.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// `self ⊆ other`.
    pub fn subset_eq(&self, other: &Set) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.elems.iter().all(|v| other.contains(v))
    }

    /// `self ⊂ other` (proper subset).
    pub fn subset(&self, other: &Set) -> bool {
        self.len() < other.len() && self.subset_eq(other)
    }

    /// `self ⊇ other`.
    pub fn superset_eq(&self, other: &Set) -> bool {
        other.subset_eq(self)
    }

    /// `self ⊃ other` (proper superset).
    pub fn superset(&self, other: &Set) -> bool {
        other.subset(self)
    }

    /// Multiple union / `flatten` `⋃(e) = {z | z ∈ X ∧ X ∈ e}`
    /// (paper §3 def. 1). Every element of `self` must itself be a set.
    pub fn flatten(&self) -> Result<Set, ValueError> {
        let mut out = Vec::new();
        for v in &self.elems {
            match v {
                Value::Set(inner) => out.extend(inner.elems.iter().cloned()),
                other => return Err(ValueError::NotASet(other.to_string())),
            }
        }
        Ok(Set::from_values(out))
    }
}

impl FromIterator<Value> for Set {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Set::from_values(iter.into_iter().collect())
    }
}

impl IntoIterator for Set {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

impl<'a> IntoIterator for &'a Set {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vs: &[i64]) -> Set {
        Set::from_values(vs.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        assert_eq!(ints(&[3, 1, 2, 1, 3]), ints(&[1, 2, 3]));
        assert_eq!(ints(&[3, 1, 2, 1]).len(), 3);
    }

    #[test]
    fn membership_and_insert() {
        let mut s = ints(&[1, 3]);
        assert!(s.contains(&Value::Int(1)));
        assert!(!s.contains(&Value::Int(2)));
        assert!(s.insert(Value::Int(2)));
        assert!(!s.insert(Value::Int(2)));
        assert_eq!(s, ints(&[1, 2, 3]));
    }

    #[test]
    fn union_intersect_difference() {
        let a = ints(&[1, 2, 3]);
        let b = ints(&[2, 3, 4]);
        assert_eq!(a.union(&b), ints(&[1, 2, 3, 4]));
        assert_eq!(a.intersect(&b), ints(&[2, 3]));
        assert_eq!(a.difference(&b), ints(&[1]));
        assert_eq!(b.difference(&a), ints(&[4]));
    }

    #[test]
    fn subset_family() {
        let a = ints(&[1, 2]);
        let b = ints(&[1, 2, 3]);
        assert!(a.subset_eq(&b));
        assert!(a.subset(&b));
        assert!(!b.subset(&a));
        assert!(b.superset(&a));
        assert!(b.superset_eq(&b));
        assert!(!b.superset(&b));
        // ∅ relationships — these drive Table 3 of the paper
        let empty = Set::empty();
        assert!(empty.subset_eq(&a));
        assert!(empty.subset(&a));
        assert!(!empty.subset(&empty));
        assert!(empty.subset_eq(&empty));
    }

    #[test]
    fn flatten_is_multiple_union() {
        let nested = Set::from_values(vec![
            Value::Set(ints(&[1, 2])),
            Value::Set(ints(&[2, 3])),
            Value::Set(Set::empty()),
        ]);
        assert_eq!(nested.flatten().unwrap(), ints(&[1, 2, 3]));
    }

    #[test]
    fn flatten_rejects_non_set_elements() {
        let bad = Set::from_values(vec![Value::Int(1)]);
        assert!(matches!(bad.flatten(), Err(ValueError::NotASet(_))));
    }

    #[test]
    fn display_canonical() {
        assert_eq!(ints(&[2, 1]).to_string(), "{1, 2}");
        assert_eq!(Set::empty().to_string(), "{}");
    }
}

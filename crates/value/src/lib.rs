//! Complex object values and types for the ADL algebra of
//! *From Nested-Loop to Join Queries in OODB* (Steenhagen, Apers, Blanken,
//! de By; VLDB 1994).
//!
//! ADL is a typed algebra for complex objects in the style of the NF²
//! algebra: among the constructors supported are the tuple (`⟨⟩`) and set
//! (`{}`) type constructors, and the basic type `oid` is used to represent
//! object identity (paper, §3). This crate provides exactly that data
//! model:
//!
//! * [`Value`] — runtime values: booleans, integers, floats, strings,
//!   dates, object identifiers, tuples and sets;
//! * [`Tuple`] — field-name → value records with the paper's tuple
//!   operations: subscription `e[a₁,…,aₙ]`, update/extension `except`, and
//!   concatenation `∘`;
//! * [`Set`] — order-canonical sets (sorted, duplicate free) so that value
//!   equality and hashing are structural, which set-oriented join operators
//!   depend on;
//! * [`Type`] / [`TupleType`] — the type language, including the schema
//!   function `SCH` that, applied to a table type, delivers the top-level
//!   attribute names;
//! * [`fxhash`] — a small, fast, deterministic hasher used for hash joins
//!   (oid and integer keys dominate join columns).
//!
//! Everything is deterministic and `Ord`-ered so query results can be
//! compared structurally in tests and property checks.

pub mod batch;
pub mod codec;
pub mod error;
pub mod float;
pub mod fxhash;
pub mod oid;
pub mod set;
pub mod tuple;
pub mod types;
pub mod value;

pub use batch::{Batch, BatchKind, Column, ColumnarBatch};
pub use error::ValueError;
pub use float::F64;
pub use oid::{Oid, OidGenerator};
pub use set::Set;
pub use tuple::Tuple;
pub use types::{TupleType, Type};
pub use value::{ArithOp, CmpOp, SetCmpOp, Value};

use std::sync::Arc;

/// Interned-ish attribute / class / variable name.
///
/// `Arc<str>` keeps clones cheap; names are small and shared across plans.
pub type Name = Arc<str>;

/// Convenience constructor for [`Name`].
pub fn name(s: &str) -> Name {
    Arc::from(s)
}

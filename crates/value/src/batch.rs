//! Columnar batches: the cache-friendly row-block representation the
//! streaming pipeline ships between operators.
//!
//! The paper's whole argument is set-oriented evaluation, but a batch of
//! boxed [`Value`]s still chases a heap pointer per attribute access.
//! This module flattens a batch of same-schema tuples into **columns of
//! unboxed primitives** — `i64`/`f64`/`bool`/oid vectors, dictionary-
//! interned strings — with nested `Set`/`Tuple` values dictionary-
//! interned into a per-batch pool, in the spirit of query shredding
//! (Cheney, Lindley & Wadler): nested collections flatten into efficient
//! flat representations while the algebra on top is unchanged.
//!
//! * [`Batch`] — what operators exchange: either a legacy row batch
//!   (`Vec<Value>`) or a [`ColumnarBatch`]. [`Batch::of`] builds the
//!   layout a [`BatchKind`] asks for, falling back to rows whenever the
//!   batch is not a uniform block of tuples (scalar streams, mixed
//!   schemas), so columnar mode is always total.
//! * [`Column`] — one attribute's values. Primitive kinds are unboxed;
//!   [`Column::Str`] and [`Column::Interned`] store `u32` dictionary ids
//!   next to a per-batch pool, so equal nested values are stored once.
//! * Row view: [`Batch::row_at`] / [`ColumnarBatch::row`] materialize a
//!   single row on demand; operators whose expression is not a simple
//!   attribute access fall back to this view and keep exact reference
//!   semantics (including error messages).
//! * Spill codec: [`ColumnarBatch::encode_into`] / [`ColumnarBatch::decode`]
//!   serialize whole column blocks (length-prefixed per column) instead
//!   of row-by-row values — the on-disk mirror of the in-memory layout.
//!
//! Row order is preserved exactly in every conversion, so the two
//! layouts are observationally equivalent (the row/columnar differential
//! tests depend on this).

use crate::{codec, Name, Oid, Tuple, Value, ValueError, F64};
use std::borrow::Cow;
use std::collections::HashMap;

/// Which layout the pipeline ships batches in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchKind {
    /// Legacy layout: a batch is a `Vec<Value>` of boxed rows.
    Row,
    /// Columnar layout (the default): uniform tuple batches flatten
    /// into [`ColumnarBatch`]es; everything else stays a row batch.
    #[default]
    Columnar,
}

impl BatchKind {
    /// The process default: `OODB_BATCH_KIND` (`row` or `columnar`) if
    /// set, columnar otherwise. Like `OODB_MEMORY_BUDGET`, a malformed
    /// value **panics** — an operator who asked for a layout meant to
    /// get it, and CI's row-layout pass must never silently run
    /// columnar.
    pub fn from_env() -> Self {
        match std::env::var("OODB_BATCH_KIND") {
            Err(_) => BatchKind::Columnar,
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "row" => BatchKind::Row,
                "columnar" | "col" => BatchKind::Columnar,
                other => {
                    panic!("OODB_BATCH_KIND must be `row` or `columnar`, got {other:?}")
                }
            },
        }
    }
}

/// One attribute's values across a batch, unboxed where the kind allows.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// `Value::Int` values.
    Int(Vec<i64>),
    /// `Value::Float` values (canonical [`F64`] bit patterns).
    Float(Vec<F64>),
    /// `Value::Bool` values.
    Bool(Vec<bool>),
    /// `Value::Date` values.
    Date(Vec<i64>),
    /// `Value::Oid` values.
    Oid(Vec<u64>),
    /// `Value::Str` values, dictionary-interned: `ids[i]` indexes `dict`.
    Str {
        /// Per-row dictionary ids.
        ids: Vec<u32>,
        /// Distinct strings, in first-appearance order.
        dict: Vec<Name>,
    },
    /// Everything else — nested `Set`/`Tuple` values, `Null` padding,
    /// mixed-kind columns — dictionary-interned into a per-batch pool.
    Interned {
        /// Per-row dictionary ids.
        ids: Vec<u32>,
        /// Distinct values, in first-appearance order.
        dict: Vec<Value>,
    },
}

impl Column {
    /// Rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) | Column::Date(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Oid(v) => v.len(),
            Column::Str { ids, .. } | Column::Interned { ids, .. } => ids.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes row `i`'s value. Cheap for primitive kinds (a copy);
    /// a clone of the pooled value for interned kinds.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Date(v) => Value::Date(v[i]),
            Column::Oid(v) => Value::Oid(Oid(v[i])),
            Column::Str { ids, dict } => Value::Str(dict[ids[i] as usize].clone()),
            Column::Interned { ids, dict } => dict[ids[i] as usize].clone(),
        }
    }

    /// The rows where `keep[i]` holds, preserving order. Interned kinds
    /// re-map their dictionary to the entries surviving rows actually
    /// reference — a selective filter must not deep-clone pooled nested
    /// values no output row can reach.
    fn filter(&self, keep: &[bool]) -> Column {
        fn sel<T: Copy>(v: &[T], keep: &[bool]) -> Vec<T> {
            v.iter()
                .zip(keep)
                .filter(|(_, k)| **k)
                .map(|(x, _)| *x)
                .collect()
        }
        /// Selects surviving ids and clones only the referenced
        /// dictionary entries, renumbered in first-reference order.
        fn sel_dict<T: Clone>(ids: &[u32], keep: &[bool], dict: &[T]) -> (Vec<u32>, Vec<T>) {
            let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
            let mut new_dict = Vec::new();
            let mut new_ids = Vec::new();
            for (id, k) in ids.iter().zip(keep) {
                if !*k {
                    continue;
                }
                let slot = &mut remap[*id as usize];
                if *slot == u32::MAX {
                    *slot = new_dict.len() as u32;
                    new_dict.push(dict[*id as usize].clone());
                }
                new_ids.push(*slot);
            }
            (new_ids, new_dict)
        }
        match self {
            Column::Int(v) => Column::Int(sel(v, keep)),
            Column::Float(v) => Column::Float(sel(v, keep)),
            Column::Bool(v) => Column::Bool(sel(v, keep)),
            Column::Date(v) => Column::Date(sel(v, keep)),
            Column::Oid(v) => Column::Oid(sel(v, keep)),
            Column::Str { ids, dict } => {
                let (ids, dict) = sel_dict(ids, keep, dict);
                Column::Str { ids, dict }
            }
            Column::Interned { ids, dict } => {
                let (ids, dict) = sel_dict(ids, keep, dict);
                Column::Interned { ids, dict }
            }
        }
    }

    /// The rows at `idx`, in `idx` order. Indices may repeat (an inner
    /// join emits one output row per match) and need not be ordered.
    /// Interned kinds re-map their dictionary to the entries the
    /// gathered rows actually reference, like [`Column::filter`].
    fn gather(&self, idx: &[usize]) -> Column {
        fn pick<T: Copy>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i]).collect()
        }
        /// Gathers ids and clones only the referenced dictionary
        /// entries, renumbered in first-reference order.
        fn pick_dict<T: Clone>(ids: &[u32], idx: &[usize], dict: &[T]) -> (Vec<u32>, Vec<T>) {
            let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
            let mut new_dict = Vec::new();
            let mut new_ids = Vec::with_capacity(idx.len());
            for &i in idx {
                let id = ids[i];
                let slot = &mut remap[id as usize];
                if *slot == u32::MAX {
                    *slot = new_dict.len() as u32;
                    new_dict.push(dict[id as usize].clone());
                }
                new_ids.push(*slot);
            }
            (new_ids, new_dict)
        }
        match self {
            Column::Int(v) => Column::Int(pick(v, idx)),
            Column::Float(v) => Column::Float(pick(v, idx)),
            Column::Bool(v) => Column::Bool(pick(v, idx)),
            Column::Date(v) => Column::Date(pick(v, idx)),
            Column::Oid(v) => Column::Oid(pick(v, idx)),
            Column::Str { ids, dict } => {
                let (ids, dict) = pick_dict(ids, idx, dict);
                Column::Str { ids, dict }
            }
            Column::Interned { ids, dict } => {
                let (ids, dict) = pick_dict(ids, idx, dict);
                Column::Interned { ids, dict }
            }
        }
    }
}

/// Accumulates one column, upgrading to the interned pool on the first
/// value that does not fit the kind the column started with.
enum ColumnBuilder {
    Int(Vec<i64>),
    Float(Vec<F64>),
    Bool(Vec<bool>),
    Date(Vec<i64>),
    Oid(Vec<u64>),
    /// `map` is the only store while building (no value is held twice);
    /// [`ColumnBuilder::finish`] rebuilds the id-ordered dictionary.
    Str {
        ids: Vec<u32>,
        map: HashMap<Name, u32>,
    },
    Interned {
        ids: Vec<u32>,
        map: HashMap<Value, u32>,
    },
}

impl ColumnBuilder {
    fn for_value(v: &Value, capacity: usize) -> ColumnBuilder {
        match v {
            Value::Int(_) => ColumnBuilder::Int(Vec::with_capacity(capacity)),
            Value::Float(_) => ColumnBuilder::Float(Vec::with_capacity(capacity)),
            Value::Bool(_) => ColumnBuilder::Bool(Vec::with_capacity(capacity)),
            Value::Date(_) => ColumnBuilder::Date(Vec::with_capacity(capacity)),
            Value::Oid(_) => ColumnBuilder::Oid(Vec::with_capacity(capacity)),
            Value::Str(_) => ColumnBuilder::Str {
                ids: Vec::with_capacity(capacity),
                map: HashMap::new(),
            },
            _ => ColumnBuilder::Interned {
                ids: Vec::with_capacity(capacity),
                map: HashMap::new(),
            },
        }
    }

    /// Converts the values accumulated so far into an interned builder —
    /// the upgrade path when a column turns out to be mixed-kind.
    fn into_interned(self) -> ColumnBuilder {
        let built = self.finish();
        let n = built.len();
        let mut up = ColumnBuilder::Interned {
            ids: Vec::with_capacity(n),
            map: HashMap::new(),
        };
        for i in 0..n {
            up.push(built.value_at(i));
        }
        up
    }

    fn push(&mut self, v: Value) {
        match (&mut *self, &v) {
            (ColumnBuilder::Int(xs), Value::Int(i)) => xs.push(*i),
            (ColumnBuilder::Float(xs), Value::Float(f)) => xs.push(*f),
            (ColumnBuilder::Bool(xs), Value::Bool(b)) => xs.push(*b),
            (ColumnBuilder::Date(xs), Value::Date(d)) => xs.push(*d),
            (ColumnBuilder::Oid(xs), Value::Oid(Oid(o))) => xs.push(*o),
            (ColumnBuilder::Str { ids, map }, Value::Str(_)) => {
                let Value::Str(s) = v else { unreachable!() };
                let next = map.len() as u32;
                ids.push(*map.entry(s).or_insert(next));
            }
            (ColumnBuilder::Interned { ids, map }, _) => {
                // one hash per row, no clone: the map is the pool until
                // `finish` lays it out in id order
                let next = map.len() as u32;
                ids.push(*map.entry(v).or_insert(next));
            }
            // kind mismatch: upgrade everything accumulated so far
            _ => {
                let upgraded = std::mem::replace(self, ColumnBuilder::Int(Vec::new()));
                *self = upgraded.into_interned();
                self.push(v);
            }
        }
    }

    fn finish(self) -> Column {
        /// Lays the interning map out as the id-ordered dictionary.
        fn dict_of<T>(map: HashMap<T, u32>) -> Vec<T> {
            let mut pairs: Vec<(u32, T)> = map.into_iter().map(|(v, id)| (id, v)).collect();
            pairs.sort_unstable_by_key(|(id, _)| *id);
            pairs.into_iter().map(|(_, v)| v).collect()
        }
        match self {
            ColumnBuilder::Int(v) => Column::Int(v),
            ColumnBuilder::Float(v) => Column::Float(v),
            ColumnBuilder::Bool(v) => Column::Bool(v),
            ColumnBuilder::Date(v) => Column::Date(v),
            ColumnBuilder::Oid(v) => Column::Oid(v),
            ColumnBuilder::Str { ids, map } => Column::Str {
                ids,
                dict: dict_of(map),
            },
            ColumnBuilder::Interned { ids, map } => Column::Interned {
                ids,
                dict: dict_of(map),
            },
        }
    }
}

/// A batch of same-schema tuples stored column-wise. Columns are kept in
/// the tuples' canonical (name-sorted) attribute order, so materialized
/// rows are canonical without re-sorting.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    len: usize,
    cols: Vec<(Name, Column)>,
}

impl ColumnarBatch {
    /// Flattens `rows` into columns. Every row must be a tuple with the
    /// same attribute names; otherwise the rows are handed back so the
    /// caller can keep the row layout (`Batch::of` does exactly that).
    /// The empty batch has no schema and also stays row-shaped.
    #[allow(clippy::result_large_err)]
    pub fn try_new(rows: Vec<Value>) -> Result<ColumnarBatch, Vec<Value>> {
        let Some(Value::Tuple(first)) = rows.first() else {
            return Err(rows);
        };
        let names = first.attr_names();
        let uniform = rows.iter().all(|r| match r {
            Value::Tuple(t) => {
                t.arity() == names.len() && t.iter().map(|(n, _)| n).eq(names.iter())
            }
            _ => false,
        });
        if !uniform {
            return Err(rows);
        }
        let len = rows.len();
        let mut builders: Vec<ColumnBuilder> = first
            .iter()
            .map(|(_, v)| ColumnBuilder::for_value(v, len))
            .collect();
        for row in rows {
            let Value::Tuple(t) = row else {
                unreachable!("uniformity checked above")
            };
            for (b, (_, v)) in builders.iter_mut().zip(t.into_fields()) {
                b.push(v);
            }
        }
        Ok(ColumnarBatch {
            len,
            cols: names
                .into_iter()
                .zip(builders.into_iter().map(ColumnBuilder::finish))
                .collect(),
        })
    }

    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column for `name`, if the schema has it.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.cols
            .binary_search_by(|(n, _)| n.as_ref().cmp(name))
            .ok()
            .map(|i| &self.cols[i].1)
    }

    /// The schema's columns in canonical order.
    pub fn columns(&self) -> &[(Name, Column)] {
        &self.cols
    }

    /// Materializes row `i` as a canonical tuple value.
    pub fn row(&self, i: usize) -> Value {
        let fields = self
            .cols
            .iter()
            .map(|(n, c)| (n.clone(), c.value_at(i)))
            .collect();
        // columns are sorted and unique by construction
        Value::Tuple(Tuple::from_sorted_unchecked(fields))
    }

    /// Materializes every row, in order.
    pub fn to_rows(&self) -> Vec<Value> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// The rows where `keep[i]` holds — the column-at-a-time filter.
    pub fn filter(&self, keep: &[bool]) -> ColumnarBatch {
        debug_assert_eq!(keep.len(), self.len);
        let len = keep.iter().filter(|k| **k).count();
        ColumnarBatch {
            len,
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.filter(keep)))
                .collect(),
        }
    }

    /// The rows at `idx`, in `idx` order — the column-at-a-time gather
    /// a columnar join output materializes through. Indices may repeat
    /// and need not be sorted.
    pub fn gather(&self, idx: &[usize]) -> ColumnarBatch {
        ColumnarBatch {
            len: idx.len(),
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.gather(idx)))
                .collect(),
        }
    }

    /// Column-wise concatenation of two same-length batches — the
    /// columnar mirror of per-row `Tuple::concat`. `None` on a name
    /// collision or a length mismatch; callers fall back to the row
    /// path, which reports the exact reference error.
    pub fn concat(&self, other: &ColumnarBatch) -> Option<ColumnarBatch> {
        if self.len != other.len {
            return None;
        }
        let mut cols: Vec<(Name, Column)> = Vec::with_capacity(self.cols.len() + other.cols.len());
        let (mut a, mut b) = (self.cols.iter().peekable(), other.cols.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some((na, _)), Some((nb, _))) => match na.cmp(nb) {
                    std::cmp::Ordering::Equal => return None,
                    std::cmp::Ordering::Less => cols.push(a.next()?.clone()),
                    std::cmp::Ordering::Greater => cols.push(b.next()?.clone()),
                },
                (Some(_), None) => cols.push(a.next()?.clone()),
                (None, Some(_)) => cols.push(b.next()?.clone()),
                (None, None) => break,
            }
        }
        Some(ColumnarBatch {
            len: self.len,
            cols,
        })
    }

    /// Tuple subscription `π[attrs]` as a column selection. `None` when
    /// an attribute is missing or duplicated — the caller falls back to
    /// the row view, which reports the exact reference error.
    pub fn project(&self, attrs: &[Name]) -> Option<ColumnarBatch> {
        let mut cols: Vec<(Name, Column)> = Vec::with_capacity(attrs.len());
        for a in attrs {
            cols.push((a.clone(), self.column(a)?.clone()));
        }
        cols.sort_by(|a, b| a.0.cmp(&b.0));
        if cols.windows(2).any(|w| w[0].0 == w[1].0) {
            return None;
        }
        Some(ColumnarBatch {
            len: self.len,
            cols,
        })
    }

    /// Attribute renaming `ρ` as a column relabeling. `None` when an old
    /// name is missing or a rename collides — row-view fallback. The
    /// pairs apply **sequentially with a collision check after each
    /// one**, mirroring the row path (`Tuple::rename` per pair), so a
    /// chain like `[(a→b), (b→c)]` over a schema that already has `b`
    /// falls back and reports exactly the reference error instead of
    /// silently relabeling through the transient duplicate.
    pub fn rename(&self, pairs: &[(Name, Name)]) -> Option<ColumnarBatch> {
        let mut cols = self.cols.clone();
        for (old, new) in pairs {
            let i = cols.iter().position(|(n, _)| n == old)?;
            cols[i].0 = new.clone();
            let mut names: Vec<&Name> = cols.iter().map(|(n, _)| n).collect();
            names.sort();
            if names.windows(2).any(|w| w[0] == w[1]) {
                return None;
            }
        }
        cols.sort_by(|a, b| a.0.cmp(&b.0));
        Some(ColumnarBatch {
            len: self.len,
            cols,
        })
    }

    // -----------------------------------------------------------------
    // Spill codec: length-prefixed column blocks.

    /// Serializes the batch as a column block: row/column counts, then
    /// each column as a length-prefixed name, a kind tag, and the
    /// column's packed payload (dictionaries written once).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_u32(out, self.len as u32);
        push_u32(out, self.cols.len() as u32);
        for (name, col) in &self.cols {
            push_u32(out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
            match col {
                Column::Int(v) => {
                    out.push(col_tag::INT);
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                Column::Float(v) => {
                    out.push(col_tag::FLOAT);
                    for x in v {
                        out.extend_from_slice(&x.get().to_bits().to_le_bytes());
                    }
                }
                Column::Bool(v) => {
                    out.push(col_tag::BOOL);
                    out.extend(v.iter().map(|b| u8::from(*b)));
                }
                Column::Date(v) => {
                    out.push(col_tag::DATE);
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                Column::Oid(v) => {
                    out.push(col_tag::OID);
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                Column::Str { ids, dict } => {
                    out.push(col_tag::STR);
                    push_u32(out, dict.len() as u32);
                    for s in dict {
                        push_u32(out, s.len() as u32);
                        out.extend_from_slice(s.as_bytes());
                    }
                    for id in ids {
                        push_u32(out, *id);
                    }
                }
                Column::Interned { ids, dict } => {
                    out.push(col_tag::INTERNED);
                    push_u32(out, dict.len() as u32);
                    for v in dict {
                        let at = out.len();
                        push_u32(out, 0);
                        codec::encode_into(v, out);
                        let n = (out.len() - at - 4) as u32;
                        out[at..at + 4].copy_from_slice(&n.to_le_bytes());
                    }
                    for id in ids {
                        push_u32(out, *id);
                    }
                }
            }
        }
    }

    /// Decodes a block produced by [`ColumnarBatch::encode_into`].
    pub fn decode(bytes: &[u8]) -> Result<ColumnarBatch, ValueError> {
        let mut pos = 0usize;
        let len = read_u32(bytes, &mut pos)? as usize;
        let ncols = read_u32(bytes, &mut pos)? as usize;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = read_str(bytes, &mut pos)?;
            let tag = *bytes
                .get(pos)
                .ok_or_else(|| ValueError::Codec("truncated column tag".into()))?;
            pos += 1;
            let col = match tag {
                col_tag::INT => Column::Int(read_i64s(bytes, &mut pos, len)?),
                col_tag::FLOAT => {
                    let mut v = Vec::with_capacity(len);
                    for _ in 0..len {
                        v.push(F64::new(f64::from_bits(read_u64(bytes, &mut pos)?)));
                    }
                    Column::Float(v)
                }
                col_tag::BOOL => {
                    let slice = codec::take(bytes, &mut pos, len)?;
                    Column::Bool(slice.iter().map(|b| *b != 0).collect())
                }
                col_tag::DATE => Column::Date(read_i64s(bytes, &mut pos, len)?),
                col_tag::OID => {
                    let mut v = Vec::with_capacity(len);
                    for _ in 0..len {
                        v.push(read_u64(bytes, &mut pos)?);
                    }
                    Column::Oid(v)
                }
                col_tag::STR => {
                    let n = read_u32(bytes, &mut pos)? as usize;
                    let mut dict = Vec::with_capacity(n);
                    for _ in 0..n {
                        dict.push(read_str(bytes, &mut pos)?);
                    }
                    let ids = read_ids(bytes, &mut pos, len, n)?;
                    Column::Str { ids, dict }
                }
                col_tag::INTERNED => {
                    let n = read_u32(bytes, &mut pos)? as usize;
                    let mut dict = Vec::with_capacity(n);
                    for _ in 0..n {
                        let vlen = read_u32(bytes, &mut pos)? as usize;
                        let end = pos + vlen;
                        let payload = bytes
                            .get(pos..end)
                            .ok_or_else(|| ValueError::Codec("truncated pooled value".into()))?;
                        let (v, used) = codec::decode_prefix(payload)?;
                        if used != vlen {
                            return Err(ValueError::Codec("pooled value length mismatch".into()));
                        }
                        pos = end;
                        dict.push(v);
                    }
                    let ids = read_ids(bytes, &mut pos, len, n)?;
                    Column::Interned { ids, dict }
                }
                other => {
                    return Err(ValueError::Codec(format!("unknown column tag {other}")));
                }
            };
            cols.push((name, col));
        }
        if pos != bytes.len() {
            return Err(ValueError::Codec(
                "trailing bytes after column block".into(),
            ));
        }
        Ok(ColumnarBatch { len, cols })
    }
}

/// Column kind tags of the spill block format.
mod col_tag {
    pub const INT: u8 = 0;
    pub const FLOAT: u8 = 1;
    pub const BOOL: u8 = 2;
    pub const DATE: u8 = 3;
    pub const OID: u8 = 4;
    pub const STR: u8 = 5;
    pub const INTERNED: u8 = 6;
}

// Byte-cursor helpers delegate to the value codec's primitives
// (`codec.rs` owns them; a second implementation would let the column
// block and value formats drift).

fn push_u32(out: &mut Vec<u8>, v: u32) {
    codec::push_len(out, v as usize);
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, ValueError> {
    Ok(codec::take_u32(bytes, pos)? as u32)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, ValueError> {
    codec::take_u64(bytes, pos)
}

fn read_i64s(bytes: &[u8], pos: &mut usize, n: usize) -> Result<Vec<i64>, ValueError> {
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(read_u64(bytes, pos)? as i64);
    }
    Ok(v)
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Result<Name, ValueError> {
    let n = codec::take_u32(bytes, pos)?;
    let slice = codec::take(bytes, pos, n)?;
    let s =
        std::str::from_utf8(slice).map_err(|e| ValueError::Codec(format!("invalid utf-8: {e}")))?;
    Ok(Name::from(s))
}

fn read_ids(
    bytes: &[u8],
    pos: &mut usize,
    n: usize,
    dict_len: usize,
) -> Result<Vec<u32>, ValueError> {
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let id = read_u32(bytes, pos)?;
        if id as usize >= dict_len {
            return Err(ValueError::Codec(format!(
                "dictionary id {id} out of range (pool size {dict_len})"
            )));
        }
        ids.push(id);
    }
    Ok(ids)
}

/// One batch of rows flowing between streaming operators, in either
/// layout. Operators read it through the row view ([`Batch::row_at`] /
/// [`Batch::into_values`]) unless they have a column fast path.
#[derive(Debug, Clone, PartialEq)]
pub enum Batch {
    /// Legacy layout: boxed rows.
    Rows(Vec<Value>),
    /// Columnar layout (uniform tuple batches only).
    Columnar(ColumnarBatch),
}

impl Batch {
    /// Builds a batch in the layout `kind` asks for. Columnar mode falls
    /// back to rows when the batch is not a uniform block of tuples.
    pub fn of(kind: BatchKind, rows: Vec<Value>) -> Batch {
        match kind {
            BatchKind::Row => Batch::Rows(rows),
            BatchKind::Columnar => match ColumnarBatch::try_new(rows) {
                Ok(cb) => Batch::Columnar(cb),
                Err(rows) => Batch::Rows(rows),
            },
        }
    }

    /// A row-layout batch (scalar streams and layout-agnostic callers).
    pub fn from_rows(rows: Vec<Value>) -> Batch {
        Batch::Rows(rows)
    }

    /// Rows in the batch.
    pub fn len(&self) -> usize {
        match self {
            Batch::Rows(v) => v.len(),
            Batch::Columnar(cb) => cb.len(),
        }
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column for `name`, when the batch is columnar and has it.
    pub fn column(&self, name: &str) -> Option<&Column> {
        match self {
            Batch::Rows(_) => None,
            Batch::Columnar(cb) => cb.column(name),
        }
    }

    /// Row `i`: borrowed from a row batch, materialized from columns.
    pub fn row_at(&self, i: usize) -> Cow<'_, Value> {
        match self {
            Batch::Rows(v) => Cow::Borrowed(&v[i]),
            Batch::Columnar(cb) => Cow::Owned(cb.row(i)),
        }
    }

    /// Every row, in order, consuming the batch.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            Batch::Rows(v) => v,
            Batch::Columnar(cb) => cb.to_rows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{name, Set};

    fn row(i: i64) -> Value {
        Value::tuple([
            ("id", Value::Oid(Oid(100 + i as u64))),
            ("n", Value::Int(i)),
            ("name", Value::str(if i % 2 == 0 { "even" } else { "odd" })),
            (
                "refs",
                Value::set((0..(i % 3)).map(|k| Value::Oid(Oid(k as u64)))),
            ),
        ])
    }

    #[test]
    fn columnar_roundtrips_rows_in_order() {
        let rows: Vec<Value> = (0..40).map(row).collect();
        let b = Batch::of(BatchKind::Columnar, rows.clone());
        let Batch::Columnar(cb) = &b else {
            panic!("uniform tuples must go columnar")
        };
        assert_eq!(cb.len(), 40);
        // unboxed primitive columns, interned strings, pooled sets
        assert!(matches!(cb.column("n"), Some(Column::Int(_))));
        assert!(matches!(cb.column("id"), Some(Column::Oid(_))));
        match cb.column("name") {
            Some(Column::Str { dict, .. }) => assert_eq!(dict.len(), 2),
            other => panic!("expected interned strings, got {other:?}"),
        }
        match cb.column("refs") {
            Some(Column::Interned { dict, .. }) => assert_eq!(dict.len(), 3),
            other => panic!("expected pooled sets, got {other:?}"),
        }
        assert_eq!(b.clone().into_values(), rows);
        for (i, want) in rows.iter().enumerate() {
            assert_eq!(b.row_at(i).as_ref(), want);
        }
    }

    #[test]
    fn non_uniform_batches_stay_rows() {
        // scalar stream
        let b = Batch::of(BatchKind::Columnar, vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(b, Batch::Rows(_)));
        // mixed schemas
        let b = Batch::of(
            BatchKind::Columnar,
            vec![
                Value::tuple([("a", Value::Int(1))]),
                Value::tuple([("b", Value::Int(2))]),
            ],
        );
        assert!(matches!(b, Batch::Rows(_)));
        // empty batches have no schema
        assert!(matches!(
            Batch::of(BatchKind::Columnar, vec![]),
            Batch::Rows(_)
        ));
        // row mode never converts
        let b = Batch::of(BatchKind::Row, (0..4).map(row).collect());
        assert!(matches!(b, Batch::Rows(_)));
    }

    #[test]
    fn mixed_kind_column_upgrades_to_pool() {
        let rows = vec![
            Value::tuple([("a", Value::Int(1))]),
            Value::tuple([("a", Value::str("two"))]),
            Value::tuple([("a", Value::Int(1))]),
        ];
        let b = Batch::of(BatchKind::Columnar, rows.clone());
        let Batch::Columnar(cb) = &b else {
            panic!("uniform schema must go columnar")
        };
        match cb.column("a") {
            Some(Column::Interned { dict, ids }) => {
                assert_eq!(dict.len(), 2); // 1 and "two", deduplicated
                assert_eq!(ids, &vec![0, 1, 0]);
            }
            other => panic!("expected pooled column, got {other:?}"),
        }
        assert_eq!(b.clone().into_values(), rows);
    }

    #[test]
    fn filter_project_rename_match_row_semantics() {
        let rows: Vec<Value> = (0..20).map(row).collect();
        let Batch::Columnar(cb) = Batch::of(BatchKind::Columnar, rows.clone()) else {
            panic!("columnar")
        };
        // filter
        let keep: Vec<bool> = (0..20).map(|i| i % 3 == 0).collect();
        let filtered = cb.filter(&keep);
        let want: Vec<Value> = rows
            .iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(r, _)| r.clone())
            .collect();
        assert_eq!(filtered.to_rows(), want);
        // project
        let p = cb.project(&[name("n"), name("id")]).unwrap();
        let want: Vec<Value> = rows
            .iter()
            .map(|r| {
                Value::Tuple(
                    r.as_tuple()
                        .unwrap()
                        .subscript(&[name("n"), name("id")])
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(p.to_rows(), want);
        assert!(cb.project(&[name("missing")]).is_none());
        assert!(cb.project(&[name("n"), name("n")]).is_none());
        // rename
        let r = cb.rename(&[(name("n"), name("zz"))]).unwrap();
        let want: Vec<Value> = rows
            .iter()
            .map(|v| Value::Tuple(v.as_tuple().unwrap().rename("n", &name("zz")).unwrap()))
            .collect();
        assert_eq!(r.to_rows(), want);
        assert!(cb.rename(&[(name("missing"), name("zz"))]).is_none());
        assert!(cb.rename(&[(name("n"), name("id"))]).is_none(), "collision");
        // a chain through a transient duplicate must fall back too — the
        // row path errors on the *first* colliding pair, and relabeling
        // through the duplicate would silently swap columns
        assert!(
            cb.rename(&[(name("n"), name("id")), (name("id"), name("x"))])
                .is_none(),
            "transient collision"
        );
        // a collision-free chain (including reusing a freed name) is fine
        let chained = cb
            .rename(&[(name("n"), name("tmp")), (name("tmp"), name("n"))])
            .unwrap();
        assert_eq!(chained.to_rows(), rows);
    }

    #[test]
    fn gather_and_concat_match_row_semantics() {
        let rows: Vec<Value> = (0..10).map(row).collect();
        let Batch::Columnar(cb) = Batch::of(BatchKind::Columnar, rows.clone()) else {
            panic!("columnar")
        };
        // gather: repeated, unsorted indices
        let idx = [3usize, 3, 0, 7, 3, 9];
        let g = cb.gather(&idx);
        let want: Vec<Value> = idx.iter().map(|&i| rows[i].clone()).collect();
        assert_eq!(g.to_rows(), want);
        // the gathered dictionary drops unreferenced pool entries
        match g.column("name") {
            Some(Column::Str { dict, .. }) => assert_eq!(dict.len(), 2),
            other => panic!("expected interned strings, got {other:?}"),
        }
        // concat over disjoint schemas mirrors per-row Tuple::concat
        let left = cb.project(&[name("n")]).unwrap();
        let right = cb.project(&[name("id"), name("name")]).unwrap();
        let c = left.concat(&right).unwrap();
        let want: Vec<Value> = rows
            .iter()
            .map(|r| {
                let t = r.as_tuple().unwrap();
                let l = t.subscript(&[name("n")]).unwrap();
                let r = t.subscript(&[name("id"), name("name")]).unwrap();
                Value::Tuple(l.concat(&r).unwrap())
            })
            .collect();
        assert_eq!(c.to_rows(), want);
        // a name collision or length mismatch defeats the fast path
        assert!(left.concat(&left).is_none());
        assert!(left.concat(&right.gather(&[0])).is_none());
    }

    #[test]
    fn column_blocks_roundtrip_through_the_codec() {
        let rows: Vec<Value> = (0..33)
            .map(|i| {
                Value::tuple([
                    ("b", Value::Bool(i % 2 == 0)),
                    ("d", Value::Date(940101 + i)),
                    ("f", Value::float(i as f64 / 3.0)),
                    ("n", Value::Int(i)),
                    ("nested", Value::set([Value::Int(i % 5), Value::str("x")])),
                    ("s", Value::str(&format!("s{}", i % 4))),
                ])
            })
            .collect();
        let Batch::Columnar(cb) = Batch::of(BatchKind::Columnar, rows.clone()) else {
            panic!("columnar")
        };
        let mut bytes = Vec::new();
        cb.encode_into(&mut bytes);
        let back = ColumnarBatch::decode(&bytes).unwrap();
        assert_eq!(back, cb);
        assert_eq!(back.to_rows(), rows);
        // corrupt id → defined error, not a panic
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] = 0xFF;
        assert!(matches!(
            ColumnarBatch::decode(&bad),
            Err(ValueError::Codec(_))
        ));
        assert!(matches!(
            ColumnarBatch::decode(&bytes[..bytes.len() - 2]),
            Err(ValueError::Codec(_))
        ));
    }

    #[test]
    fn float_columns_keep_canonical_nan_and_zero() {
        let rows = vec![
            Value::tuple([("f", Value::float(f64::NAN))]),
            Value::tuple([("f", Value::float(-0.0))]),
            Value::tuple([("f", Value::float(1.5))]),
        ];
        let Batch::Columnar(cb) = Batch::of(BatchKind::Columnar, rows.clone()) else {
            panic!("columnar")
        };
        assert_eq!(cb.to_rows(), rows);
        let mut bytes = Vec::new();
        cb.encode_into(&mut bytes);
        assert_eq!(ColumnarBatch::decode(&bytes).unwrap().to_rows(), rows);
    }

    #[test]
    fn null_padding_lands_in_the_pool() {
        // outer-join padded rows carry Null — must round-trip
        let rows = vec![
            Value::tuple([("a", Value::Int(1)), ("pad", Value::Null)]),
            Value::tuple([("a", Value::Int(2)), ("pad", Value::str("y"))]),
        ];
        let b = Batch::of(BatchKind::Columnar, rows.clone());
        assert_eq!(b.into_values(), rows);
        let _ = Set::from_values(rows); // still canonicalizable downstream
    }

    #[test]
    fn batch_kind_default_is_columnar() {
        assert_eq!(BatchKind::default(), BatchKind::Columnar);
    }
}

//! The ADL type language and the schema function `SCH`.
//!
//! ADL is a *typed* algebra (paper §3). Types are built from atomic types,
//! `oid` (optionally tagged with the class it references), and the tuple
//! and set constructors. The schema function `SCH`, when applied to a table
//! expression, delivers the top-level attribute names.

use crate::{Name, ValueError};
use std::fmt;

/// An ADL type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// Placeholder that unifies with anything; the element type of the
    /// empty set, and the type of `NULL` padding.
    Unknown,
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Float.
    Float,
    /// String.
    Str,
    /// Date.
    Date,
    /// Object identifier; `Some(class)` when the referenced class is known
    /// (class references are implemented by pointers, also of type oid —
    /// paper §3).
    Oid(Option<Name>),
    /// Tuple type `⟨a₁ : T₁, …⟩`.
    Tuple(TupleType),
    /// Set type `{T}`.
    Set(Box<Type>),
}

impl Type {
    /// Set-of-`elem` constructor.
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// Tuple constructor from `(&str, Type)` pairs (panics on duplicates —
    /// fixture convenience).
    pub fn tuple<'a, I: IntoIterator<Item = (&'a str, Type)>>(pairs: I) -> Type {
        Type::Tuple(TupleType::from_pairs(pairs))
    }

    /// A table type: set of tuples.
    pub fn table<'a, I: IntoIterator<Item = (&'a str, Type)>>(pairs: I) -> Type {
        Type::set(Type::tuple(pairs))
    }

    /// True for `{…}` types.
    pub fn is_set(&self) -> bool {
        matches!(self, Type::Set(_))
    }

    /// True for atomic (non-tuple, non-set) types.
    pub fn is_atomic(&self) -> bool {
        !matches!(self, Type::Tuple(_) | Type::Set(_))
    }

    /// The element type of a set type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Set(e) => Some(e),
            _ => None,
        }
    }

    /// The tuple type underneath, if this is a tuple.
    pub fn as_tuple(&self) -> Option<&TupleType> {
        match self {
            Type::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Schema function `SCH` (paper §3): applied to a **table expression
    /// type** (`{⟨…⟩}`), delivers the top-level attribute names.
    pub fn sch(&self) -> Option<Vec<Name>> {
        match self {
            Type::Set(elem) => match elem.as_ref() {
                Type::Tuple(t) => Some(t.names()),
                _ => None,
            },
            _ => None,
        }
    }

    /// Structural compatibility with unknown-type holes: returns the more
    /// specific of the two types, or `None` if they conflict.
    pub fn unify(&self, other: &Type) -> Option<Type> {
        match (self, other) {
            (Type::Unknown, t) | (t, Type::Unknown) => Some(t.clone()),
            (Type::Oid(a), Type::Oid(b)) => match (a, b) {
                (Some(x), Some(y)) if x == y => Some(Type::Oid(Some(x.clone()))),
                (Some(x), None) | (None, Some(x)) => Some(Type::Oid(Some(x.clone()))),
                (None, None) => Some(Type::Oid(None)),
                _ => None,
            },
            (Type::Set(a), Type::Set(b)) => Some(Type::set(a.unify(b)?)),
            (Type::Tuple(a), Type::Tuple(b)) => {
                if a.fields.len() != b.fields.len() {
                    return None;
                }
                let mut fields = Vec::with_capacity(a.fields.len());
                for ((na, ta), (nb, tb)) in a.fields.iter().zip(&b.fields) {
                    if na != nb {
                        return None;
                    }
                    fields.push((na.clone(), ta.unify(tb)?));
                }
                Some(Type::Tuple(TupleType::new_unchecked(fields)))
            }
            (a, b) if a == b => Some(a.clone()),
            // int and float are NOT unified: arithmetic promotes explicitly
            _ => None,
        }
    }

    /// True when values of this type can be compared with `< ≤ > ≥`.
    pub fn is_ordered(&self) -> bool {
        matches!(
            self,
            Type::Int | Type::Float | Type::Str | Type::Date | Type::Bool | Type::Unknown
        )
    }
}

/// A tuple type: attribute name → type, canonically ordered by name.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct TupleType {
    fields: Vec<(Name, Type)>,
}

impl TupleType {
    /// Builds a tuple type, checking for duplicate attribute names.
    pub fn new(mut fields: Vec<(Name, Type)>) -> Result<Self, ValueError> {
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        for w in fields.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ValueError::DuplicateField(w[0].0.clone()));
            }
        }
        Ok(TupleType { fields })
    }

    /// Builds a tuple type assuming fields are unique (sorts them).
    pub fn new_unchecked(mut fields: Vec<(Name, Type)>) -> Self {
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        TupleType { fields }
    }

    /// From `(&str, Type)` pairs; panics on duplicates.
    pub fn from_pairs<'a, I: IntoIterator<Item = (&'a str, Type)>>(pairs: I) -> Self {
        TupleType::new(pairs.into_iter().map(|(n, t)| (Name::from(n), t)).collect())
            .expect("duplicate field in TupleType::from_pairs")
    }

    /// Attribute names in canonical order — the tuple-level `SCH`.
    pub fn names(&self) -> Vec<Name> {
        self.fields.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Looks up an attribute's type.
    pub fn field(&self, name: &str) -> Option<&Type> {
        self.fields
            .binary_search_by(|(n, _)| n.as_ref().cmp(name))
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// True if the attribute exists.
    pub fn has_field(&self, name: &str) -> bool {
        self.field(name).is_some()
    }

    /// Iterates `(name, type)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Type)> {
        self.fields.iter().map(|(n, t)| (n, t))
    }

    /// The sub-tuple-type with exactly the named attributes (projection).
    pub fn subscript(&self, names: &[Name]) -> Result<TupleType, ValueError> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let t = self.field(n).ok_or_else(|| ValueError::NoSuchField {
                field: n.clone(),
                tuple: self.to_string(),
            })?;
            fields.push((n.clone(), t.clone()));
        }
        TupleType::new(fields)
    }

    /// The tuple type without the named attribute.
    pub fn without(&self, name: &str) -> TupleType {
        TupleType {
            fields: self
                .fields
                .iter()
                .filter(|(n, _)| n.as_ref() != name)
                .cloned()
                .collect(),
        }
    }

    /// Concatenation of two tuple types (for joins/products); errors on
    /// attribute conflicts.
    pub fn concat(&self, other: &TupleType) -> Result<TupleType, ValueError> {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        TupleType::new(fields)
    }

    /// Adds or replaces a field (used by `except` typing and nest/nestjoin).
    pub fn with_field(&self, name: Name, ty: Type) -> TupleType {
        let mut fields: Vec<(Name, Type)> = self
            .fields
            .iter()
            .filter(|(n, _)| *n != name)
            .cloned()
            .collect();
        fields.push((name, ty));
        TupleType::new_unchecked(fields)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Unknown => write!(f, "⊥"),
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Str => write!(f, "string"),
            Type::Date => write!(f, "date"),
            Type::Oid(None) => write!(f, "oid"),
            Type::Oid(Some(c)) => write!(f, "oid⟨{c}⟩"),
            Type::Tuple(t) => write!(f, "{t}"),
            Type::Set(e) => write!(f, "{{{e}}}"),
        }
    }
}

impl fmt::Display for TupleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (n, t)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} : {t}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;

    #[test]
    fn sch_of_table_type() {
        let supplier = Type::table([
            ("eid", Type::Oid(Some(name("Supplier")))),
            ("sname", Type::Str),
            ("parts", Type::set(Type::Oid(Some(name("Part"))))),
        ]);
        let sch = supplier.sch().unwrap();
        let names: Vec<&str> = sch.iter().map(|n| n.as_ref()).collect();
        assert_eq!(names, vec!["eid", "parts", "sname"]); // canonical order
        assert_eq!(Type::Int.sch(), None);
        assert_eq!(Type::set(Type::Int).sch(), None);
    }

    #[test]
    fn unify_resolves_unknown() {
        let a = Type::set(Type::Unknown);
        let b = Type::set(Type::Int);
        assert_eq!(a.unify(&b), Some(Type::set(Type::Int)));
        assert_eq!(Type::Int.unify(&Type::Str), None);
        assert_eq!(Type::Int.unify(&Type::Float), None);
    }

    #[test]
    fn unify_oid_classes() {
        let p = Type::Oid(Some(name("Part")));
        let s = Type::Oid(Some(name("Supplier")));
        let any = Type::Oid(None);
        assert_eq!(p.unify(&p), Some(p.clone()));
        assert_eq!(p.unify(&any), Some(p.clone()));
        assert_eq!(p.unify(&s), None);
    }

    #[test]
    fn unify_tuples_fieldwise() {
        let a = Type::tuple([("a", Type::Int), ("b", Type::set(Type::Unknown))]);
        let b = Type::tuple([("a", Type::Int), ("b", Type::set(Type::Str))]);
        assert_eq!(
            a.unify(&b),
            Some(Type::tuple([("a", Type::Int), ("b", Type::set(Type::Str))]))
        );
        let c = Type::tuple([("a", Type::Int)]);
        assert_eq!(a.unify(&c), None);
    }

    #[test]
    fn tuple_type_operations() {
        let t = TupleType::from_pairs([("a", Type::Int), ("b", Type::Str)]);
        assert!(t.has_field("a"));
        assert_eq!(t.field("b"), Some(&Type::Str));
        assert_eq!(t.without("a").names(), vec![name("b")]);
        let s = t.subscript(&[name("b")]).unwrap();
        assert_eq!(s.names(), vec![name("b")]);
        assert!(t.subscript(&[name("zz")]).is_err());
        let u = t
            .concat(&TupleType::from_pairs([("c", Type::Bool)]))
            .unwrap();
        assert_eq!(u.arity(), 3);
        assert!(t.concat(&t).is_err());
    }

    #[test]
    fn with_field_replaces() {
        let t = TupleType::from_pairs([("a", Type::Int)]);
        let u = t.with_field(name("a"), Type::Str);
        assert_eq!(u.field("a"), Some(&Type::Str));
        let v = t.with_field(name("b"), Type::Bool);
        assert_eq!(v.arity(), 2);
    }

    #[test]
    fn duplicate_detection() {
        assert!(TupleType::new(vec![(name("a"), Type::Int), (name("a"), Type::Str)]).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::set(Type::Int).to_string(), "{int}");
        assert_eq!(
            Type::tuple([("pid", Type::Oid(Some(name("Part"))))]).to_string(),
            "⟨pid : oid⟨Part⟩⟩"
        );
    }
}

//! A totally ordered, hashable `f64` wrapper.
//!
//! ADL sets are order-canonical, so every value — including floats — must be
//! `Ord + Hash`. [`F64`] uses IEEE-754 `total_cmp` for ordering and the raw
//! bit pattern (with `-0.0` normalised to `+0.0` and all NaNs collapsed to a
//! single canonical NaN) for equality and hashing, so `Eq`/`Hash`/`Ord` are
//! mutually consistent.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An `f64` with total order and structural hashing.
#[derive(Clone, Copy, Debug, Default)]
pub struct F64(f64);

impl F64 {
    /// Wraps a float, canonicalising `-0.0` to `0.0` and any NaN to the
    /// positive canonical NaN so that equal keys hash equally.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            F64(f64::NAN)
        } else if v == 0.0 {
            F64(0.0)
        } else {
            F64(v)
        }
    }

    /// The underlying float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // `new` canonicalised -0.0 and NaN, so bit patterns of equal values
        // are identical.
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.is_finite() && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: F64) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        assert_eq!(F64::new(-0.0), F64::new(0.0));
        assert_eq!(hash_of(F64::new(-0.0)), hash_of(F64::new(0.0)));
    }

    #[test]
    fn nan_is_self_equal_and_canonical() {
        let a = F64::new(f64::NAN);
        let b = F64::new(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(a), hash_of(b));
    }

    #[test]
    fn total_order_places_nan_last() {
        let mut v = [
            F64::new(f64::NAN),
            F64::new(1.0),
            F64::new(-1.0),
            F64::new(0.0),
        ];
        v.sort();
        assert_eq!(v[0], F64::new(-1.0));
        assert_eq!(v[1], F64::new(0.0));
        assert_eq!(v[2], F64::new(1.0));
        assert!(v[3].get().is_nan());
    }

    #[test]
    fn display_keeps_integral_floats_distinct_from_ints() {
        assert_eq!(F64::new(2.0).to_string(), "2.0");
        assert_eq!(F64::new(2.5).to_string(), "2.5");
    }
}

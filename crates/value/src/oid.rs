//! Object identity.
//!
//! The basic type `oid` is used to represent object identity (paper §3). In
//! the logical database design each class extension is mapped to a table of
//! (possibly complex) objects; a field of type `oid` is added to represent
//! object identity, and class references are implemented by pointers, also
//! of type `oid`.
//!
//! Oids here are plain 64-bit integers: the catalog maintains the
//! oid → row index maps that make them *physical* pointers, which is what
//! enables pointer-based joins (assembly, \[BlMG93\]; see
//! `oodb-engine::physical::assembly`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An object identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Oid(pub u64);

impl Oid {
    /// The raw identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A monotonically increasing oid source.
///
/// Thread-safe so parallel loaders can share one generator; deterministic
/// given a fixed allocation order (the datagen crate allocates from a fresh
/// generator per database, so generated databases are reproducible).
#[derive(Debug)]
pub struct OidGenerator {
    next: AtomicU64,
}

impl OidGenerator {
    /// A generator starting at oid `@1` (`@0` is reserved as a null-ish
    /// sentinel that never names an object).
    pub fn new() -> Self {
        OidGenerator {
            next: AtomicU64::new(1),
        }
    }

    /// A generator whose first handed-out oid is `start`.
    pub fn starting_at(start: u64) -> Self {
        OidGenerator {
            next: AtomicU64::new(start),
        }
    }

    /// Allocates a fresh oid.
    pub fn fresh(&self) -> Oid {
        Oid(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// The next oid that would be handed out (for snapshot/restore).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for OidGenerator {
    fn default() -> Self {
        OidGenerator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_oids_are_distinct_and_increasing() {
        let g = OidGenerator::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(a < b);
        assert_ne!(a, b);
        assert_eq!(a, Oid(1));
    }

    #[test]
    fn starting_at_controls_first_oid() {
        let g = OidGenerator::starting_at(100);
        assert_eq!(g.fresh(), Oid(100));
        assert_eq!(g.peek(), 101);
    }

    #[test]
    fn display_uses_at_sign() {
        assert_eq!(Oid(17).to_string(), "@17");
    }
}

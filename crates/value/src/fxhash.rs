//! A minimal FxHash-style hasher.
//!
//! Join keys in this system are dominated by small values: oids, integers,
//! short strings. The Rust default SipHash is collision-hardened but slow
//! for such keys; the Firefox/rustc "Fx" multiply-xor hash is the standard
//! fast alternative (see the Rust Performance Book, *Hashing*). We inline
//! the ~30-line algorithm rather than pulling a dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc/Firefox Fx hash: a fast, non-cryptographic word-at-a-time hash.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fx<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(fx(42u64), fx(42u64));
        assert_eq!(fx("supplier"), fx("supplier"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(fx(1u64), fx(2u64));
        assert_ne!(fx("s1"), fx("s2"));
        // the length tag keeps prefixes distinct
        assert_ne!(fx("ab"), fx("ab\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "part");
        assert_eq!(m.get(&7), Some(&"part"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("red");
        assert!(s.contains("red"));
    }
}

//! The runtime value universe of ADL.

use crate::{Name, Oid, Set, Tuple, Type, ValueError, F64};
use std::fmt;

/// A complex object value.
///
/// The constructors mirror the paper's data model (§2, §3): atomic values
/// (`bool`, `int`, `float`, `string`, `date`), object identity (`oid`), and
/// the tuple `⟨⟩` and set `{}` constructors, which nest arbitrarily.
///
/// `Null` is **not** part of ADL proper — the paper's algebra is null-free.
/// It exists solely to implement the outerjoin repair of the COUNT bug
/// discussed in §5.2.2 ("in using the outerjoin, NULL values are used to
/// represent the empty set"); ordinary operators never produce it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// Outerjoin padding only; see type-level docs.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Total-ordered float.
    Float(F64),
    /// String.
    Str(Name),
    /// Date, stored as the paper writes them: `yymmdd`/`yyyymmdd` integers
    /// (Example Query 2 compares `d.date = 940101`).
    Date(i64),
    /// Object identifier.
    Oid(Oid),
    /// Tuple constructor `⟨a₁ = v₁, …⟩`.
    Tuple(Tuple),
    /// Set constructor `{v₁, …}`.
    Set(Set),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Name::from(s))
    }

    /// Builds a float value.
    pub fn float(f: f64) -> Value {
        Value::Float(F64::new(f))
    }

    /// Builds a set value from an iterator.
    pub fn set<I: IntoIterator<Item = Value>>(vs: I) -> Value {
        Value::Set(vs.into_iter().collect())
    }

    /// Builds a tuple value from `(&str, Value)` pairs.
    pub fn tuple<'a, I: IntoIterator<Item = (&'a str, Value)>>(pairs: I) -> Value {
        Value::Tuple(Tuple::from_pairs(pairs))
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(Set::empty())
    }

    /// True/false literals.
    pub const TRUE: Value = Value::Bool(true);
    /// See [`Value::TRUE`].
    pub const FALSE: Value = Value::Bool(false);

    /// Expects a boolean.
    pub fn as_bool(&self) -> Result<bool, ValueError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::TypeMismatch {
                op: "boolean context",
                lhs: other.to_string(),
                rhs: "bool".into(),
            }),
        }
    }

    /// Expects a set.
    pub fn as_set(&self) -> Result<&Set, ValueError> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(ValueError::NotASet(other.to_string())),
        }
    }

    /// Expects a set, by value.
    pub fn into_set(self) -> Result<Set, ValueError> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(ValueError::NotASet(other.to_string())),
        }
    }

    /// Expects a tuple.
    pub fn as_tuple(&self) -> Result<&Tuple, ValueError> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(ValueError::NotATuple(other.to_string())),
        }
    }

    /// Expects a tuple, by value.
    pub fn into_tuple(self) -> Result<Tuple, ValueError> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(ValueError::NotATuple(other.to_string())),
        }
    }

    /// Expects an oid.
    pub fn as_oid(&self) -> Result<Oid, ValueError> {
        match self {
            Value::Oid(o) => Ok(*o),
            other => Err(ValueError::TypeMismatch {
                op: "oid context",
                lhs: other.to_string(),
                rhs: "oid".into(),
            }),
        }
    }

    /// Expects an integer.
    pub fn as_int(&self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ValueError::TypeMismatch {
                op: "integer context",
                lhs: other.to_string(),
                rhs: "int".into(),
            }),
        }
    }

    /// The most specific [`Type`] describing this value.
    ///
    /// Empty sets type as `{⊥}` (set of [`Type::Unknown`]), which unifies
    /// with any set type.
    pub fn type_of(&self) -> Type {
        match self {
            Value::Null => Type::Unknown,
            Value::Bool(_) => Type::Bool,
            Value::Int(_) => Type::Int,
            Value::Float(_) => Type::Float,
            Value::Str(_) => Type::Str,
            Value::Date(_) => Type::Date,
            Value::Oid(_) => Type::Oid(None),
            Value::Tuple(t) => {
                let fields = t
                    .iter()
                    .map(|(n, v)| (n.clone(), v.type_of()))
                    .collect::<Vec<_>>();
                Type::Tuple(crate::TupleType::new_unchecked(fields))
            }
            Value::Set(s) => {
                let mut elem = Type::Unknown;
                for v in s.iter() {
                    elem = elem.unify(&v.type_of()).unwrap_or(Type::Unknown);
                }
                Type::set(elem)
            }
        }
    }

    /// Structural deep size (number of atomic values), used by benchmarks
    /// to report result volumes.
    pub fn deep_size(&self) -> usize {
        match self {
            Value::Tuple(t) => t.iter().map(|(_, v)| v.deep_size()).sum(),
            Value::Set(s) => s.iter().map(Value::deep_size).sum(),
            _ => 1,
        }
    }

    /// Arithmetic on ints/floats with overflow checking.
    pub fn arith(op: ArithOp, lhs: &Value, rhs: &Value) -> Result<Value, ValueError> {
        use ArithOp::*;
        match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => match op {
                Add => a
                    .checked_add(*b)
                    .map(Value::Int)
                    .ok_or(ValueError::Overflow("+")),
                Sub => a
                    .checked_sub(*b)
                    .map(Value::Int)
                    .ok_or(ValueError::Overflow("-")),
                Mul => a
                    .checked_mul(*b)
                    .map(Value::Int)
                    .ok_or(ValueError::Overflow("*")),
                Div => {
                    if *b == 0 {
                        Err(ValueError::DivisionByZero)
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                Mod => {
                    if *b == 0 {
                        Err(ValueError::DivisionByZero)
                    } else {
                        Ok(Value::Int(a % b))
                    }
                }
            },
            (Value::Float(a), Value::Float(b)) => {
                let (a, b) = (a.get(), b.get());
                let r = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a % b,
                };
                Ok(Value::float(r))
            }
            // int/float mixing promotes to float, as OOSQL's checker allows
            (Value::Int(a), Value::Float(_)) => Value::arith(op, &Value::float(*a as f64), rhs),
            (Value::Float(_), Value::Int(b)) => Value::arith(op, lhs, &Value::float(*b as f64)),
            _ => Err(ValueError::TypeMismatch {
                op: op.symbol(),
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            }),
        }
    }

    /// Ordered comparison; errors when the values are not comparable
    /// (different constructors), except that any two values can be checked
    /// for (in)equality.
    pub fn compare(op: CmpOp, lhs: &Value, rhs: &Value) -> Result<bool, ValueError> {
        use CmpOp::*;
        // Equality is structural and total.
        match op {
            Eq => return Ok(lhs == rhs),
            Ne => return Ok(lhs != rhs),
            _ => {}
        }
        let comparable = matches!(
            (lhs, rhs),
            (Value::Int(_), Value::Int(_))
                | (Value::Float(_), Value::Float(_))
                | (Value::Int(_), Value::Float(_))
                | (Value::Float(_), Value::Int(_))
                | (Value::Str(_), Value::Str(_))
                | (Value::Date(_), Value::Date(_))
                | (Value::Bool(_), Value::Bool(_))
        );
        if !comparable {
            return Err(ValueError::TypeMismatch {
                op: op.symbol(),
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            });
        }
        let ord = match (lhs, rhs) {
            (Value::Int(a), Value::Float(b)) => F64::new(*a as f64).cmp(b),
            (Value::Float(a), Value::Int(b)) => a.cmp(&F64::new(*b as f64)),
            _ => lhs.cmp(rhs),
        };
        Ok(match op {
            Lt => ord.is_lt(),
            Le => ord.is_le(),
            Gt => ord.is_gt(),
            Ge => ord.is_ge(),
            Eq | Ne => unreachable!("handled above"),
        })
    }
}

/// Arithmetic operators available in OOSQL / ADL expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    /// Source symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// Scalar comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Source symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }

    /// The logical negation (`¬(a < b) ≡ a ≥ b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with operands swapped (`a < b ≡ b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// The set-comparison operators of the paper (§5.2, Table 1), plus their
/// negations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetCmpOp {
    /// `x ∈ S` — membership (element on the left).
    In,
    /// `x ∉ S`.
    NotIn,
    /// `A ⊂ B` — proper subset.
    Subset,
    /// `A ⊆ B`.
    SubsetEq,
    /// `A = B` — set equality.
    SetEq,
    /// `A ≠ B`.
    SetNe,
    /// `A ⊇ B`.
    SupersetEq,
    /// `A ⊃ B` — proper superset.
    Superset,
    /// `A ∋ x` — containment (element on the right); paper Table 1 last row.
    Contains,
    /// `A ∌ x`.
    NotContains,
}

impl SetCmpOp {
    /// Source symbol (paper notation).
    pub fn symbol(self) -> &'static str {
        match self {
            SetCmpOp::In => "∈",
            SetCmpOp::NotIn => "∉",
            SetCmpOp::Subset => "⊂",
            SetCmpOp::SubsetEq => "⊆",
            SetCmpOp::SetEq => "=",
            SetCmpOp::SetNe => "≠",
            SetCmpOp::SupersetEq => "⊇",
            SetCmpOp::Superset => "⊃",
            SetCmpOp::Contains => "∋",
            SetCmpOp::NotContains => "∌",
        }
    }

    /// Direct negation where one exists in the operator set.
    ///
    /// `⊂ ⊆ ⊇ ⊃` have no single-symbol negations; the rewriter negates
    /// those at the formula level ("negating the operator negates the
    /// quantifier expression; antijoins are used instead of semijoins and
    /// vice versa", §5.2.1).
    pub fn direct_negation(self) -> Option<SetCmpOp> {
        match self {
            SetCmpOp::In => Some(SetCmpOp::NotIn),
            SetCmpOp::NotIn => Some(SetCmpOp::In),
            SetCmpOp::SetEq => Some(SetCmpOp::SetNe),
            SetCmpOp::SetNe => Some(SetCmpOp::SetEq),
            SetCmpOp::Contains => Some(SetCmpOp::NotContains),
            SetCmpOp::NotContains => Some(SetCmpOp::Contains),
            _ => None,
        }
    }

    /// Evaluates the operator on runtime values.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> Result<bool, ValueError> {
        match self {
            SetCmpOp::In => Ok(rhs.as_set()?.contains(lhs)),
            SetCmpOp::NotIn => Ok(!rhs.as_set()?.contains(lhs)),
            SetCmpOp::Subset => Ok(lhs.as_set()?.subset(rhs.as_set()?)),
            SetCmpOp::SubsetEq => Ok(lhs.as_set()?.subset_eq(rhs.as_set()?)),
            SetCmpOp::SetEq => Ok(lhs.as_set()? == rhs.as_set()?),
            SetCmpOp::SetNe => Ok(lhs.as_set()? != rhs.as_set()?),
            SetCmpOp::SupersetEq => Ok(lhs.as_set()?.superset_eq(rhs.as_set()?)),
            SetCmpOp::Superset => Ok(lhs.as_set()?.superset(rhs.as_set()?)),
            SetCmpOp::Contains => Ok(lhs.as_set()?.contains(rhs)),
            SetCmpOp::NotContains => Ok(!lhs.as_set()?.contains(rhs)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => {
                // escape so printed literals re-lex correctly
                write!(f, "\"")?;
                for ch in s.chars() {
                    match ch {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "\"")
            }
            Value::Date(d) => write!(f, "date({d})"),
            Value::Oid(o) => write!(f, "{o}"),
            Value::Tuple(t) => write!(f, "{t}"),
            Value::Set(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let v = Value::arith(ArithOp::Add, &Value::Int(2), &Value::Int(3)).unwrap();
        assert_eq!(v, Value::Int(5));
        let v = Value::arith(ArithOp::Mul, &Value::Int(2), &Value::float(1.5)).unwrap();
        assert_eq!(v, Value::float(3.0));
        assert!(matches!(
            Value::arith(ArithOp::Div, &Value::Int(1), &Value::Int(0)),
            Err(ValueError::DivisionByZero)
        ));
        assert!(matches!(
            Value::arith(ArithOp::Add, &Value::Int(i64::MAX), &Value::Int(1)),
            Err(ValueError::Overflow(_))
        ));
        assert!(Value::arith(ArithOp::Add, &Value::Int(1), &Value::str("x")).is_err());
    }

    #[test]
    fn comparisons() {
        assert!(Value::compare(CmpOp::Lt, &Value::Int(1), &Value::Int(2)).unwrap());
        assert!(Value::compare(CmpOp::Ge, &Value::float(2.0), &Value::Int(2)).unwrap());
        assert!(Value::compare(CmpOp::Eq, &Value::str("a"), &Value::str("a")).unwrap());
        // equality across constructors is false, not an error
        assert!(!Value::compare(CmpOp::Eq, &Value::Int(1), &Value::str("1")).unwrap());
        // ordering across constructors is an error
        assert!(Value::compare(CmpOp::Lt, &Value::Int(1), &Value::str("1")).is_err());
    }

    #[test]
    fn cmp_op_negate_and_flip() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn set_cmp_eval_matches_set_methods() {
        let a = Value::set([Value::Int(1), Value::Int(2)]);
        let b = Value::set([Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(SetCmpOp::Subset.eval(&a, &b).unwrap());
        assert!(SetCmpOp::SubsetEq.eval(&a, &b).unwrap());
        assert!(!SetCmpOp::SetEq.eval(&a, &b).unwrap());
        assert!(SetCmpOp::SetNe.eval(&a, &b).unwrap());
        assert!(SetCmpOp::Superset.eval(&b, &a).unwrap());
        assert!(SetCmpOp::In.eval(&Value::Int(2), &b).unwrap());
        assert!(SetCmpOp::NotIn.eval(&Value::Int(9), &b).unwrap());
        assert!(SetCmpOp::Contains.eval(&b, &Value::Int(3)).unwrap());
        assert!(SetCmpOp::NotContains.eval(&a, &Value::Int(3)).unwrap());
    }

    #[test]
    fn empty_set_cases_match_table_3() {
        // P(x, ∅) column of Table 3: ⊂ → false, ⊇ → true, others run-time.
        let c = Value::set([Value::Int(1)]);
        let empty = Value::empty_set();
        assert!(!SetCmpOp::Subset.eval(&c, &empty).unwrap());
        assert!(SetCmpOp::SupersetEq.eval(&c, &empty).unwrap());
        // run-time dependent ones, both branches:
        assert!(!SetCmpOp::SubsetEq.eval(&c, &empty).unwrap());
        assert!(SetCmpOp::SubsetEq.eval(&empty, &empty).unwrap());
        assert!(SetCmpOp::Superset.eval(&c, &empty).unwrap());
        assert!(!SetCmpOp::Superset.eval(&empty, &empty).unwrap());
    }

    #[test]
    fn type_of_reconstructs_structure() {
        let v = Value::tuple([
            ("sname", Value::str("s1")),
            ("parts", Value::set([Value::Oid(Oid(1))])),
        ]);
        let ty = v.type_of();
        match ty {
            Type::Tuple(tt) => {
                assert_eq!(tt.field("sname").unwrap(), &Type::Str);
                assert_eq!(tt.field("parts").unwrap(), &Type::set(Type::Oid(None)));
            }
            other => panic!("expected tuple type, got {other}"),
        }
    }

    #[test]
    fn deep_size_counts_atoms() {
        let v = Value::tuple([
            ("a", Value::Int(1)),
            ("b", Value::set([Value::Int(2), Value::Int(3)])),
        ]);
        assert_eq!(v.deep_size(), 3);
    }
}

//! Tuples (records) and the paper's tuple operations.
//!
//! ADL supports tuple subscription `e[a₁, …, aₙ]`, tuple update/extension
//! `except`, and tuple concatenation `∘` (paper §3, definitions 2, 3 and
//! the operator `o`). Fields are kept **sorted by attribute name** so that
//! tuple equality, ordering and hashing are structural and independent of
//! construction order.

use crate::{Name, Value, ValueError};
use std::fmt;

/// A complex-object tuple: attribute name → value, canonically ordered.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tuple {
    /// Sorted by name; names are unique.
    fields: Vec<(Name, Value)>,
}

impl Tuple {
    /// The empty tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple { fields: Vec::new() }
    }

    /// Builds a tuple from `(name, value)` pairs.
    ///
    /// Returns [`ValueError::DuplicateField`] if two pairs share a name.
    pub fn new(mut fields: Vec<(Name, Value)>) -> Result<Self, ValueError> {
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        for w in fields.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ValueError::DuplicateField(w[0].0.clone()));
            }
        }
        Ok(Tuple { fields })
    }

    /// Builds a tuple from fields already in canonical (sorted, unique)
    /// order — the hot row-materialization path of the columnar batch,
    /// whose schema is canonical by construction. Debug builds verify
    /// the invariant.
    pub(crate) fn from_sorted_unchecked(fields: Vec<(Name, Value)>) -> Self {
        debug_assert!(
            fields.windows(2).all(|w| w[0].0 < w[1].0),
            "fields must be sorted and unique"
        );
        Tuple { fields }
    }

    /// Builds a tuple from `(&str, Value)` pairs; panics on duplicates.
    ///
    /// Convenience for fixtures and tests.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: AsRef<str>,
    {
        Tuple::new(
            pairs
                .into_iter()
                .map(|(n, v)| (Name::from(n.as_ref()), v))
                .collect(),
        )
        .expect("duplicate field in Tuple::from_pairs")
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// True if this is the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field lookup.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .binary_search_by(|(n, _)| n.as_ref().cmp(name))
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Field lookup that reports a [`ValueError::NoSuchField`].
    pub fn field(&self, name: &Name) -> Result<&Value, ValueError> {
        self.get(name).ok_or_else(|| ValueError::NoSuchField {
            field: name.clone(),
            tuple: self.to_string(),
        })
    }

    /// Iterates `(name, value)` pairs in canonical (name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Value)> {
        self.fields.iter().map(|(n, v)| (n, v))
    }

    /// Consumes the tuple into its `(name, value)` pairs in canonical
    /// order — the zero-clone decomposition the columnar batch builder
    /// shreds rows through.
    pub fn into_fields(self) -> Vec<(Name, Value)> {
        self.fields
    }

    /// The attribute names, in canonical order. This is the tuple-level
    /// schema function `SCH`.
    pub fn attr_names(&self) -> Vec<Name> {
        self.fields.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Tuple subscription `e[a₁, …, aₙ]` (paper §3 def. 2): the sub-tuple
    /// containing exactly the named attributes.
    pub fn subscript(&self, names: &[Name]) -> Result<Tuple, ValueError> {
        let mut out = Vec::with_capacity(names.len());
        for n in names {
            out.push((n.clone(), self.field(n)?.clone()));
        }
        Tuple::new(out)
    }

    /// Tuple update/extension `except` (paper §3 def. 3): fields present in
    /// `updates` replace existing values **or** extend the tuple with new
    /// attributes; all other fields are left as they are.
    pub fn except(&self, updates: &[(Name, Value)]) -> Result<Tuple, ValueError> {
        let mut fields = self.fields.clone();
        for (n, v) in updates {
            match fields.binary_search_by(|(field, _)| field.cmp(n)) {
                Ok(i) => fields[i].1 = v.clone(),
                Err(i) => fields.insert(i, (n.clone(), v.clone())),
            }
        }
        // updates may themselves contain duplicates: last one wins by the
        // loop above, so the invariant (sorted, unique) already holds.
        Ok(Tuple { fields })
    }

    /// Tuple concatenation `x ∘ y`.
    ///
    /// The paper assumes no naming conflicts (§3); we return
    /// [`ValueError::DuplicateField`] when the assumption is violated.
    pub fn concat(&self, other: &Tuple) -> Result<Tuple, ValueError> {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        let (mut i, mut j) = (0, 0);
        while i < self.fields.len() && j < other.fields.len() {
            match self.fields[i].0.cmp(&other.fields[j].0) {
                std::cmp::Ordering::Less => {
                    fields.push(self.fields[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    fields.push(other.fields[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    return Err(ValueError::DuplicateField(self.fields[i].0.clone()))
                }
            }
        }
        fields.extend_from_slice(&self.fields[i..]);
        fields.extend_from_slice(&other.fields[j..]);
        Ok(Tuple { fields })
    }

    /// Removes the named attribute, returning the remaining tuple.
    pub fn without(&self, name: &str) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .filter(|(n, _)| n.as_ref() != name)
                .cloned()
                .collect(),
        }
    }

    /// Renames attribute `from` to `to` (the ADL renaming operator `ρ` at
    /// tuple level).
    pub fn rename(&self, from: &str, to: &Name) -> Result<Tuple, ValueError> {
        let mut fields = Vec::with_capacity(self.fields.len());
        let mut found = false;
        for (n, v) in &self.fields {
            if n.as_ref() == from {
                fields.push((to.clone(), v.clone()));
                found = true;
            } else {
                fields.push((n.clone(), v.clone()));
            }
        }
        if !found {
            return Err(ValueError::NoSuchField {
                field: Name::from(from),
                tuple: self.to_string(),
            });
        }
        Tuple::new(fields)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} = {v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;

    fn t(pairs: &[(&str, i64)]) -> Tuple {
        Tuple::from_pairs(pairs.iter().map(|(n, v)| (*n, Value::Int(*v))))
    }

    #[test]
    fn construction_is_order_insensitive() {
        let a = t(&[("a", 1), ("b", 2)]);
        let b = t(&[("b", 2), ("a", 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_fields_rejected() {
        let err =
            Tuple::new(vec![(name("a"), Value::Int(1)), (name("a"), Value::Int(2))]).unwrap_err();
        assert_eq!(err, ValueError::DuplicateField(name("a")));
    }

    #[test]
    fn subscription_projects_named_fields() {
        let x = t(&[("a", 1), ("b", 2), ("c", 3)]);
        let s = x.subscript(&[name("c"), name("a")]).unwrap();
        assert_eq!(s, t(&[("a", 1), ("c", 3)]));
    }

    #[test]
    fn subscription_missing_field_errors() {
        let x = t(&[("a", 1)]);
        assert!(matches!(
            x.subscript(&[name("z")]),
            Err(ValueError::NoSuchField { .. })
        ));
    }

    #[test]
    fn except_updates_and_extends() {
        // paper §3 def. 3: update existing fields, keep the rest, extend
        // with new fields.
        let x = t(&[("a", 1), ("b", 2)]);
        let y = x
            .except(&[(name("a"), Value::Int(10)), (name("c"), Value::Int(3))])
            .unwrap();
        assert_eq!(y, t(&[("a", 10), ("b", 2), ("c", 3)]));
    }

    #[test]
    fn concat_merges_disjoint_tuples() {
        let x = t(&[("a", 1)]);
        let y = t(&[("b", 2)]);
        assert_eq!(x.concat(&y).unwrap(), t(&[("a", 1), ("b", 2)]));
    }

    #[test]
    fn concat_conflict_is_an_error() {
        let x = t(&[("a", 1)]);
        let y = t(&[("a", 2)]);
        assert_eq!(
            x.concat(&y).unwrap_err(),
            ValueError::DuplicateField(name("a"))
        );
    }

    #[test]
    fn rename_moves_value_to_new_attribute() {
        let x = t(&[("a", 1), ("b", 2)]);
        let y = x.rename("a", &name("z")).unwrap();
        assert_eq!(y, t(&[("b", 2), ("z", 1)]));
        assert!(x.rename("nope", &name("z")).is_err());
    }

    #[test]
    fn without_drops_attribute() {
        let x = t(&[("a", 1), ("b", 2)]);
        assert_eq!(x.without("a"), t(&[("b", 2)]));
        assert_eq!(x.without("zzz"), x);
    }

    #[test]
    fn display_is_paper_style() {
        let x = t(&[("a", 1), ("c", 0)]);
        assert_eq!(x.to_string(), "⟨a = 1, c = 0⟩");
    }
}

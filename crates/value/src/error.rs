//! Errors raised by value-level operations.

use crate::Name;
use std::fmt;

/// Errors produced by operations on [`crate::Value`]s.
///
/// These correspond to dynamic type errors of the ADL operators: the static
/// type checker prevents them on well-typed plans, but the evaluator is
/// defensive so that hand-built plans fail loudly instead of silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// A tuple operation was applied to a non-tuple value.
    NotATuple(String),
    /// A set operation was applied to a non-set value.
    NotASet(String),
    /// Tuple field lookup failed.
    NoSuchField { field: Name, tuple: String },
    /// Tuple concatenation `x ∘ y` found the same attribute on both sides.
    ///
    /// The paper assumes "no attribute naming conflicts occur" (§3); we
    /// check instead of assuming.
    DuplicateField(Name),
    /// An arithmetic or comparison operator was applied to incompatible
    /// operand values.
    TypeMismatch {
        op: &'static str,
        lhs: String,
        rhs: String,
    },
    /// Aggregate applied to an empty set where undefined (min/max/avg).
    EmptyAggregate(&'static str),
    /// Division by zero in an arithmetic expression.
    DivisionByZero,
    /// Integer overflow in an arithmetic expression.
    Overflow(&'static str),
    /// Malformed bytes reached the binary [`crate::codec`] decoder
    /// (truncated spill record, unknown tag, invalid UTF-8).
    Codec(String),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::NotATuple(v) => write!(f, "value is not a tuple: {v}"),
            ValueError::NotASet(v) => write!(f, "value is not a set: {v}"),
            ValueError::NoSuchField { field, tuple } => {
                write!(f, "no field `{field}` in tuple {tuple}")
            }
            ValueError::DuplicateField(n) => {
                write!(f, "duplicate attribute `{n}` in tuple concatenation")
            }
            ValueError::TypeMismatch { op, lhs, rhs } => {
                write!(f, "type mismatch for `{op}`: {lhs} vs {rhs}")
            }
            ValueError::EmptyAggregate(a) => {
                write!(f, "aggregate `{a}` applied to an empty set")
            }
            ValueError::DivisionByZero => write!(f, "division by zero"),
            ValueError::Overflow(op) => write!(f, "integer overflow in `{op}`"),
            ValueError::Codec(msg) => write!(f, "malformed encoded value: {msg}"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;

    #[test]
    fn display_is_informative() {
        let e = ValueError::NoSuchField {
            field: name("sname"),
            tuple: "⟨a = 1⟩".into(),
        };
        assert!(e.to_string().contains("sname"));
        let e = ValueError::TypeMismatch {
            op: "+",
            lhs: "1".into(),
            rhs: "\"x\"".into(),
        };
        assert!(e.to_string().contains('+'));
        assert!(ValueError::DivisionByZero.to_string().contains("zero"));
    }
}

//! Property-based laws of the canonical set and tuple representation.
//!
//! The rewrite rules assume ordinary set algebra (e.g. Table 1's
//! expansions lean on `⊆` antisymmetry and `∪/∩` lattice laws); these
//! properties pin the [`oodb_value::Set`] implementation to that algebra,
//! and check the `Eq`/`Ord`/`Hash` consistency the hash operators need.

use oodb_value::{Set, Tuple, Value};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn int_set() -> impl Strategy<Value = Set> {
    proptest::collection::vec(-20i64..20, 0..12)
        .prop_map(|v| Set::from_values(v.into_iter().map(Value::Int).collect()))
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn union_laws(a in int_set(), b in int_set(), c in int_set()) {
        // commutativity, associativity, idempotence, identity
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.union(&Set::empty()), a.clone());
    }

    #[test]
    fn intersection_laws(a in int_set(), b in int_set(), c in int_set()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(
            a.intersect(&b).intersect(&c),
            a.intersect(&b.intersect(&c))
        );
        prop_assert_eq!(a.intersect(&a), a.clone());
        prop_assert!(a.intersect(&Set::empty()).is_empty());
        // absorption
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
    }

    #[test]
    fn difference_laws(a in int_set(), b in int_set()) {
        let d = a.difference(&b);
        prop_assert!(d.subset_eq(&a));
        prop_assert!(d.intersect(&b).is_empty());
        prop_assert_eq!(d.union(&a.intersect(&b)), a.clone());
    }

    #[test]
    fn subset_partial_order(a in int_set(), b in int_set(), c in int_set()) {
        prop_assert!(a.subset_eq(&a));
        if a.subset_eq(&b) && b.subset_eq(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        if a.subset_eq(&b) && b.subset_eq(&c) {
            prop_assert!(a.subset_eq(&c));
        }
        // ⊂ is ⊆ ∧ ≠
        prop_assert_eq!(a.subset(&b), a.subset_eq(&b) && a != b);
        prop_assert_eq!(a.superset_eq(&b), b.subset_eq(&a));
    }

    #[test]
    fn membership_consistent_with_iteration(a in int_set(), x in -25i64..25) {
        let v = Value::Int(x);
        prop_assert_eq!(a.contains(&v), a.iter().any(|e| e == &v));
    }

    #[test]
    fn construction_order_insensitive(mut v in proptest::collection::vec(-20i64..20, 0..12)) {
        let s1 = Set::from_values(v.iter().map(|i| Value::Int(*i)).collect());
        v.reverse();
        let s2 = Set::from_values(v.iter().map(|i| Value::Int(*i)).collect());
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(hash_of(&s1), hash_of(&s2));
        prop_assert_eq!(s1.cmp(&s2), std::cmp::Ordering::Equal);
    }

    #[test]
    fn flatten_distributes_over_union(a in int_set(), b in int_set()) {
        let nested = Set::from_values(vec![
            Value::Set(a.clone()),
            Value::Set(b.clone()),
        ]);
        prop_assert_eq!(nested.flatten().unwrap(), a.union(&b));
    }

    #[test]
    fn tuple_concat_commutes_on_disjoint_names(x in -50i64..50, y in -50i64..50) {
        let a = Tuple::from_pairs([("left", Value::Int(x))]);
        let b = Tuple::from_pairs([("right", Value::Int(y))]);
        prop_assert_eq!(a.concat(&b).unwrap(), b.concat(&a).unwrap());
    }

    #[test]
    fn tuple_except_is_idempotent(x in -50i64..50, y in -50i64..50) {
        let t = Tuple::from_pairs([("a", Value::Int(x))]);
        let once = t.except(&[("b".into(), Value::Int(y))]).unwrap();
        let twice = once.except(&[("b".into(), Value::Int(y))]).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn eq_implies_same_hash(a in int_set(), b in int_set()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
        // and Ord agrees with Eq
        prop_assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
    }
}

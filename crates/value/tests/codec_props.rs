//! Round-trip property tests of the binary [`oodb_value::codec`].
//!
//! The spill subsystem persists every intermediate row through this
//! encoding; a single non-round-tripping value would silently corrupt a
//! grace-hash partition or a sort run. The strategy generates arbitrarily
//! nested tuples/sets over every atom constructor, with floats drawn from
//! a pool that includes the edge cases (`NaN`, `±0.0`, infinities,
//! subnormals).

use oodb_value::codec::{decode, decode_prefix, encode, encode_into, encoded_size};
use oodb_value::{Oid, Value};
use proptest::prelude::*;

/// Floats including the representational edge cases. `Value::float` goes
/// through `F64::new`, which canonicalises `-0.0` and NaN — exactly the
/// values the codec must preserve as *equal*, not as identical bits.
fn float_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1e12f64..1e12).prop_map(Value::float),
        proptest::sample::select(vec![
            Value::float(0.0),
            Value::float(-0.0),
            Value::float(f64::NAN),
            Value::float(-f64::NAN),
            Value::float(f64::INFINITY),
            Value::float(f64::NEG_INFINITY),
            Value::float(f64::MIN_POSITIVE),
            Value::float(f64::MIN_POSITIVE / 4.0), // subnormal
            Value::float(f64::MAX),
            Value::float(f64::EPSILON),
        ]),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        float_strategy(),
        (0u64..4000).prop_map(|n| Value::str(&format!("s-{n}-\"✓\""))),
        (900101i64..991231).prop_map(Value::Date),
        any::<u64>().prop_map(|o| Value::Oid(Oid(o))),
    ]
}

/// Arbitrary values nesting tuples and sets up to four levels deep.
fn value_strategy() -> BoxedStrategy<Value> {
    atom_strategy().boxed().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            inner.clone(),
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::set),
            proptest::collection::vec(inner, 0..5).prop_map(|fields| {
                Value::tuple(
                    fields
                        .into_iter()
                        .enumerate()
                        .map(|(i, v)| (["a", "b", "c", "d", "e"][i], v)),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// decode ∘ encode = id (up to value equality), and `encoded_size`
    /// is exact.
    #[test]
    fn encode_decode_roundtrip(v in value_strategy()) {
        let bytes = encode(&v);
        prop_assert_eq!(bytes.len(), encoded_size(&v), "size mismatch for {}", v);
        let back = decode(&bytes).expect("well-formed bytes decode");
        prop_assert_eq!(&back, &v, "roundtrip changed the value");
        // a second trip is exactly stable (canonical encoding)
        prop_assert_eq!(encode(&back), bytes);
    }

    /// Concatenated encodings decode back in sequence — the spill-file
    /// record framing depends on values being self-delimiting.
    #[test]
    fn concatenated_values_are_self_delimiting(
        vs in proptest::collection::vec(value_strategy(), 1..6)
    ) {
        let mut buf = Vec::new();
        for v in &vs {
            encode_into(v, &mut buf);
        }
        let mut pos = 0;
        for v in &vs {
            let (got, used) = decode_prefix(&buf[pos..]).expect("prefix decodes");
            prop_assert_eq!(&got, v);
            pos += used;
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// Truncating a well-formed encoding anywhere yields an error, never
    /// a wrong value or a panic.
    #[test]
    fn truncation_is_detected(v in value_strategy(), cut in 0.0f64..1.0) {
        let bytes = encode(&v);
        let at = ((bytes.len() as f64) * cut) as usize;
        if at < bytes.len() {
            prop_assert!(decode(&bytes[..at]).is_err(), "truncated at {} of {}", at, bytes.len());
        }
    }
}

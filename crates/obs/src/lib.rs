//! # Observability primitives
//!
//! The engine's [`Stats`] counters say *what work* a query did; this
//! crate supplies the layer that says *where the time went* and makes it
//! scrapeable:
//!
//! * [`Counter`] / [`Gauge`] — lock-free monotonic and point-in-time
//!   cells.
//! * [`Histogram`] — log-bucketed (powers of two of a microsecond)
//!   latency histogram with `p50/p90/p99/max` summaries and
//!   [`Histogram::quantile_bounds`]: the bucket bracketing a quantile,
//!   so a test can assert a measured latency provably lies inside the
//!   histogram's answer instead of comparing two noisy wall clocks.
//! * [`Registry`] — named metric families rendered in [Prometheus text
//!   exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//!   by [`Registry::render`].
//! * [`SpanRecorder`] / [`QueryTrace`] / [`TraceLog`] — a per-query span
//!   timeline (parse → translate → plan → admission → execute → …) in a
//!   fixed-size ring buffer, with a separate slow-query log that keeps
//!   the full span tree plus EXPLAIN text for queries over a threshold.
//!
//! Everything here is dependency-free and engine-agnostic; the serving
//! layer (`oodb-server`) owns the wiring.
//!
//! [`Stats`]: https://docs.rs (the `oodb_engine::Stats` counters)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// Counters and gauges.

/// A monotonic counter (wraps an `AtomicU64`; cheap to clone and share).
#[derive(Debug, Default, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge (set, not accumulated).
#[derive(Debug, Default, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Log-bucketed histogram.

/// Bucket count: bucket `i` holds samples in `(2^(i-1), 2^i]`
/// microseconds (bucket 0 holds `(0, 1]` µs and zero), bucket 39 tops
/// out above nine minutes — far past any latency this engine serves.
const BUCKETS: usize = 40;

/// A log-bucketed latency histogram over microsecond samples.
///
/// Buckets are powers of two of a microsecond, so recording costs one
/// `leading_zeros` plus two atomic adds and the relative error of any
/// quantile read is bounded by the bucket ratio (2×). Alongside the
/// buckets it tracks the exact count, sum and max, so `_sum`/`_count`
/// in the Prometheus rendering are exact even though the quantiles are
/// bucket bounds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            (64 - (us - 1).leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Upper bound (inclusive) of bucket `i`, in microseconds.
    fn bucket_upper_us(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one sample of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] sample.
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_us(d.as_micros() as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Exact maximum sample, in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The `(lower, upper]` microsecond bounds of the bucket containing
    /// the `q`-quantile (`0.0 ..= 1.0`), or `None` when empty. Every
    /// recorded sample at that quantile provably lies inside the
    /// returned interval — the deterministic "bracketing" contract the
    /// acceptance tests assert instead of comparing two noisy clocks.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // rank of the q-quantile sample, 1-based, nearest-rank method
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                let lower = if i == 0 {
                    0
                } else {
                    Self::bucket_upper_us(i - 1)
                };
                return Some((lower, Self::bucket_upper_us(i)));
            }
        }
        None
    }

    /// The upper bucket bound of the `q`-quantile, in milliseconds
    /// (0.0 when empty) — the `p50/p90/p99` summary figure.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile_bounds(q)
            .map(|(_, hi)| hi as f64 / 1e3)
            .unwrap_or(0.0)
    }

    /// `(count, cumulative_count)` per bucket with its upper bound in
    /// microseconds — the raw data behind the Prometheus `_bucket`
    /// series, exposed for tests.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(BUCKETS);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.buckets[i].load(Ordering::Relaxed);
            out.push((Self::bucket_upper_us(i), cum));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Registry + Prometheus text exposition.

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: String,
    help: String,
    metric: Metric,
}

/// A registry of named metric families, rendered in registration order
/// by [`Registry::render`]. Handles returned by the `register_*`
/// methods are cheap clones sharing the registered cell.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a counter family; returns the shared handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::new();
        self.families.lock().unwrap().push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Counter(c.clone()),
        });
        c
    }

    /// Registers a gauge family; returns the shared handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::new();
        self.families.lock().unwrap().push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Gauge(g.clone()),
        });
        g
    }

    /// Registers a histogram family; returns the shared handle.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.families.lock().unwrap().push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Renders every family in Prometheus text exposition format.
    /// Histogram bucket bounds are emitted in the family's unit
    /// (milliseconds for `*_ms` families), `_sum`/`_count` are exact.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for f in self.families.lock().unwrap().iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            match &f.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", f.name);
                    let _ = writeln!(out, "{} {}", f.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", f.name);
                    let _ = writeln!(out, "{} {}", f.name, g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", f.name);
                    // suppress empty trailing buckets: emit up to the
                    // highest non-empty bucket, then +Inf
                    let cum = h.cumulative_buckets();
                    let total = h.count();
                    let mut last_needed = 0usize;
                    for (i, (_, c)) in cum.iter().enumerate() {
                        if *c < total {
                            last_needed = i + 1;
                        }
                    }
                    for (upper_us, c) in cum.iter().take(last_needed + 1) {
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            f.name,
                            *upper_us as f64 / 1e3,
                            c
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", f.name, total);
                    let _ = writeln!(out, "{}_sum {}", f.name, h.sum_us() as f64 / 1e3);
                    let _ = writeln!(out, "{}_count {}", f.name, total);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Query-phase span traces.

/// One timed phase of a query. `depth` nests sub-phases under their
/// parent in renderings (`joinorder` inside `plan`); `start_us` is
/// relative to the query's start.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Phase name (`parse`, `plan`, `execute`, …).
    pub name: String,
    /// Nesting depth: 0 = top-level phase, 1 = sub-phase.
    pub depth: usize,
    /// Microseconds from query start to phase start.
    pub start_us: u64,
    /// Phase duration in microseconds.
    pub dur_us: u64,
}

/// The span timeline of one served query.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The query text (or a label for expression-level entry points).
    pub query: String,
    /// End-to-end serving time in microseconds.
    pub total_us: u64,
    /// Phases in start order.
    pub spans: Vec<SpanRec>,
    /// Whether the query failed (the error phase is the last span).
    pub error: bool,
    /// EXPLAIN text, retained only for slow-query-log entries.
    pub explain: Option<String>,
}

impl QueryTrace {
    /// A compact one-trace rendering: the query line, then one indented
    /// line per span.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query total_ms={:.3}{} {}",
            self.total_us as f64 / 1e3,
            if self.error { " error=1" } else { "" },
            self.query
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "  {}{} start_ms={:.3} dur_ms={:.3}",
                "  ".repeat(s.depth),
                s.name,
                s.start_us as f64 / 1e3,
                s.dur_us as f64 / 1e3
            );
        }
        out
    }
}

/// Records one query's spans against a single start instant.
#[derive(Debug)]
pub struct SpanRecorder {
    started: Instant,
    spans: Vec<SpanRec>,
}

impl SpanRecorder {
    /// Starts the query clock.
    pub fn start() -> Self {
        SpanRecorder {
            started: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Microseconds since the query started.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Times `f` as a top-level span named `name`.
    pub fn span<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.span_at(name, 0, f)
    }

    /// Times `f` as a span at `depth`.
    pub fn span_at<T>(&mut self, name: &str, depth: usize, f: impl FnOnce() -> T) -> T {
        let start_us = self.elapsed_us();
        let v = f();
        let dur_us = self.elapsed_us() - start_us;
        self.spans.push(SpanRec {
            name: name.to_string(),
            depth,
            start_us,
            dur_us,
        });
        v
    }

    /// Appends an already-measured span (for phases timed elsewhere,
    /// e.g. join-order enumeration inside the planner).
    pub fn push(&mut self, name: &str, depth: usize, start_us: u64, dur_us: u64) {
        self.spans.push(SpanRec {
            name: name.to_string(),
            depth,
            start_us,
            dur_us,
        });
    }

    /// Finishes the trace.
    pub fn finish(self, query: impl Into<String>, error: bool) -> QueryTrace {
        let total_us = self.started.elapsed().as_micros() as u64;
        QueryTrace {
            query: query.into(),
            total_us,
            spans: self.spans,
            error,
            explain: None,
        }
    }
}

/// A fixed-capacity ring buffer of recent [`QueryTrace`]s plus a
/// separate slow-query log. Ordinary entries drop their EXPLAIN text;
/// entries over the slow threshold keep it (that's the whole point of a
/// slow-query log: everything needed to diagnose the query after the
/// fact).
#[derive(Debug)]
pub struct TraceLog {
    capacity: usize,
    slow_capacity: usize,
    inner: Mutex<TraceLogInner>,
}

#[derive(Debug, Default)]
struct TraceLogInner {
    recent: std::collections::VecDeque<QueryTrace>,
    slow: std::collections::VecDeque<QueryTrace>,
}

impl TraceLog {
    /// A log retaining the last `capacity` traces and the last
    /// `slow_capacity` slow-query traces.
    pub fn new(capacity: usize, slow_capacity: usize) -> Self {
        TraceLog {
            capacity,
            slow_capacity,
            inner: Mutex::new(TraceLogInner::default()),
        }
    }

    /// Records `trace`; when `slow` it also enters the slow-query log
    /// (with whatever `explain` text the caller attached).
    pub fn record(&self, trace: QueryTrace, slow: bool) {
        let mut inner = self.inner.lock().unwrap();
        if slow {
            if inner.slow.len() == self.slow_capacity {
                inner.slow.pop_front();
            }
            inner.slow.push_back(trace.clone());
        }
        let mut recent = trace;
        recent.explain = None; // the ring buffer stays lean
        if inner.recent.len() == self.capacity {
            inner.recent.pop_front();
        }
        inner.recent.push_back(recent);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.inner.lock().unwrap().recent.iter().cloned().collect()
    }

    /// The retained slow-query traces (EXPLAIN attached), oldest first.
    pub fn slow(&self) -> Vec<QueryTrace> {
        self.inner.lock().unwrap().slow.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_bracket_every_sample() {
        let h = Histogram::new();
        for us in [1u64, 3, 900, 1000, 1024, 1025, 70_000] {
            h.observe_us(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us(), 70_000);
        // every quantile's bounds contain the nearest-rank sample
        let mut sorted = [1u64, 3, 900, 1000, 1024, 1025, 70_000];
        sorted.sort();
        for (i, q) in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0].iter().enumerate() {
            let (lo, hi) = h.quantile_bounds(*q).unwrap();
            let rank = ((q * 7.0).ceil() as usize).clamp(1, 7);
            let sample = sorted[rank - 1];
            assert!(
                lo < sample || (sample <= 1 && lo == 0),
                "q[{i}]={q}: lower bound {lo} not below sample {sample}"
            );
            assert!(
                hi >= sample,
                "q[{i}]={q}: upper bound {hi} < sample {sample}"
            );
        }
    }

    #[test]
    fn histogram_bucket_edges_are_exclusive_inclusive() {
        // (2^(i-1), 2^i]: 1024 lands in the le=1024 bucket, 1025 above it
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = Registry::new();
        let c = r.counter("oodb_queries_total", "Queries served.");
        let g = r.gauge("oodb_pool_in_use_bytes", "Live grant bytes.");
        let h = r.histogram("oodb_query_latency_ms", "Per-query latency.");
        c.add(3);
        g.set(42);
        h.observe_us(1500);
        let text = r.render();
        assert!(text.contains("# TYPE oodb_queries_total counter"), "{text}");
        assert!(text.contains("oodb_queries_total 3"), "{text}");
        assert!(
            text.contains("# TYPE oodb_pool_in_use_bytes gauge"),
            "{text}"
        );
        assert!(text.contains("oodb_pool_in_use_bytes 42"), "{text}");
        assert!(
            text.contains("# TYPE oodb_query_latency_ms histogram"),
            "{text}"
        );
        // 1500 µs = le 2.048 ms bucket; +Inf and exact sum/count present
        assert!(
            text.contains("oodb_query_latency_ms_bucket{le=\"2.048\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("oodb_query_latency_ms_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("oodb_query_latency_ms_sum 1.5"), "{text}");
        assert!(text.contains("oodb_query_latency_ms_count 1"), "{text}");
    }

    #[test]
    fn trace_log_is_a_ring_and_slow_entries_keep_explain() {
        let log = TraceLog::new(2, 2);
        for i in 0..3 {
            let mut rec = SpanRecorder::start();
            rec.span("parse", || {});
            let mut t = rec.finish(format!("q{i}"), false);
            t.explain = Some("Scan X".into());
            log.record(t, i == 2);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 2, "ring capacity enforced");
        assert_eq!(recent[0].query, "q1");
        assert!(recent[1].explain.is_none(), "ring entries drop explain");
        let slow = log.slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].explain.as_deref(), Some("Scan X"));
        assert!(slow[0].render().contains("parse"));
    }
}

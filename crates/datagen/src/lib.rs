//! # Synthetic supplier–part–delivery databases
//!
//! Deterministic, parameterized instance generation for benchmarks and
//! property tests. The generator scales the paper's §2 schema: suppliers
//! with clustered set-valued `parts` attributes, a flat `PART` extension,
//! and deliveries with nested `supply` sets — plus controlled anomaly
//! injection (empty part sets, dangling references) to exercise the
//! dangling-tuple cases of §5.2.2 and Example Query 4.

use oodb_catalog::fixtures::supplier_part_catalog;
use oodb_catalog::stats::{AttrStats, CatalogStats, TableStats};
use oodb_catalog::Database;
use oodb_value::{Name, Oid, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of parts.
    pub parts: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of deliveries.
    pub deliveries: usize,
    /// Mean number of parts per supplier (uniform in `1..=2·mean`).
    pub parts_per_supplier: usize,
    /// Fraction of suppliers with an **empty** `parts` set (the dangling
    /// grouping tuples of Figure 2).
    pub empty_supplier_fraction: f64,
    /// Fraction of suppliers carrying one **dangling** part pointer
    /// (Example Query 4's referential integrity violators).
    pub dangling_fraction: f64,
    /// Fraction of parts that are red (Example Query 5's selectivity).
    pub red_fraction: f64,
    /// Mean supply lines per delivery.
    pub supply_per_delivery: usize,
    /// RNG seed — same seed, same database.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            parts: 1_000,
            suppliers: 500,
            deliveries: 500,
            parts_per_supplier: 8,
            empty_supplier_fraction: 0.05,
            dangling_fraction: 0.02,
            red_fraction: 0.2,
            supply_per_delivery: 4,
            seed: 0xD0DB,
        }
    }
}

impl GenConfig {
    /// A configuration scaled to roughly `n` objects total, keeping the
    /// default ratios (used by benchmark sweeps).
    pub fn scaled(n: usize) -> GenConfig {
        let parts = (n / 2).max(4);
        GenConfig {
            parts,
            suppliers: (n / 4).max(2),
            deliveries: (n / 4).max(2),
            ..GenConfig::default()
        }
    }

    /// Statistics [`generate`] would produce, synthesized from the
    /// configuration alone — no database needs to exist. Lets a planner
    /// cost plans for a database that is *about* to be generated (or is
    /// too large to scan); values are expectations, not exact counts.
    pub fn synthesized_stats(&self) -> CatalogStats {
        let mut stats = CatalogStats::new();
        let scalar = |d: u64| AttrStats {
            distinct: d.max(1),
            avg_set_len: None,
        };
        let set = |d: u64, avg: f64| AttrStats {
            distinct: d.max(1),
            avg_set_len: Some(avg.max(0.0)),
        };
        let parts = self.parts as u64;
        let suppliers = self.suppliers as u64;
        let deliveries = self.deliveries as u64;

        let mut part = TableStats {
            rows: parts,
            attrs: Default::default(),
            // fixed-schema flat tuple: oid + short name + int + color
            avg_row_bytes: Some(64.0),
        };
        part.attrs.insert(Name::from("pid"), scalar(parts));
        part.attrs.insert(Name::from("pname"), scalar(parts));
        part.attrs
            .insert(Name::from("price"), scalar(parts.min(1_000)));
        part.attrs
            .insert(Name::from("color"), scalar(COLORS.len() as u64));
        stats.set_table(Name::from("PART"), part);

        // parts-per-supplier is uniform in 1..=2·mean, so its expectation
        // is (1 + 2·mean)/2, discounted by the empty-set fraction.
        let pps = (1.0 + 2.0 * self.parts_per_supplier.max(1) as f64) / 2.0;
        let avg_parts = pps * (1.0 - self.empty_supplier_fraction.clamp(0.0, 1.0))
            + self.dangling_fraction.clamp(0.0, 1.0);
        let referenced = (suppliers as f64 * avg_parts).min(parts as f64) as u64;
        let mut supplier = TableStats {
            rows: suppliers,
            attrs: Default::default(),
            // base tuple plus ~9 encoded bytes per part reference
            avg_row_bytes: Some(64.0 + 9.0 * avg_parts),
        };
        supplier.attrs.insert(Name::from("eid"), scalar(suppliers));
        supplier
            .attrs
            .insert(Name::from("sname"), scalar(suppliers));
        supplier
            .attrs
            .insert(Name::from("parts"), set(referenced, avg_parts));
        stats.set_table(Name::from("SUPPLIER"), supplier);

        let spd = (1.0 + 2.0 * self.supply_per_delivery.max(1) as f64) / 2.0;
        let mut delivery = TableStats {
            rows: deliveries,
            attrs: Default::default(),
            // base tuple plus a ~40-byte supply line per element
            avg_row_bytes: Some(64.0 + 40.0 * spd),
        };
        delivery.attrs.insert(Name::from("did"), scalar(deliveries));
        delivery
            .attrs
            .insert(Name::from("supplier"), scalar(deliveries.min(suppliers)));
        delivery.attrs.insert(
            Name::from("supply"),
            // supply elements are (part, quantity) tuples — nearly all
            // distinct, so the element domain tracks the total count
            set((deliveries as f64 * spd) as u64, spd),
        );
        delivery.attrs.insert(Name::from("date"), scalar(28));
        stats.set_table(Name::from("DELIVERY"), delivery);
        stats
    }
}

/// Part oid base (suppliers start at `SUPPLIER_BASE`, parts at `PART_BASE`, …).
pub const PART_BASE: u64 = 1_000_000;
/// Supplier oid base.
pub const SUPPLIER_BASE: u64 = 2_000_000;
/// Delivery oid base.
pub const DELIVERY_BASE: u64 = 3_000_000;
/// Oid used for injected dangling part pointers (never allocated).
pub const DANGLING_OID: u64 = 9_999_999;

const COLORS: [&str; 5] = ["red", "blue", "green", "black", "white"];

/// Generates a database according to `config`.
pub fn generate(config: &GenConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new(supplier_part_catalog()).expect("catalog is closed");

    // Parts: the flat "build" table.
    for i in 0..config.parts {
        let color = if rng.gen_bool(config.red_fraction.clamp(0.0, 1.0)) {
            "red"
        } else {
            COLORS[1 + rng.gen_range(0..COLORS.len() - 1)]
        };
        db.insert(
            "PART",
            Tuple::from_pairs([
                ("pid", Value::Oid(Oid(PART_BASE + i as u64))),
                ("pname", Value::str(&format!("part-{i}"))),
                ("price", Value::Int(rng.gen_range(1..=1_000))),
                ("color", Value::str(color)),
            ]),
        )
        .expect("generated part conforms");
    }

    // Suppliers with clustered set-valued `parts`.
    for i in 0..config.suppliers {
        let empty = rng.gen_bool(config.empty_supplier_fraction.clamp(0.0, 1.0));
        let mut part_refs: Vec<Value> = Vec::new();
        if !empty && config.parts > 0 {
            let k = rng.gen_range(1..=config.parts_per_supplier.max(1) * 2);
            for _ in 0..k {
                let p = rng.gen_range(0..config.parts) as u64;
                part_refs.push(Value::Oid(Oid(PART_BASE + p)));
            }
            if rng.gen_bool(config.dangling_fraction.clamp(0.0, 1.0)) {
                part_refs.push(Value::Oid(Oid(DANGLING_OID)));
            }
        }
        db.insert(
            "SUPPLIER",
            Tuple::from_pairs([
                ("eid", Value::Oid(Oid(SUPPLIER_BASE + i as u64))),
                ("sname", Value::str(&format!("supplier-{i}"))),
                ("parts", Value::set(part_refs)),
            ]),
        )
        .expect("generated supplier conforms");
    }

    // Deliveries with nested supply sets.
    for i in 0..config.deliveries {
        let supplier = rng.gen_range(0..config.suppliers.max(1)) as u64;
        let k = rng.gen_range(1..=config.supply_per_delivery.max(1) * 2);
        let mut supply = Vec::with_capacity(k);
        for _ in 0..k {
            let p = rng.gen_range(0..config.parts.max(1)) as u64;
            supply.push(Value::tuple([
                ("part", Value::Oid(Oid(PART_BASE + p))),
                ("quantity", Value::Int(rng.gen_range(1..=500))),
            ]));
        }
        let date = 940100 + rng.gen_range(1i64..=28);
        db.insert(
            "DELIVERY",
            Tuple::from_pairs([
                ("did", Value::Oid(Oid(DELIVERY_BASE + i as u64))),
                ("supplier", Value::Oid(Oid(SUPPLIER_BASE + supplier))),
                ("supply", Value::set(supply)),
                ("date", Value::Date(date)),
            ]),
        )
        .expect("generated delivery conforms");
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = GenConfig {
            parts: 50,
            suppliers: 20,
            deliveries: 10,
            ..Default::default()
        };
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.object_count(), b.object_count());
        let sa = a.table("SUPPLIER").unwrap();
        let sb = b.table("SUPPLIER").unwrap();
        for (ra, rb) in sa.rows().zip(sb.rows()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let c1 = GenConfig {
            parts: 50,
            suppliers: 20,
            deliveries: 10,
            seed: 1,
            ..Default::default()
        };
        let c2 = GenConfig {
            seed: 2,
            ..c1.clone()
        };
        let a = generate(&c1);
        let b = generate(&c2);
        let differs = a
            .table("SUPPLIER")
            .unwrap()
            .rows()
            .zip(b.table("SUPPLIER").unwrap().rows())
            .any(|(x, y)| x != y);
        assert!(differs);
    }

    #[test]
    fn cardinalities_match_config() {
        let c = GenConfig {
            parts: 123,
            suppliers: 45,
            deliveries: 6,
            ..Default::default()
        };
        let db = generate(&c);
        assert_eq!(db.table("PART").unwrap().len(), 123);
        assert_eq!(db.table("SUPPLIER").unwrap().len(), 45);
        assert_eq!(db.table("DELIVERY").unwrap().len(), 6);
    }

    #[test]
    fn anomalies_injected_when_requested() {
        let c = GenConfig {
            parts: 100,
            suppliers: 200,
            deliveries: 0,
            empty_supplier_fraction: 0.5,
            dangling_fraction: 0.5,
            ..Default::default()
        };
        let db = generate(&c);
        let empties = db
            .table("SUPPLIER")
            .unwrap()
            .rows()
            .filter(|r| r.get("parts").unwrap().as_set().unwrap().is_empty())
            .count();
        assert!(empties > 30, "expected many empty suppliers, got {empties}");
        let dangling = db
            .table("SUPPLIER")
            .unwrap()
            .rows()
            .filter(|r| {
                r.get("parts")
                    .unwrap()
                    .as_set()
                    .unwrap()
                    .contains(&Value::Oid(Oid(DANGLING_OID)))
            })
            .count();
        assert!(dangling > 20, "expected dangling refs, got {dangling}");
        assert!(db.deref("Part", Oid(DANGLING_OID)).is_none());
    }

    #[test]
    fn no_anomalies_when_disabled() {
        let c = GenConfig {
            parts: 50,
            suppliers: 50,
            deliveries: 10,
            empty_supplier_fraction: 0.0,
            dangling_fraction: 0.0,
            ..Default::default()
        };
        let db = generate(&c);
        for r in db.table("SUPPLIER").unwrap().rows() {
            let parts = r.get("parts").unwrap().as_set().unwrap();
            assert!(!parts.is_empty());
            assert!(!parts.contains(&Value::Oid(Oid(DANGLING_OID))));
        }
    }

    #[test]
    fn synthesized_stats_track_collected_stats() {
        let c = GenConfig::scaled(400);
        let synthesized = c.synthesized_stats();
        let collected = CatalogStats::from_database(&generate(&c));
        // cardinalities are exact
        for t in ["PART", "SUPPLIER", "DELIVERY"] {
            assert_eq!(synthesized.cardinality(t), collected.cardinality(t), "{t}");
        }
        // distinct counts and set sizes are expectations — within 2×
        let close = |a: f64, b: f64| a <= 2.0 * b && b <= 2.0 * a;
        assert!(close(
            synthesized.distinct("PART", "color").unwrap() as f64,
            collected.distinct("PART", "color").unwrap() as f64
        ));
        assert!(close(
            synthesized.avg_set_len("SUPPLIER", "parts").unwrap(),
            collected.avg_set_len("SUPPLIER", "parts").unwrap()
        ));
        assert!(close(
            synthesized.distinct("SUPPLIER", "parts").unwrap() as f64,
            collected.distinct("SUPPLIER", "parts").unwrap() as f64
        ));
        assert!(close(
            synthesized.avg_set_len("DELIVERY", "supply").unwrap(),
            collected.avg_set_len("DELIVERY", "supply").unwrap()
        ));
    }

    #[test]
    fn scaled_keeps_ratios() {
        let c = GenConfig::scaled(1000);
        assert_eq!(c.parts, 500);
        assert_eq!(c.suppliers, 250);
        let db = generate(&GenConfig {
            deliveries: 5,
            ..GenConfig::scaled(40)
        });
        assert_eq!(db.table("PART").unwrap().len(), 20);
    }
}

//! The OOSQL abstract syntax tree.
//!
//! OOSQL is an **orthogonal** language (paper §2): "the expressions in the
//! from- and select-clause of OOSQL may be arbitrary, also containing
//! other select-from-where (sfw) expressions (subqueries), provided they
//! are correctly typed. Predicates may also be built up from arbitrary
//! expressions including quantifiers forall and exists and set comparison
//! operators." The AST reflects that: [`OExpr::Sfw`] is just another
//! expression.

use oodb_value::{ArithOp, CmpOp, Name, SetCmpOp, Value};
use std::fmt;

/// A `from`-clause binding `var in expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The iteration variable.
    pub var: Name,
    /// The operand — a base table *or* any set-valued expression
    /// (set-valued attributes included).
    pub range: OExpr,
}

/// An OOSQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum OExpr {
    /// Literal constant.
    Lit(Value),
    /// Identifier: a bound variable or a base table name — resolved during
    /// type checking.
    Ident(Name),
    /// Path step `e.attr`; traverses tuple attributes and (implicitly)
    /// object references.
    Path(Box<OExpr>, Name),
    /// Tuple construction `(a := e₁, b := e₂)`.
    Tuple(Vec<(Name, OExpr)>),
    /// Set literal `{e₁, …}`.
    SetLit(Vec<OExpr>),
    /// Scalar comparison; `=`/`!=` double as set equality when the
    /// operands are sets (disambiguated by the type checker).
    Cmp(CmpOp, Box<OExpr>, Box<OExpr>),
    /// Set comparison with explicit keyword (`in`, `subset`, `subseteq`,
    /// `supset`, `supseteq`, `contains`, and their negations).
    SetCmp(SetCmpOp, Box<OExpr>, Box<OExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<OExpr>, Box<OExpr>),
    /// Unary minus.
    Neg(Box<OExpr>),
    /// `e₁ and e₂`
    And(Box<OExpr>, Box<OExpr>),
    /// `e₁ or e₂`
    Or(Box<OExpr>, Box<OExpr>),
    /// `not e`
    Not(Box<OExpr>),
    /// `union` / `intersect` / `minus`.
    SetBin(SetBinOp, Box<OExpr>, Box<OExpr>),
    /// Quantifier `exists x in e : p` / `forall x in e : p`.
    Quant {
        /// True for `exists`, false for `forall`.
        exists: bool,
        /// Bound variable.
        var: Name,
        /// Range (set-valued expression).
        range: Box<OExpr>,
        /// Quantified predicate.
        pred: Box<OExpr>,
    },
    /// Aggregate `count(e)`, `sum(e)`, ….
    Agg(AggKind, Box<OExpr>),
    /// `flatten(e)` — multiple union.
    Flatten(Box<OExpr>),
    /// `date(yyyymmdd)` literal constructor.
    DateLit(Box<OExpr>),
    /// A select-from-where block.
    Sfw {
        /// The select-clause expression (arbitrary, may contain subqueries
        /// — nesting in the select-clause, Example Query 1).
        select: Box<OExpr>,
        /// The from-clause bindings (multiple bindings denote nested
        /// iteration, left to right).
        bindings: Vec<Binding>,
        /// The optional where-clause predicate (nesting in the
        /// where-clause, Example Query 3).
        where_: Option<Box<OExpr>>,
    },
    /// `with v as (e₁) e₂` — the paper's `with` construct "enabling local
    /// definitions, used for reasons of convenience" (§5.1).
    With {
        /// Bound name.
        var: Name,
        /// Definition.
        value: Box<OExpr>,
        /// Body in which `var` is visible.
        body: Box<OExpr>,
    },
}

/// Binary set operators in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetBinOp {
    /// `union`
    Union,
    /// `intersect`
    Intersect,
    /// `minus`
    Minus,
}

/// Aggregate kinds in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `count`
    Count,
    /// `sum`
    Sum,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `avg`
    Avg,
}

impl AggKind {
    /// Source spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Avg => "avg",
        }
    }
}

impl fmt::Display for OExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OExpr::Lit(v) => {
                // parenthesize negative numerics: `-1.s` would re-parse as
                // `-(1.s)`, and `1 - -2` needs the space-free form kept sane
                let negative = matches!(v, Value::Int(i) if *i < 0)
                    || matches!(v, Value::Float(x) if x.get() < 0.0);
                if negative {
                    write!(f, "({v})")
                } else {
                    write!(f, "{v}")
                }
            }
            OExpr::Ident(n) => write!(f, "{n}"),
            OExpr::Path(e, a) => write!(f, "{e}.{a}"),
            OExpr::Tuple(fields) => {
                write!(f, "(")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} := {e}")?;
                }
                write!(f, ")")
            }
            OExpr::SetLit(es) => {
                write!(f, "{{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            OExpr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {sym} {b})")
            }
            OExpr::SetCmp(op, a, b) => {
                let kw = match op {
                    SetCmpOp::In => "in",
                    SetCmpOp::NotIn => "not in",
                    SetCmpOp::Subset => "subset",
                    SetCmpOp::SubsetEq => "subseteq",
                    SetCmpOp::SetEq => "=",
                    SetCmpOp::SetNe => "!=",
                    SetCmpOp::SupersetEq => "supseteq",
                    SetCmpOp::Superset => "supset",
                    SetCmpOp::Contains => "contains",
                    SetCmpOp::NotContains => "not contains",
                };
                write!(f, "({a} {kw} {b})")
            }
            OExpr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            OExpr::Neg(e) => write!(f, "-{e}"),
            OExpr::And(a, b) => write!(f, "({a} and {b})"),
            OExpr::Or(a, b) => write!(f, "({a} or {b})"),
            OExpr::Not(e) => write!(f, "(not {e})"),
            OExpr::SetBin(op, a, b) => {
                let kw = match op {
                    SetBinOp::Union => "union",
                    SetBinOp::Intersect => "intersect",
                    SetBinOp::Minus => "minus",
                };
                write!(f, "({a} {kw} {b})")
            }
            OExpr::Quant {
                exists,
                var,
                range,
                pred,
            } => {
                // self-parenthesized: the predicate extends maximally to
                // the right when parsing, so an unparenthesized quantifier
                // inside a larger expression would swallow its context
                let kw = if *exists { "exists" } else { "forall" };
                write!(f, "({kw} {var} in {range} : {pred})")
            }
            OExpr::Agg(k, e) => write!(f, "{}({e})", k.name()),
            OExpr::Flatten(e) => write!(f, "flatten({e})"),
            OExpr::DateLit(e) => write!(f, "date({e})"),
            OExpr::Sfw {
                select,
                bindings,
                where_,
            } => {
                // self-parenthesized for the same reason as quantifiers
                write!(f, "(select {select} from ")?;
                for (i, b) in bindings.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} in {}", b.var, b.range)?;
                }
                if let Some(w) = where_ {
                    write!(f, " where {w}")?;
                }
                write!(f, ")")
            }
            OExpr::With { var, value, body } => {
                write!(f, "(with {var} as ({value}) {body})")
            }
        }
    }
}

impl OExpr {
    /// Identifier helper.
    pub fn ident(s: &str) -> OExpr {
        OExpr::Ident(Name::from(s))
    }

    /// Path helper.
    pub fn path(self, attr: &str) -> OExpr {
        OExpr::Path(Box::new(self), Name::from(attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_visually() {
        let q = OExpr::Sfw {
            select: Box::new(OExpr::ident("s").path("sname")),
            bindings: vec![Binding {
                var: Name::from("s"),
                range: OExpr::ident("SUPPLIER"),
            }],
            where_: Some(Box::new(OExpr::Cmp(
                CmpOp::Eq,
                Box::new(OExpr::ident("s").path("sname")),
                Box::new(OExpr::Lit(Value::str("s1"))),
            ))),
        };
        assert_eq!(
            q.to_string(),
            "(select s.sname from s in SUPPLIER where (s.sname = \"s1\"))"
        );
    }
}

//! Hand-rolled OOSQL lexer.

use crate::error::ParseError;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenizes OOSQL source text.
///
/// Comments run from `--` to end of line. Whitespace is insignificant.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut tokens, TokenKind::LParen, &mut i),
            ')' => push(&mut tokens, TokenKind::RParen, &mut i),
            '{' => push(&mut tokens, TokenKind::LBrace, &mut i),
            '}' => push(&mut tokens, TokenKind::RBrace, &mut i),
            '[' => push(&mut tokens, TokenKind::LBracket, &mut i),
            ']' => push(&mut tokens, TokenKind::RBracket, &mut i),
            ',' => push(&mut tokens, TokenKind::Comma, &mut i),
            '.' => push(&mut tokens, TokenKind::Dot, &mut i),
            '+' => push(&mut tokens, TokenKind::Plus, &mut i),
            '-' => push(&mut tokens, TokenKind::Minus, &mut i),
            '*' => push(&mut tokens, TokenKind::Star, &mut i),
            '/' => push(&mut tokens, TokenKind::Slash, &mut i),
            '%' => push(&mut tokens, TokenKind::Percent, &mut i),
            '=' => push(&mut tokens, TokenKind::Eq, &mut i),
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        offset: i,
                    });
                    i += 2;
                } else {
                    push(&mut tokens, TokenKind::Colon, &mut i);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "unexpected character `!`"));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: i,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: i,
                    });
                    i += 2;
                }
                _ => push(&mut tokens, TokenKind::Lt, &mut i),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    push(&mut tokens, TokenKind::Gt, &mut i)
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new(start, "unterminated string")),
                        Some(&b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            // simple escapes: \" \\ \n \t
                            match bytes.get(i + 1) {
                                Some(&b'"') => s.push('"'),
                                Some(&b'\\') => s.push('\\'),
                                Some(&b'n') => s.push('\n'),
                                Some(&b't') => s.push('\t'),
                                other => {
                                    return Err(ParseError::new(
                                        i,
                                        format!("bad escape sequence {other:?}"),
                                    ))
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float =
                    i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v = text.parse::<f64>().map_err(|_| {
                        ParseError::new(start, format!("bad float literal `{text}`"))
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Float(v),
                        offset: start,
                    });
                } else {
                    let text = &src[start..i];
                    let v = text.parse::<i64>().map_err(|_| {
                        ParseError::new(start, format!("integer literal out of range `{text}`"))
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Int(v),
                        offset: start,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match Keyword::lookup(word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    tokens.push(Token { kind, offset: *i });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_simple_query() {
        let ks = kinds("select s from s in SUPPLIER");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("s".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("s".into()),
                TokenKind::Keyword(Keyword::In),
                TokenKind::Ident("SUPPLIER".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_and_literals() {
        let ks = kinds(r#"x.a <= 2 and y != "red" or z >= 1.5"#);
        assert!(ks.contains(&TokenKind::Le));
        assert!(ks.contains(&TokenKind::Ne));
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Str("red".into())));
        assert!(ks.contains(&TokenKind::Float(1.5)));
    }

    #[test]
    fn lexes_assign_vs_colon() {
        assert_eq!(
            kinds("a := 1 : 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Colon,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("1 -- this is a comment\n2");
        assert_eq!(
            ks,
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn minus_vs_comment() {
        assert_eq!(
            kinds("1 - 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Minus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b""#),
            vec![TokenKind::Str("a\"b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = lex("abc $").unwrap_err();
        assert_eq!(err.offset, 4);
        let err = lex(r#""unterminated"#).unwrap_err();
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn angle_bracket_ne() {
        assert_eq!(kinds("a <> b")[1], TokenKind::Ne);
    }
}

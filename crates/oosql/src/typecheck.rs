//! Type checking of OOSQL against a class catalog.
//!
//! Beyond validation, the checker defines two pieces of language
//! semantics that the translator depends on:
//!
//! * **identifier resolution** — a name is a bound variable if one is in
//!   scope, otherwise a base table (class extension);
//! * **implicit dereferencing** — a path step through an attribute of type
//!   `oid⟨C⟩` implicitly materializes the referenced `C` object (OOSQL's
//!   path expressions; the translator makes this explicit with ADL's
//!   `deref`, the materialize operator of §6.2).

use crate::ast::{AggKind, OExpr};
use crate::error::TypeError;
use oodb_catalog::Catalog;
use oodb_value::fxhash::FxHashMap;
use oodb_value::{CmpOp, Name, TupleType, Type};

/// Variable scope for OOSQL type checking.
#[derive(Clone, Debug, Default)]
pub struct OEnv {
    vars: FxHashMap<Name, Type>,
}

impl OEnv {
    /// Empty scope.
    pub fn new() -> Self {
        OEnv::default()
    }

    /// Extends the scope with `var : ty`.
    pub fn bind(&self, var: &Name, ty: Type) -> OEnv {
        let mut vars = self.vars.clone();
        vars.insert(var.clone(), ty);
        OEnv { vars }
    }

    /// Is `var` a bound variable here?
    pub fn get(&self, var: &str) -> Option<&Type> {
        self.vars.get(var)
    }
}

/// Type checks a closed OOSQL query.
pub fn typecheck(e: &OExpr, catalog: &Catalog) -> Result<Type, TypeError> {
    infer(e, &OEnv::new(), catalog)
}

/// Resolves one implicit-deref path step: given the type of `e` in `e.a`,
/// returns the tuple type `a` is looked up in, plus the class whose
/// extent must be consulted (if a dereference happens).
pub fn deref_step(t: &Type, catalog: &Catalog) -> Result<(TupleType, Option<Name>), TypeError> {
    match t {
        Type::Tuple(tt) => Ok((tt.clone(), None)),
        Type::Oid(Some(class)) => {
            let c = catalog
                .class(class)
                .ok_or_else(|| TypeError::new(format!("unknown class `{class}` in path")))?;
            Ok((c.attrs.clone(), Some(c.name.clone())))
        }
        Type::Oid(None) => Err(TypeError::new(
            "cannot traverse an untagged oid in a path expression".to_string(),
        )),
        other => Err(TypeError::new(format!(
            "path step applied to non-object type {other}"
        ))),
    }
}

/// Infers the type of an OOSQL expression.
pub fn infer(e: &OExpr, env: &OEnv, catalog: &Catalog) -> Result<Type, TypeError> {
    match e {
        OExpr::Lit(v) => Ok(v.type_of()),
        OExpr::Ident(n) => {
            if let Some(t) = env.get(n) {
                Ok(t.clone())
            } else if let Some(t) = catalog.extent_type(n) {
                Ok(t)
            } else {
                Err(TypeError::new(format!(
                    "`{n}` is neither a variable in scope nor a base table"
                )))
            }
        }
        OExpr::Path(inner, attr) => {
            let t = infer(inner, env, catalog)?;
            let (tt, _) = deref_step(&t, catalog)?;
            tt.field(attr)
                .cloned()
                .ok_or_else(|| TypeError::new(format!("no attribute `{attr}` in {tt} (in `{e}`)")))
        }
        OExpr::Tuple(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (n, fe) in fields {
                out.push((n.clone(), infer(fe, env, catalog)?));
            }
            TupleType::new(out)
                .map(Type::Tuple)
                .map_err(|err| TypeError::new(format!("bad tuple construction: {err}")))
        }
        OExpr::SetLit(es) => {
            let mut elem = Type::Unknown;
            for se in es {
                let t = infer(se, env, catalog)?;
                elem = elem.unify(&t).ok_or_else(|| {
                    TypeError::new(format!(
                        "set literal elements have incompatible types in `{e}`"
                    ))
                })?;
            }
            Ok(Type::set(elem))
        }
        OExpr::Cmp(op, a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            let numeric_mix = matches!(
                (&ta, &tb),
                (Type::Int, Type::Float) | (Type::Float, Type::Int)
            );
            if ta.unify(&tb).is_none() && !numeric_mix {
                return Err(TypeError::new(format!(
                    "cannot compare {ta} with {tb} in `{e}`"
                )));
            }
            if !matches!(op, CmpOp::Eq | CmpOp::Ne) && !ta.is_ordered() && !numeric_mix {
                return Err(TypeError::new(format!(
                    "ordering comparison on non-ordered type {ta} in `{e}`"
                )));
            }
            Ok(Type::Bool)
        }
        OExpr::SetCmp(op, a, b) => {
            use oodb_value::SetCmpOp::*;
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            let ok = match op {
                In | NotIn => match &tb {
                    Type::Set(elem) => ta.unify(elem).is_some(),
                    _ => false,
                },
                Contains | NotContains => match &ta {
                    Type::Set(elem) => elem.unify(&tb).is_some(),
                    _ => false,
                },
                _ => ta.is_set() && tb.is_set() && ta.unify(&tb).is_some(),
            };
            if ok {
                Ok(Type::Bool)
            } else {
                Err(TypeError::new(format!(
                    "set comparison `{}` not defined on {ta} and {tb} in `{e}`",
                    op.symbol()
                )))
            }
        }
        OExpr::Arith(op, a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            match (&ta, &tb) {
                (Type::Int, Type::Int) => Ok(Type::Int),
                (Type::Float, Type::Float)
                | (Type::Int, Type::Float)
                | (Type::Float, Type::Int) => Ok(Type::Float),
                _ => Err(TypeError::new(format!(
                    "arithmetic `{}` on {ta} and {tb} in `{e}`",
                    op.symbol()
                ))),
            }
        }
        OExpr::Neg(inner) => {
            let t = infer(inner, env, catalog)?;
            match t {
                Type::Int | Type::Float => Ok(t),
                other => Err(TypeError::new(format!("unary minus on {other}"))),
            }
        }
        OExpr::And(a, b) | OExpr::Or(a, b) => {
            expect_bool(infer(a, env, catalog)?, a)?;
            expect_bool(infer(b, env, catalog)?, b)?;
            Ok(Type::Bool)
        }
        OExpr::Not(inner) => {
            expect_bool(infer(inner, env, catalog)?, inner)?;
            Ok(Type::Bool)
        }
        OExpr::SetBin(op, a, b) => {
            let ta = infer(a, env, catalog)?;
            let tb = infer(b, env, catalog)?;
            if !ta.is_set() {
                return Err(TypeError::new(format!(
                    "set operation on non-set {ta} in `{e}`"
                )));
            }
            ta.unify(&tb).ok_or_else(|| {
                TypeError::new(format!(
                    "operands of `{op:?}` have incompatible types {ta} / {tb}"
                ))
            })
        }
        OExpr::Quant {
            var, range, pred, ..
        } => {
            let tr = infer(range, env, catalog)?;
            let elem = match tr {
                Type::Set(e) => *e,
                other => {
                    return Err(TypeError::new(format!(
                        "quantifier range must be a set, found {other} in `{e}`"
                    )))
                }
            };
            let inner = env.bind(var, elem);
            expect_bool(infer(pred, &inner, catalog)?, pred)?;
            Ok(Type::Bool)
        }
        OExpr::Agg(kind, inner) => {
            let t = infer(inner, env, catalog)?;
            let elem = match &t {
                Type::Set(e) => e.as_ref().clone(),
                other => {
                    return Err(TypeError::new(format!(
                        "aggregate `{}` applied to non-set {other}",
                        kind.name()
                    )))
                }
            };
            match kind {
                AggKind::Count => Ok(Type::Int),
                AggKind::Sum => match elem {
                    Type::Int | Type::Unknown => Ok(Type::Int),
                    Type::Float => Ok(Type::Float),
                    other => Err(TypeError::new(format!("sum over {{{other}}}"))),
                },
                AggKind::Min | AggKind::Max => {
                    if elem.is_ordered() {
                        Ok(elem)
                    } else {
                        Err(TypeError::new(format!(
                            "{} over non-ordered {{{elem}}}",
                            kind.name()
                        )))
                    }
                }
                AggKind::Avg => match elem {
                    Type::Int | Type::Float | Type::Unknown => Ok(Type::Float),
                    other => Err(TypeError::new(format!("avg over {{{other}}}"))),
                },
            }
        }
        OExpr::Flatten(inner) => {
            let t = infer(inner, env, catalog)?;
            match t {
                Type::Set(e) => match *e {
                    Type::Set(_) => Ok(*e),
                    Type::Unknown => Ok(Type::set(Type::Unknown)),
                    other => Err(TypeError::new(format!(
                        "flatten needs a set of sets, found {{{other}}}"
                    ))),
                },
                other => Err(TypeError::new(format!(
                    "flatten needs a set of sets, found {other}"
                ))),
            }
        }
        OExpr::DateLit(inner) => {
            let t = infer(inner, env, catalog)?;
            if t == Type::Int {
                Ok(Type::Date)
            } else {
                Err(TypeError::new(format!("date(...) needs an int, found {t}")))
            }
        }
        OExpr::Sfw {
            select,
            bindings,
            where_,
        } => {
            let mut scope = env.clone();
            for b in bindings {
                let tr = infer(&b.range, &scope, catalog)?;
                let elem = match tr {
                    Type::Set(e) => *e,
                    other => {
                        return Err(TypeError::new(format!(
                            "from-clause operand `{}` is not a set (found {other})",
                            b.range
                        )))
                    }
                };
                scope = scope.bind(&b.var, elem);
            }
            if let Some(w) = where_ {
                expect_bool(infer(w, &scope, catalog)?, w)?;
            }
            let ts = infer(select, &scope, catalog)?;
            Ok(Type::set(ts))
        }
        OExpr::With { var, value, body } => {
            let tv = infer(value, env, catalog)?;
            infer(body, &env.bind(var, tv), catalog)
        }
    }
}

fn expect_bool(t: Type, at: &OExpr) -> Result<(), TypeError> {
    match t {
        Type::Bool | Type::Unknown => Ok(()),
        other => Err(TypeError::new(format!(
            "expected a boolean, found {other} in `{at}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn check(src: &str) -> Result<Type, TypeError> {
        typecheck(&parse(src).unwrap(), &supplier_part_catalog())
    }

    #[test]
    fn simple_select_types() {
        let t = check("select s.sname from s in SUPPLIER").unwrap();
        assert_eq!(t, Type::set(Type::Str));
    }

    #[test]
    fn variable_shadows_table_resolution() {
        // `s` resolves to the binding, not to any table
        let t = check("select s from s in SUPPLIER").unwrap();
        assert!(t.sch().is_some());
    }

    #[test]
    fn unknown_name_reported() {
        let err = check("select s.sname from s in NOPE").unwrap_err();
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn implicit_deref_through_reference() {
        // Example Query 2 path: e.supplier.sname traverses an oid⟨Supplier⟩
        let t = check("select e.supplier.sname from e in DELIVERY").unwrap();
        assert_eq!(t, Type::set(Type::Str));
    }

    #[test]
    fn implicit_deref_inside_quantifier() {
        // Example Query 3.2: s.part.color traverses oid⟨Part⟩
        let t = check(
            "select d from d in DELIVERY \
             where exists s in d.supply : s.part.color = \"red\"",
        )
        .unwrap();
        assert!(t.is_set());
    }

    #[test]
    fn set_comparison_between_blocks() {
        // Example Query 3.1 (with the flatten the orthogonal typing needs)
        let t = check(
            "select s.sname from s in SUPPLIER \
             where s.parts supseteq \
               flatten(select t.parts from t in SUPPLIER where t.sname = \"s1\")",
        )
        .unwrap();
        assert_eq!(t, Type::set(Type::Str));
    }

    #[test]
    fn badly_typed_comparison_rejected() {
        assert!(check("select s from s in SUPPLIER where s.sname = 1").is_err());
        assert!(check("select s from s in SUPPLIER where s.parts subset s.sname").is_err());
        assert!(check("select s from s in SUPPLIER where s.sname < s.parts").is_err());
    }

    #[test]
    fn quantifier_over_non_set_rejected() {
        let err =
            check("select s from s in SUPPLIER where exists x in s.sname : true").unwrap_err();
        assert!(err.message.contains("set"));
    }

    #[test]
    fn aggregates_type_correctly() {
        assert_eq!(check("count(SUPPLIER)").unwrap(), Type::Int);
        assert_eq!(
            check("sum(select p.price from p in PART)").unwrap(),
            Type::Int
        );
        assert_eq!(
            check("avg(select p.price from p in PART)").unwrap(),
            Type::Float
        );
        assert!(check("sum(SUPPLIER)").is_err());
    }

    #[test]
    fn from_clause_over_scalar_rejected() {
        let err = check("select x from x in 1").unwrap_err();
        assert!(err.message.contains("not a set"));
    }

    #[test]
    fn multi_binding_scopes_left_to_right() {
        let t = check("select (d := d.did, q := s.quantity) from d in DELIVERY, s in d.supply")
            .unwrap();
        let tt = t.elem().unwrap().as_tuple().unwrap();
        assert!(tt.has_field("q"));
    }

    #[test]
    fn with_construct_types() {
        let t = check(
            "with red as (select p.pid from p in PART where p.color = \"red\") \
             select s.sname from s in SUPPLIER \
             where exists x in s.parts : x in red",
        )
        .unwrap();
        assert_eq!(t, Type::set(Type::Str));
    }

    #[test]
    fn date_literal_types() {
        let t = check("select d from d in DELIVERY where d.date = date(940101)").unwrap();
        assert!(t.is_set());
        assert!(check("date(\"x\")").is_err());
    }

    #[test]
    fn set_literals_and_ops() {
        assert_eq!(check("{1, 2} union {3}").unwrap(), Type::set(Type::Int));
        assert!(check("{1} union {\"a\"}").is_err());
        assert!(check("1 union 2").is_err());
        assert_eq!(check("{}").unwrap(), Type::set(Type::Unknown));
    }
}

//! OOSQL tokens.

use std::fmt;

/// A lexical token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the source.
    pub offset: usize,
}

/// Token kinds of the OOSQL surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable, attribute, table or class name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (double quoted).
    Str(String),
    /// Keyword (reserved identifier).
    Keyword(Keyword),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

/// Reserved words. Keywords are lower-case; identifiers that match one
/// case-sensitively become keywords (so `SUPPLIER` stays an identifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    In,
    Exists,
    Forall,
    And,
    Or,
    Not,
    True,
    False,
    Union,
    Intersect,
    Minus,
    Subset,
    Subseteq,
    Supset,
    Supseteq,
    Contains,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Flatten,
    Date,
    With,
    As,
}

impl Keyword {
    /// Keyword lookup for an identifier.
    pub fn lookup(s: &str) -> Option<Keyword> {
        Some(match s {
            "select" => Keyword::Select,
            "from" => Keyword::From,
            "where" => Keyword::Where,
            "in" => Keyword::In,
            "exists" => Keyword::Exists,
            "forall" => Keyword::Forall,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "union" => Keyword::Union,
            "intersect" => Keyword::Intersect,
            "minus" => Keyword::Minus,
            "subset" => Keyword::Subset,
            "subseteq" => Keyword::Subseteq,
            "supset" => Keyword::Supset,
            "supseteq" => Keyword::Supseteq,
            "contains" => Keyword::Contains,
            "count" => Keyword::Count,
            "sum" => Keyword::Sum,
            "min" => Keyword::Min,
            "max" => Keyword::Max,
            "avg" => Keyword::Avg,
            "flatten" => Keyword::Flatten,
            "date" => Keyword::Date,
            "with" => Keyword::With,
            "as" => Keyword::As,
            _ => return None,
        })
    }

    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Select => "select",
            Keyword::From => "from",
            Keyword::Where => "where",
            Keyword::In => "in",
            Keyword::Exists => "exists",
            Keyword::Forall => "forall",
            Keyword::And => "and",
            Keyword::Or => "or",
            Keyword::Not => "not",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Union => "union",
            Keyword::Intersect => "intersect",
            Keyword::Minus => "minus",
            Keyword::Subset => "subset",
            Keyword::Subseteq => "subseteq",
            Keyword::Supset => "supset",
            Keyword::Supseteq => "supseteq",
            Keyword::Contains => "contains",
            Keyword::Count => "count",
            Keyword::Sum => "sum",
            Keyword::Min => "min",
            Keyword::Max => "max",
            Keyword::Avg => "avg",
            Keyword::Flatten => "flatten",
            Keyword::Date => "date",
            Keyword::With => "with",
            Keyword::As => "as",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Float(x) => write!(f, "float `{x}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Keyword(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Assign => write!(f, "`:=`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_sensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SELECT"), None);
        assert_eq!(Keyword::lookup("SUPPLIER"), None);
    }

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Select,
            Keyword::Subseteq,
            Keyword::Flatten,
            Keyword::With,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
    }
}

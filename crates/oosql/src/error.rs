//! OOSQL front-end errors.

use std::fmt;

/// A lexing or parsing error, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source text.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Builds an error at `offset`.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A type-checking error over the OOSQL AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description, referencing the offending expression.
    pub message: String,
}

impl TypeError {
    /// Builds a type error.
    pub fn new(message: impl Into<String>) -> Self {
        TypeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(17, "expected `from`");
        assert_eq!(e.to_string(), "at byte 17: expected `from`");
        assert_eq!(TypeError::new("boom").to_string(), "boom");
    }
}

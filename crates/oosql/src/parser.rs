//! Recursive-descent parser for OOSQL.
//!
//! Operator precedence, loosest first: `with` bodies, `or`, `and`, `not`,
//! comparisons (scalar and set, non-associative), additive (`+ - union
//! minus`), multiplicative (`* / % intersect`), unary minus, path
//! postfix (`.attr`), primaries. `select … from … where …` and quantifier
//! expressions begin with keywords, so the orthogonal nesting of OOSQL
//! parses without ambiguity.

use crate::ast::{AggKind, Binding, OExpr, SetBinOp};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};
use oodb_value::{ArithOp, CmpOp, Name, SetCmpOp, Value};

/// Parses one OOSQL expression (usually a query) from source text.
pub fn parse(src: &str) -> Result<OExpr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.peek_offset(),
                format!("expected `{}`, found {}", kw.as_str(), self.peek()),
            ))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.peek_offset(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(
                self.peek_offset(),
                format!("unexpected trailing {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<Name, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Name::from(s.as_str()))
            }
            other => Err(ParseError::new(
                self.peek_offset(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn expr(&mut self) -> Result<OExpr, ParseError> {
        if self.eat_kw(Keyword::With) {
            let var = self.ident()?;
            self.expect_kw(Keyword::As)?;
            self.expect(TokenKind::LParen)?;
            let value = self.expr()?;
            self.expect(TokenKind::RParen)?;
            let body = self.expr()?;
            return Ok(OExpr::With {
                var,
                value: Box::new(value),
                body: Box::new(body),
            });
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<OExpr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = OExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<OExpr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = OExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<OExpr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            return Ok(OExpr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<OExpr, ParseError> {
        let lhs = self.add_expr()?;
        // scalar comparison operators
        let cmp = match self.peek() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(OExpr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        // set comparison keywords, including `not in` / `not contains`
        let set = match self.peek() {
            TokenKind::Keyword(Keyword::In) => Some(SetCmpOp::In),
            TokenKind::Keyword(Keyword::Subset) => Some(SetCmpOp::Subset),
            TokenKind::Keyword(Keyword::Subseteq) => Some(SetCmpOp::SubsetEq),
            TokenKind::Keyword(Keyword::Supset) => Some(SetCmpOp::Superset),
            TokenKind::Keyword(Keyword::Supseteq) => Some(SetCmpOp::SupersetEq),
            TokenKind::Keyword(Keyword::Contains) => Some(SetCmpOp::Contains),
            TokenKind::Keyword(Keyword::Not) => {
                match self.tokens.get(self.pos + 1).map(|t| &t.kind) {
                    Some(TokenKind::Keyword(Keyword::In)) => {
                        self.bump();
                        Some(SetCmpOp::NotIn)
                    }
                    Some(TokenKind::Keyword(Keyword::Contains)) => {
                        self.bump();
                        Some(SetCmpOp::NotContains)
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(op) = set {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(OExpr::SetCmp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<OExpr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let node = match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    let rhs = self.mul_expr()?;
                    OExpr::Arith(ArithOp::Add, Box::new(lhs), Box::new(rhs))
                }
                TokenKind::Minus => {
                    self.bump();
                    let rhs = self.mul_expr()?;
                    OExpr::Arith(ArithOp::Sub, Box::new(lhs), Box::new(rhs))
                }
                TokenKind::Keyword(Keyword::Union) => {
                    self.bump();
                    let rhs = self.mul_expr()?;
                    OExpr::SetBin(SetBinOp::Union, Box::new(lhs), Box::new(rhs))
                }
                TokenKind::Keyword(Keyword::Minus) => {
                    self.bump();
                    let rhs = self.mul_expr()?;
                    OExpr::SetBin(SetBinOp::Minus, Box::new(lhs), Box::new(rhs))
                }
                _ => break,
            };
            lhs = node;
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<OExpr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let node = match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    let rhs = self.unary_expr()?;
                    OExpr::Arith(ArithOp::Mul, Box::new(lhs), Box::new(rhs))
                }
                TokenKind::Slash => {
                    self.bump();
                    let rhs = self.unary_expr()?;
                    OExpr::Arith(ArithOp::Div, Box::new(lhs), Box::new(rhs))
                }
                TokenKind::Percent => {
                    self.bump();
                    let rhs = self.unary_expr()?;
                    OExpr::Arith(ArithOp::Mod, Box::new(lhs), Box::new(rhs))
                }
                TokenKind::Keyword(Keyword::Intersect) => {
                    self.bump();
                    let rhs = self.unary_expr()?;
                    OExpr::SetBin(SetBinOp::Intersect, Box::new(lhs), Box::new(rhs))
                }
                _ => break,
            };
            lhs = node;
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<OExpr, ParseError> {
        if *self.peek() == TokenKind::Minus {
            self.bump();
            let inner = self.unary_expr()?;
            // fold negative numeric literals so `-1` IS the literal -1
            return Ok(match inner {
                OExpr::Lit(Value::Int(i)) => OExpr::Lit(Value::Int(-i)),
                OExpr::Lit(Value::Float(x)) => OExpr::Lit(Value::float(-x.get())),
                other => OExpr::Neg(Box::new(other)),
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<OExpr, ParseError> {
        let mut e = self.primary()?;
        while *self.peek() == TokenKind::Dot {
            self.bump();
            let attr = self.attr_name()?;
            e = OExpr::Path(Box::new(e), attr);
        }
        Ok(e)
    }

    /// Attribute names may coincide with keywords (`d.date`, `x.count`):
    /// after a `.` any keyword reads as a plain name.
    fn attr_name(&mut self) -> Result<Name, ParseError> {
        if let TokenKind::Keyword(kw) = self.peek() {
            let n = Name::from(kw.as_str());
            self.bump();
            return Ok(n);
        }
        self.ident()
    }

    fn primary(&mut self) -> Result<OExpr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(OExpr::Lit(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(OExpr::Lit(Value::float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(OExpr::Lit(Value::str(&s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(OExpr::Lit(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(OExpr::Lit(Value::Bool(false)))
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(OExpr::Ident(Name::from(s.as_str())))
            }
            TokenKind::Keyword(Keyword::Select) => self.sfw(),
            TokenKind::Keyword(Keyword::Exists) => self.quant(true),
            TokenKind::Keyword(Keyword::Forall) => self.quant(false),
            TokenKind::Keyword(
                kw @ (Keyword::Count | Keyword::Sum | Keyword::Min | Keyword::Max | Keyword::Avg),
            ) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let kind = match kw {
                    Keyword::Count => AggKind::Count,
                    Keyword::Sum => AggKind::Sum,
                    Keyword::Min => AggKind::Min,
                    Keyword::Max => AggKind::Max,
                    _ => AggKind::Avg,
                };
                Ok(OExpr::Agg(kind, Box::new(inner)))
            }
            TokenKind::Keyword(Keyword::Flatten) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(OExpr::Flatten(Box::new(inner)))
            }
            TokenKind::Keyword(Keyword::Date) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(OExpr::DateLit(Box::new(inner)))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut elems = Vec::new();
                if *self.peek() != TokenKind::RBrace {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat_comma() {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBrace)?;
                Ok(OExpr::SetLit(elems))
            }
            TokenKind::LParen => {
                // Tuple literal `(a := e, …)` vs parenthesized expression.
                let is_tuple = matches!(
                    (
                        self.tokens.get(self.pos + 1).map(|t| &t.kind),
                        self.tokens.get(self.pos + 2).map(|t| &t.kind)
                    ),
                    (Some(TokenKind::Ident(_)), Some(TokenKind::Assign))
                );
                self.bump();
                if is_tuple {
                    let mut fields = Vec::new();
                    loop {
                        let n = self.ident()?;
                        self.expect(TokenKind::Assign)?;
                        let e = self.expr()?;
                        fields.push((n, e));
                        if !self.eat_comma() {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(OExpr::Tuple(fields))
                } else {
                    let e = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(e)
                }
            }
            other => Err(ParseError::new(
                self.peek_offset(),
                format!("expected an expression, found {other}"),
            )),
        }
    }

    fn eat_comma(&mut self) -> bool {
        if *self.peek() == TokenKind::Comma {
            self.bump();
            true
        } else {
            false
        }
    }

    fn sfw(&mut self) -> Result<OExpr, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let select = self.expr()?;
        self.expect_kw(Keyword::From)?;
        let mut bindings = Vec::new();
        loop {
            let var = self.ident()?;
            self.expect_kw(Keyword::In)?;
            let range = self.expr()?;
            bindings.push(Binding { var, range });
            if !self.eat_comma() {
                break;
            }
        }
        let where_ = if self.eat_kw(Keyword::Where) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        Ok(OExpr::Sfw {
            select: Box::new(select),
            bindings,
            where_,
        })
    }

    fn quant(&mut self, exists: bool) -> Result<OExpr, ParseError> {
        self.bump(); // exists / forall
        let var = self.ident()?;
        self.expect_kw(Keyword::In)?;
        let range = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let pred = self.expr()?;
        Ok(OExpr::Quant {
            exists,
            var,
            range: Box::new(range),
            pred: Box::new(pred),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_query_1() {
        // Nesting in the select-clause (paper Example Query 1).
        let q = parse(
            "select (sname := s.sname, \
                     pnames := select p.pname from p in PART \
                               where p.pid in s.parts and p.color = \"red\") \
             from s in SUPPLIER",
        )
        .unwrap();
        match q {
            OExpr::Sfw {
                select,
                bindings,
                where_,
            } => {
                assert!(matches!(*select, OExpr::Tuple(_)));
                assert_eq!(bindings.len(), 1);
                assert!(where_.is_none());
            }
            other => panic!("expected sfw, got {other}"),
        }
    }

    #[test]
    fn parses_example_query_2_from_nesting() {
        let q = parse(
            "select d from d in (select e from e in DELIVERY \
              where e.supplier.sname = \"s1\") where d.date = date(940101)",
        )
        .unwrap();
        match q {
            OExpr::Sfw {
                bindings, where_, ..
            } => {
                assert!(matches!(bindings[0].range, OExpr::Sfw { .. }));
                assert!(where_.is_some());
            }
            other => panic!("expected sfw, got {other}"),
        }
    }

    #[test]
    fn parses_quantifier_query() {
        // Example Query 3.2: exists over a set-valued attribute.
        let q = parse(
            "select d from d in DELIVERY \
             where exists s in d.supply : s.part.color = \"red\"",
        )
        .unwrap();
        match q {
            OExpr::Sfw {
                where_: Some(w), ..
            } => {
                assert!(matches!(*w, OExpr::Quant { exists: true, .. }));
            }
            other => panic!("expected sfw with where, got {other}"),
        }
    }

    #[test]
    fn parses_set_comparisons() {
        let q = parse("s.parts supseteq t.parts").unwrap();
        assert!(matches!(q, OExpr::SetCmp(SetCmpOp::SupersetEq, _, _)));
        let q = parse("x not in s.parts").unwrap();
        assert!(matches!(q, OExpr::SetCmp(SetCmpOp::NotIn, _, _)));
        let q = parse("s.parts not contains x").unwrap();
        assert!(matches!(q, OExpr::SetCmp(SetCmpOp::NotContains, _, _)));
        // plain `not` still parses as negation
        let q = parse("not x = 1").unwrap();
        assert!(matches!(q, OExpr::Not(_)));
    }

    #[test]
    fn precedence_and_or_cmp() {
        let q = parse("a = 1 and b = 2 or c = 3").unwrap();
        // ((a=1 and b=2) or c=3)
        assert!(matches!(q, OExpr::Or(_, _)));
        let q = parse("1 + 2 * 3 = 7").unwrap();
        match q {
            OExpr::Cmp(CmpOp::Eq, lhs, _) => {
                assert!(matches!(*lhs, OExpr::Arith(ArithOp::Add, _, _)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parses_multi_binding_from() {
        let q = parse("select (a := x.a, b := y.b) from x in X, y in Y where x.a = y.b").unwrap();
        match q {
            OExpr::Sfw { bindings, .. } => assert_eq!(bindings.len(), 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parses_with_construct() {
        let q = parse(
            "with ys as (select t.parts from t in SUPPLIER) \
             select s from s in SUPPLIER where s.parts in ys",
        )
        .unwrap();
        assert!(matches!(q, OExpr::With { .. }));
    }

    #[test]
    fn parses_aggregates_and_flatten() {
        assert!(matches!(
            parse("count(s.parts)").unwrap(),
            OExpr::Agg(AggKind::Count, _)
        ));
        assert!(matches!(parse("flatten(x)").unwrap(), OExpr::Flatten(_)));
        assert!(matches!(
            parse("{1, 2, 3}").unwrap(),
            OExpr::SetLit(v) if v.len() == 3
        ));
        assert!(matches!(parse("{}").unwrap(), OExpr::SetLit(v) if v.is_empty()));
    }

    #[test]
    fn set_binops_parse() {
        assert!(matches!(
            parse("a union b minus c").unwrap(),
            OExpr::SetBin(SetBinOp::Minus, _, _)
        ));
        assert!(matches!(
            parse("a intersect b").unwrap(),
            OExpr::SetBin(SetBinOp::Intersect, _, _)
        ));
    }

    #[test]
    fn error_reporting_positions() {
        let err = parse("select s from").unwrap_err();
        assert!(err.message.contains("identifier"));
        let err = parse("select s from s SUPPLIER").unwrap_err();
        assert!(err.message.contains("`in`"));
        let err = parse("1 +").unwrap_err();
        assert!(err.message.contains("expression"));
        let err = parse("x = 1 extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn parenthesized_vs_tuple() {
        assert!(matches!(parse("(1 + 2)").unwrap(), OExpr::Arith(..)));
        assert!(matches!(parse("(a := 1)").unwrap(), OExpr::Tuple(_)));
        assert!(matches!(parse("(a := 1, b := 2)").unwrap(), OExpr::Tuple(f) if f.len() == 2));
    }

    #[test]
    fn unary_minus() {
        assert!(matches!(parse("-x.a").unwrap(), OExpr::Neg(_)));
        // numeric literals fold
        assert_eq!(parse("-7").unwrap(), OExpr::Lit(Value::Int(-7)));
        assert_eq!(parse("-1.5").unwrap(), OExpr::Lit(Value::float(-1.5)));
    }
}

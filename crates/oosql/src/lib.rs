//! # OOSQL — an orthogonal SQL-like query language for OODB
//!
//! The source language of *From Nested-Loop to Join Queries in OODB*
//! (Steenhagen et al., VLDB 1994). OOSQL allows nesting in **all** clauses
//! of the select statement (§2):
//!
//! * **select-clause** nesting produces set-valued attributes in complex
//!   objects (Example Query 1);
//! * **from-clause** nesting denotes query composition (Example Query 2) —
//!   operands may be base tables *or set-valued attributes*;
//! * **where-clause** nesting expresses restrictions, with quantifiers
//!   (`exists`/`forall`) and set comparison operators (`in`, `subset`,
//!   `subseteq`, `supset`, `supseteq`, `contains`, `=`) between query
//!   blocks (Example Query 3).
//!
//! This crate provides the lexer, parser ([`parse`]), AST ([`ast::OExpr`])
//! and type checker ([`typecheck()`]); translation into the ADL algebra
//! lives in `oodb-translate`.
//!
//! ```
//! use oodb_oosql::{parse, typecheck};
//! use oodb_catalog::fixtures::supplier_part_catalog;
//!
//! let q = parse(
//!     "select s.sname from s in SUPPLIER \
//!      where exists p in PART : p.pid in s.parts and p.color = \"red\"",
//! )
//! .unwrap();
//! let ty = typecheck(&q, &supplier_part_catalog()).unwrap();
//! assert_eq!(ty.to_string(), "{string}");
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod typecheck;

pub use ast::{AggKind, Binding, OExpr, SetBinOp};
pub use error::{ParseError, TypeError};
pub use parser::parse;
pub use typecheck::{deref_step, infer as infer_type, typecheck, OEnv};

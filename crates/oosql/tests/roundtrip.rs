//! Parser ↔ printer roundtrip: `parse(print(ast)) == ast` for randomly
//! generated OOSQL expressions, plus grammar edge cases.

use oodb_oosql::ast::{Binding, OExpr, SetBinOp};
use oodb_oosql::parse;
use oodb_value::{CmpOp, Name, SetCmpOp, Value};
use proptest::prelude::*;

/// Random identifiers that are not keywords.
fn ident() -> impl Strategy<Value = Name> {
    proptest::sample::select(vec!["s", "p", "d", "x9", "Foo", "SUPPLIER", "a_b"])
        .prop_map(Name::from)
}

fn leaf() -> impl Strategy<Value = OExpr> {
    prop_oneof![
        (-1000i64..1000).prop_map(|i| OExpr::Lit(Value::Int(i))),
        ident().prop_map(OExpr::Ident),
        proptest::sample::select(vec!["red", "blue", "it's \"quoted\""])
            .prop_map(|s| OExpr::Lit(Value::str(s))),
        Just(OExpr::Lit(Value::Bool(true))),
        Just(OExpr::Lit(Value::Bool(false))),
    ]
}

/// Random OOSQL ASTs, depth-bounded.
fn oexpr() -> impl Strategy<Value = OExpr> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // path
            (inner.clone(), ident()).prop_map(|(e, a)| OExpr::Path(Box::new(e), a)),
            // comparisons
            (
                inner.clone(),
                inner.clone(),
                proptest::sample::select(vec![
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge
                ])
            )
                .prop_map(|(a, b, op)| OExpr::Cmp(op, Box::new(a), Box::new(b))),
            // set comparisons
            (
                inner.clone(),
                inner.clone(),
                proptest::sample::select(vec![
                    SetCmpOp::In,
                    SetCmpOp::Subset,
                    SetCmpOp::SubsetEq,
                    SetCmpOp::Superset,
                    SetCmpOp::SupersetEq,
                    SetCmpOp::Contains,
                ])
            )
                .prop_map(|(a, b, op)| OExpr::SetCmp(op, Box::new(a), Box::new(b))),
            // boolean connectives
            (inner.clone(), inner.clone()).prop_map(|(a, b)| OExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| OExpr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| OExpr::Not(Box::new(e))),
            // set operations
            (
                inner.clone(),
                inner.clone(),
                proptest::sample::select(vec![
                    SetBinOp::Union,
                    SetBinOp::Intersect,
                    SetBinOp::Minus
                ])
            )
                .prop_map(|(a, b, op)| OExpr::SetBin(op, Box::new(a), Box::new(b))),
            // quantifier
            (ident(), inner.clone(), inner.clone(), any::<bool>()).prop_map(|(v, r, p, exists)| {
                OExpr::Quant {
                    exists,
                    var: v,
                    range: Box::new(r),
                    pred: Box::new(p),
                }
            }),
            // sfw block
            (
                inner.clone(),
                ident(),
                inner.clone(),
                proptest::option::of(inner.clone())
            )
                .prop_map(|(sel, v, range, w)| OExpr::Sfw {
                    select: Box::new(sel),
                    bindings: vec![Binding { var: v, range }],
                    where_: w.map(Box::new),
                }),
            // set literal
            proptest::collection::vec(inner.clone(), 0..3).prop_map(OExpr::SetLit),
            // flatten / count
            inner.clone().prop_map(|e| OExpr::Flatten(Box::new(e))),
            inner
                .clone()
                .prop_map(|e| OExpr::Agg(oodb_oosql::AggKind::Count, Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Printing any AST and re-parsing yields the same AST. (The printer
    /// parenthesizes everything, so precedence cannot corrupt shape.)
    #[test]
    fn print_parse_roundtrip(ast in oexpr()) {
        let text = ast.to_string();
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("printed `{text}` failed to reparse: {e}"));
        prop_assert_eq!(reparsed, ast);
    }
}

#[test]
fn quantifier_body_extends_right() {
    // `exists x in S : p and q` — the predicate is the whole conjunction
    let q = parse("exists x in S : a = 1 and b = 2").unwrap();
    match q {
        OExpr::Quant { pred, .. } => assert!(matches!(*pred, OExpr::And(..))),
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn sfw_where_binds_tighter_than_outer_and() {
    // (select … where p) and q — needs parens to apply `and` outside;
    // without them the whole conjunction is the where-clause
    let q = parse("(select x from x in S where a = 1) contains 3").unwrap();
    assert!(matches!(q, OExpr::SetCmp(SetCmpOp::Contains, ..)));
}

#[test]
fn deep_nesting_parses() {
    // five levels of sfw nesting — the orthogonality the paper stresses
    let mut src = String::from("S");
    for i in 0..5 {
        src = format!("select x{i} from x{i} in ({src})");
    }
    let q = parse(&src).unwrap();
    let mut depth = 0;
    let mut cur = &q;
    while let OExpr::Sfw { bindings, .. } = cur {
        depth += 1;
        cur = &bindings[0].range;
    }
    assert_eq!(depth, 5);
}

#[test]
fn keyword_attribute_names_parse() {
    for src in ["d.date", "x.count", "y.min.max", "s.in"] {
        parse(src).unwrap_or_else(|e| panic!("`{src}`: {e}"));
    }
}

#[test]
fn errors_do_not_panic_on_garbage() {
    for src in [
        "",
        "select",
        "exists in :",
        "{{{",
        "a . . b",
        "select x from",
        "with as () x",
        "1 = = 2",
        "not",
        "(a := )",
    ] {
        let _ = parse(src); // must return Err, not panic
        assert!(parse(src).is_err(), "`{src}` unexpectedly parsed");
    }
}

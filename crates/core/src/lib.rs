//! # oodb-core — from nested-loop to join queries
//!
//! The paper's contribution (Steenhagen, Apers, Blanken, de By, VLDB
//! 1994): algebraic rewriting that transforms nested ADL expressions —
//! correlated subqueries with base-table operands nested inside iterator
//! parameters — into **join queries in which base tables occur only at
//! top level**, moving from tuple-oriented to set-oriented query
//! processing (§3).
//!
//! The rule catalogue (module [`rules`]):
//!
//! * Table 1 / Table 2 — set-comparison and predicate rewrites into
//!   quantifier expressions ([`rules::setcmp`], [`rules::normalize`]);
//! * range extraction and quantifier exchange ([`rules::range`],
//!   Rewriting Examples 1–3);
//! * **Rule 1** — `σ[x : ∃y ∈ Y • p](X) ≡ X ⋉ Y` and
//!   `σ[x : ¬∃y ∈ Y • p](X) ≡ X ▷ Y` ([`rules::rule1`]);
//! * **Rule 2** — nesting in the map operator:
//!   `⋃(α[x : α[y : x∘y](σ[y : p](Y))](X)) ≡ X ⋈ Y` ([`rules::rule2`]);
//! * option 1 — unnesting of set-valued attributes ([`rules::attr_unnest`]);
//! * uncorrelated subquery hoisting — "uncorrelated subqueries simply are
//!   constants" ([`rules::hoist`]);
//! * the **nestjoin** rewrites for queries that cannot become flat
//!   relational joins ([`rules::nestjoin`], §6.1);
//! * the \[GaWo87\] grouping transformation with the **Complex Object bug**,
//!   its static guard (Table 3, [`emptiness`]) and the outerjoin repair
//!   ([`rules::grouping`], §5.2.2).
//!
//! [`strategy::Optimizer`] sequences them by the paper's §4 priorities:
//! relational join operators first, then attribute unnesting, then new
//! operators, else nested loops.

pub mod emptiness;
pub mod rules;
pub mod strategy;
pub mod trace;

pub use emptiness::{reduce_with_empty, Truth};
pub use strategy::{Optimized, Optimizer};
pub use trace::{RewriteTrace, TraceStep};

use oodb_adl::AdlTypeError;
use std::fmt;

/// Errors surfaced by the rewriter.
///
/// Rules that do not apply simply decline; errors indicate an internal
/// inconsistency (e.g. a pass limit hit, or a type computation needed by a
/// rule failing on an expression that already passed the type checker).
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteError {
    /// The fixpoint driver exceeded its pass budget.
    PassLimit(usize),
    /// Type inference failed mid-rewrite.
    Type(AdlTypeError),
    /// The rewritten expression changed type — a rule is unsound.
    TypeChanged {
        /// Type of the input expression.
        before: String,
        /// Type of the rewritten expression.
        after: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::PassLimit(n) => {
                write!(f, "rewriter did not reach a fixpoint within {n} passes")
            }
            RewriteError::Type(e) => write!(f, "type inference failed mid-rewrite: {e}"),
            RewriteError::TypeChanged { before, after } => {
                write!(f, "rewrite changed the query type: {before} → {after}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

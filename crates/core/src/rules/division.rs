//! Division-based universal quantification — the classical relational
//! alternative to the antijoin.
//!
//! "Existential quantification is mapped to a projection on a join (or
//! product); universal quantification is handled by means of the division
//! operator \[Codd72\]" (§5.2.1, describing \[CeGo85\]). The paper prefers
//! the antijoin ("it can be employed to efficiently process tree queries
//! involving universal quantification"); this module implements the
//! division route as an **ablation** so the two can be compared.
//!
//! The rewrite targets the shape
//!
//! ```text
//! σ[x : ∀y ∈ Y • key(y) ∈ x.c](X)      (X a class extension)
//! ⇒  X ⋉_{x,q : x.id = q.id} (π_{id,c}(μ_c(X)) ÷ α[y : ⟨c = key(y)⟩](Y))
//! ```
//!
//! **Caveat (tested, documented):** like every unnesting built on `μ`,
//! the division loses left tuples with `c = ∅` — and when the divisor is
//! *empty*, `∀` over `∅` is true for every `x`, so those tuples belong in
//! the answer. The rewrite is therefore only semantics-preserving when
//! the divisor is non-empty at run time; it is exposed for study, not
//! wired into the default strategy (where `forall-to-not-exists` +
//! Rule 1.2 yield the always-correct antijoin).

use super::{RewriteCtx, Rule};
use oodb_adl::expr::{Expr, JoinKind, QuantKind};
use oodb_adl::vars::{free_vars, is_free_in};
use oodb_value::{Name, SetCmpOp};

/// The division ablation rewrite.
pub struct ForallToDivision;

impl Rule for ForallToDivision {
    fn name(&self) -> &'static str {
        "forall-to-division"
    }

    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Select {
            var: x,
            pred,
            input,
        } = e
        else {
            return None;
        };
        // input must be a plain class extension so we have an identity key
        let Expr::Table(extent) = input.as_ref() else {
            return None;
        };
        let class = ctx.catalog.class_by_extent(extent)?;
        let id = class.identity.clone();

        // pred: ∀y ∈ Y • key(y) ∈ x.c  with Y a base table expression
        let Expr::Quant {
            q: QuantKind::Forall,
            var: y,
            range,
            pred: inner,
        } = pred.as_ref()
        else {
            return None;
        };
        if !super::is_base_table_expr(range) || is_free_in(x, range) {
            return None;
        }
        let Expr::SetCmp(SetCmpOp::In, key, set) = inner.as_ref() else {
            return None;
        };
        // the membership set must be x.c for a set-valued attribute c
        let Expr::Field(base, attr) = set.as_ref() else {
            return None;
        };
        if !matches!(base.as_ref(), Expr::Var(v) if v == x) {
            return None;
        }
        // key over y only
        if free_vars(key).iter().any(|n| n != y) || key.mentions_table() {
            return None;
        }
        // c must be a set of atoms for π_{id,c}(μ_c(X)) to be flat
        let attr_ty = class.attrs.field(attr)?;
        if !attr_ty.elem().map(|t| t.is_atomic()).unwrap_or(false) {
            return None;
        }

        // dividend: π_{id, c}(μ_c(X))
        let dividend = Expr::Project {
            attrs: vec![id.clone(), attr.clone()],
            input: Box::new(Expr::Unnest {
                attr: attr.clone(),
                input: input.clone(),
            }),
        };
        // divisor: α[y : ⟨c = key(y)⟩](Y)
        let divisor = Expr::Map {
            var: y.clone(),
            body: Box::new(Expr::TupleCons(vec![(attr.clone(), (**key).clone())])),
            input: range.clone(),
        };
        let quotient = Expr::Div(Box::new(dividend), Box::new(divisor));
        // join back to the full objects
        let qvar = Name::from("q");
        Some(Expr::Join {
            kind: JoinKind::Semi,
            lvar: x.clone(),
            rvar: qvar.clone(),
            pred: Box::new(Expr::Cmp(
                oodb_value::CmpOp::Eq,
                Box::new(Expr::Field(Box::new(Expr::Var(x.clone())), id.clone())),
                Box::new(Expr::Field(Box::new(Expr::Var(qvar)), id)),
            )),
            left: input.clone(),
            right: Box::new(quotient),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::{supplier_part_catalog, supplier_part_db};
    use oodb_engine::Evaluator;

    /// σ[s : ∀p ∈ σ[p : color = red](PART) • p.pid ∈ s.parts](SUPPLIER)
    fn forall_query(color: &str) -> Expr {
        select(
            "s",
            forall(
                "p",
                select(
                    "p",
                    eq(var("p").field("color"), str_lit(color)),
                    table("PART"),
                ),
                member(var("p").field("pid"), var("s").field("parts")),
            ),
            table("SUPPLIER"),
        )
    }

    #[test]
    fn division_rewrite_fires_and_agrees_when_divisor_nonempty() {
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        // "green" parts: just the washer (pid 14) — s3 supplies it
        let q = forall_query("green");
        let rewritten = ForallToDivision.apply(&q, &ctx).expect("fires");
        assert!(matches!(
            rewritten,
            Expr::Join {
                kind: JoinKind::Semi,
                ..
            }
        ));
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let direct = ev.eval_closed(&q).unwrap();
        let via_div = ev.eval_closed(&rewritten).unwrap();
        assert_eq!(direct, via_div);
        assert_eq!(direct.as_set().unwrap().len(), 1); // s3
    }

    #[test]
    fn division_anomaly_on_empty_divisor() {
        // no "purple" parts: ∀ over ∅ is true for EVERY supplier,
        // including s4 whose `parts` set is empty. The division route
        // builds its dividend with μ_parts, which drops s4 — the same
        // dangling-tuple pathology as the grouping bug, in relational
        // clothing. The paper's antijoin (default strategy) is correct.
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let q = forall_query("purple");
        let rewritten = ForallToDivision.apply(&q, &ctx).expect("fires");
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let direct = ev.eval_closed(&q).unwrap();
        assert_eq!(direct.as_set().unwrap().len(), 5, "∀ over ∅ is true");
        let via_div = ev.eval_closed(&rewritten).unwrap();
        assert_eq!(
            via_div.as_set().unwrap().len(),
            4,
            "division loses the empty-parts supplier"
        );
        let lost_s4 = !via_div
            .as_set()
            .unwrap()
            .iter()
            .any(|r| r.as_tuple().unwrap().get("sname") == Some(&oodb_value::Value::str("s4")));
        assert!(lost_s4);
        // the default strategy's antijoin is correct on the same query
        let opt = crate::Optimizer::default().optimize(&q, &cat).unwrap();
        assert!(opt.trace.fired("rule1-not-exists"));
        assert_eq!(ev.eval_closed(&opt.expr).unwrap(), direct);
    }

    #[test]
    fn guards_reject_non_matching_shapes() {
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        // existential quantifier: no
        let q1 = select(
            "s",
            exists(
                "p",
                table("PART"),
                member(var("p").field("pid"), var("s").field("parts")),
            ),
            table("SUPPLIER"),
        );
        assert!(ForallToDivision.apply(&q1, &ctx).is_none());
        // set-valued range: no
        let q2 = select(
            "s",
            forall(
                "z",
                var("s").field("parts"),
                member(var("z"), var("s").field("parts")),
            ),
            table("SUPPLIER"),
        );
        assert!(ForallToDivision.apply(&q2, &ctx).is_none());
        // membership into something that is not x.c: no
        let q3 = select(
            "s",
            forall(
                "p",
                table("PART"),
                member(var("p").field("pid"), var("other")),
            ),
            table("SUPPLIER"),
        );
        assert!(ForallToDivision.apply(&q3, &ctx).is_none());
        // non-extension input: no
        let q4 = select(
            "s",
            forall(
                "p",
                table("PART"),
                member(var("p").field("pid"), var("s").field("parts")),
            ),
            project(&["eid", "parts"], table("SUPPLIER")),
        );
        assert!(ForallToDivision.apply(&q4, &ctx).is_none());
    }
}

//! Range extraction and quantifier exchange.
//!
//! "Next, the select operation is removed from the operand (the range
//! expression) of the existential quantifier, providing the possibility to
//! translate the existential subquery into a semijoin operation"
//! (Rewriting Example 1). And the exchange heuristic of Rewriting
//! Example 3: "to enable unnesting of (sub)expressions, the goal is to
//! move quantification over base tables to the left of the quantifier
//! expression".

use super::{RewriteCtx, Rule};
use oodb_adl::expr::{Expr, QuantKind};
use oodb_adl::vars::{free_vars, fresh_name, is_free_in, subst};
use oodb_value::fxhash::FxHashSet;

/// `∃y ∈ σ[u : q](E) • p  ⇒  ∃y ∈ E • q[y/u] ∧ p`
/// `∃y ∈ α[u : g](E) • p  ⇒  ∃u' ∈ E • p[g[u'/u] / y]`
/// `∃y ∈ ⋃(M) • p        ⇒  ∃s ∈ M • ∃y ∈ s • p`
///
/// (Only for existential quantifiers — the ∀ forms are reached via the
/// `¬∃` normal form.)
pub struct RangeExtract;

impl Rule for RangeExtract {
    fn name(&self) -> &'static str {
        "range-extract"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Quant {
            q: QuantKind::Exists,
            var: y,
            range,
            pred,
        } = e
        else {
            return None;
        };
        match range.as_ref() {
            Expr::Select {
                var: u,
                pred: q,
                input,
            } => {
                let q_on_y = if u == y {
                    (**q).clone()
                } else {
                    subst(q, u, &Expr::Var(y.clone()))
                };
                Some(Expr::Quant {
                    q: QuantKind::Exists,
                    var: y.clone(),
                    range: input.clone(),
                    pred: Box::new(Expr::And(Box::new(q_on_y), pred.clone())),
                })
            }
            Expr::Map {
                var: u,
                body: g,
                input,
            } => {
                // pick a variable for iterating E that collides with
                // nothing visible in the rewritten predicate (`u` itself is
                // bound and may be reused)
                let mut avoid: FxHashSet<_> = free_vars(e);
                avoid.insert(y.clone());
                let u2 = fresh_name(u, &avoid);
                let g2 = subst(g, u, &Expr::Var(u2.clone()));
                let new_pred = subst(pred, y, &g2);
                Some(Expr::Quant {
                    q: QuantKind::Exists,
                    var: u2,
                    range: input.clone(),
                    pred: Box::new(new_pred),
                })
            }
            Expr::Flatten(inner) => {
                let mut avoid: FxHashSet<_> = free_vars(e);
                avoid.insert(y.clone());
                let s = fresh_name("s", &avoid);
                Some(Expr::Quant {
                    q: QuantKind::Exists,
                    var: s.clone(),
                    range: inner.clone(),
                    pred: Box::new(Expr::Quant {
                        q: QuantKind::Exists,
                        var: y.clone(),
                        range: Box::new(Expr::Var(s)),
                        pred: pred.clone(),
                    }),
                })
            }
            _ => None,
        }
    }
}

/// Rewriting Example 3: exchanges adjacent same-polarity existential
/// quantifiers to move quantification over base tables outward (leftward
/// in the paper's prenex notation):
///
/// `∃a ∈ r₁ • ∃b ∈ r₂ • p  ⇒  ∃b ∈ r₂ • ∃a ∈ r₁ • p`
///
/// when `r₂` is a base table expression, `r₁` is not, and `r₂` does not
/// depend on `a`.
pub struct ExistsExchange;

impl Rule for ExistsExchange {
    fn name(&self) -> &'static str {
        "exists-exchange"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Quant {
            q: QuantKind::Exists,
            var: a,
            range: r1,
            pred: outer_pred,
        } = e
        else {
            return None;
        };
        let Expr::Quant {
            q: QuantKind::Exists,
            var: b,
            range: r2,
            pred: p,
        } = outer_pred.as_ref()
        else {
            return None;
        };
        let r1_is_base = super::is_base_table_expr(r1);
        let r2_is_base = super::is_base_table_expr(r2);
        if r1_is_base || !r2_is_base {
            return None;
        }
        // r2 must not depend on the outer variable
        if is_free_in(a, r2) {
            return None;
        }
        // avoid a/b collision pathology and capture of an outer `b` that
        // r1 might reference
        if a == b || is_free_in(b, r1) {
            return None;
        }
        Some(Expr::Quant {
            q: QuantKind::Exists,
            var: b.clone(),
            range: r2.clone(),
            pred: Box::new(Expr::Quant {
                q: QuantKind::Exists,
                var: a.clone(),
                range: r1.clone(),
                pred: p.clone(),
            }),
        })
    }
}

/// Pulls conjuncts that do not mention the bound variable out of an
/// existential quantifier:
///
/// `∃x ∈ r • (A ∧ B)  ⇒  (∃x ∈ r • A) ∧ B`  when `x ∉ free(B)`
///
/// (sound also for `r = ∅`: both sides are false). This exposes
/// membership shapes like `p.pid ∈ s.parts` to the physical planner after
/// Rule 1 has formed the join.
pub struct QuantSplitIndependent;

impl Rule for QuantSplitIndependent {
    fn name(&self) -> &'static str {
        "quant-split-independent"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        use oodb_adl::expr::{conjoin, conjuncts};
        let Expr::Quant {
            q: QuantKind::Exists,
            var,
            range,
            pred,
        } = e
        else {
            return None;
        };
        let parts = conjuncts(pred);
        if parts.len() < 2 {
            return None;
        }
        let (dep, indep): (Vec<&Expr>, Vec<&Expr>) =
            parts.into_iter().partition(|c| is_free_in(var, c));
        if indep.is_empty() {
            return None;
        }
        let quant = Expr::Quant {
            q: QuantKind::Exists,
            var: var.clone(),
            range: range.clone(),
            pred: Box::new(conjoin(dep.into_iter().cloned().collect())),
        };
        Some(Expr::And(
            Box::new(quant),
            Box::new(conjoin(indep.into_iter().cloned().collect())),
        ))
    }
}

/// `∃x ∈ S • x = k  ⇒  k ∈ S` when `x ∉ free(k)` and `S` mentions no base
/// table — the inverse of the Table 1 membership expansion, applied to
/// *set-valued-attribute* (or hoisted-constant) ranges where the explicit
/// membership form is directly executable (and hash-joinable). The
/// table-mentioning case is excluded to avoid ping-ponging with
/// `setcmp-to-quant`.
pub struct QuantToMember;

impl Rule for QuantToMember {
    fn name(&self) -> &'static str {
        "quant-to-member"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Quant {
            q: QuantKind::Exists,
            var,
            range,
            pred,
        } = e
        else {
            return None;
        };
        if range.mentions_table() {
            return None;
        }
        let Expr::Cmp(oodb_value::CmpOp::Eq, a, b) = pred.as_ref() else {
            return None;
        };
        let key = match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), other) if v == var && !is_free_in(var, other) => other,
            (other, Expr::Var(v)) if v == var && !is_free_in(var, other) => other,
            _ => return None,
        };
        Some(Expr::SetCmp(
            oodb_value::SetCmpOp::In,
            Box::new(key.clone()),
            range.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn apply(rule: &dyn Rule, e: &Expr) -> Option<Expr> {
        let cat = supplier_part_catalog();
        rule.apply(e, &RewriteCtx { catalog: &cat })
    }

    #[test]
    fn split_pulls_independent_conjuncts() {
        // ∃x ∈ s.parts • (x = p.pid ∧ p.color = red)
        let e = exists(
            "x",
            var("s").field("parts"),
            and(
                eq(var("x"), var("p").field("pid")),
                eq(var("p").field("color"), str_lit("red")),
            ),
        );
        let out = apply(&QuantSplitIndependent, &e).unwrap();
        assert_eq!(
            out,
            and(
                exists(
                    "x",
                    var("s").field("parts"),
                    eq(var("x"), var("p").field("pid"))
                ),
                eq(var("p").field("color"), str_lit("red"))
            )
        );
        // all conjuncts dependent: no split
        let dep = exists(
            "x",
            var("s").field("parts"),
            and(eq(var("x"), int(1)), gt(var("x"), int(0))),
        );
        assert!(apply(&QuantSplitIndependent, &dep).is_none());
    }

    #[test]
    fn quant_to_member_collapses() {
        let e = exists(
            "x",
            var("s").field("parts"),
            eq(var("x"), var("p").field("pid")),
        );
        let out = apply(&QuantToMember, &e).unwrap();
        assert_eq!(out, member(var("p").field("pid"), var("s").field("parts")));
        // flipped equality
        let e2 = exists(
            "x",
            var("s").field("parts"),
            eq(var("p").field("pid"), var("x")),
        );
        assert_eq!(apply(&QuantToMember, &e2).unwrap(), out);
        // table ranges are left for Rule 1 (avoid ping-pong)
        let e3 = exists("y", table("PART"), eq(var("y"), var("k")));
        assert!(apply(&QuantToMember, &e3).is_none());
        // key must not use the bound variable
        let e4 = exists("x", var("s").field("parts"), eq(var("x"), var("x")));
        assert!(apply(&QuantToMember, &e4).is_none());
    }

    #[test]
    fn select_range_extraction() {
        // ∃y ∈ σ[y:q](Y) • y = x.c  ⇒  ∃y ∈ Y • q ∧ y = x.c
        let e = exists(
            "y",
            select("y", var("q"), table("Y")),
            eq(var("y"), var("x").field("c")),
        );
        let out = apply(&RangeExtract, &e).unwrap();
        assert_eq!(
            out,
            exists(
                "y",
                table("Y"),
                and(var("q"), eq(var("y"), var("x").field("c")))
            )
        );
    }

    #[test]
    fn select_range_with_different_var_renames() {
        let e = exists(
            "y",
            select("u", eq(var("u").field("a"), int(1)), table("Y")),
            Expr::true_(),
        );
        let out = apply(&RangeExtract, &e).unwrap();
        assert_eq!(
            out,
            exists(
                "y",
                table("Y"),
                and(eq(var("y").field("a"), int(1)), Expr::true_())
            )
        );
    }

    #[test]
    fn map_range_substitutes_body() {
        // ∃y ∈ α[t : t.parts](S) • x ∈ y  ⇒  ∃t ∈ S • x ∈ t.parts
        let e = exists(
            "y",
            map("t", var("t").field("parts"), table("SUPPLIER")),
            member(var("x"), var("y")),
        );
        let out = apply(&RangeExtract, &e).unwrap();
        assert_eq!(
            out,
            exists(
                "t",
                table("SUPPLIER"),
                member(var("x"), var("t").field("parts"))
            )
        );
    }

    #[test]
    fn flatten_range_splits_into_two_quantifiers() {
        let e = exists("y", flatten(var("m")), eq(var("y"), int(1)));
        let out = apply(&RangeExtract, &e).unwrap();
        assert_eq!(
            out,
            exists("s", var("m"), exists("y", var("s"), eq(var("y"), int(1))))
        );
    }

    #[test]
    fn forall_ranges_not_touched() {
        let e = forall("y", select("y", var("q"), table("Y")), var("p"));
        assert!(apply(&RangeExtract, &e).is_none());
    }

    #[test]
    fn exchange_moves_base_table_outward() {
        // ∃z ∈ x.c • ∃p ∈ PART • φ  ⇒  ∃p ∈ PART • ∃z ∈ x.c • φ
        let e = exists(
            "z",
            var("x").field("c"),
            exists("p", table("PART"), eq(var("z"), var("p").field("pid"))),
        );
        let out = apply(&ExistsExchange, &e).unwrap();
        assert_eq!(
            out,
            exists(
                "p",
                table("PART"),
                exists(
                    "z",
                    var("x").field("c"),
                    eq(var("z"), var("p").field("pid"))
                )
            )
        );
        // and it does not fire again (outer is now the base table)
        assert!(apply(&ExistsExchange, &out).is_none());
    }

    #[test]
    fn exchange_requires_independence() {
        // inner range depends on the outer variable: no exchange
        let e = exists(
            "z",
            var("x").field("cs"),
            exists(
                "p",
                select(
                    "p",
                    member(var("z"), var("p").field("parts")),
                    table("SUPPLIER"),
                ),
                Expr::true_(),
            ),
        );
        assert!(apply(&ExistsExchange, &e).is_none());
    }

    use oodb_adl::expr::Expr;
}

//! Rule 1 — unnesting quantifier expressions (§5.2.1).
//!
//! > **Rule 1** Let X and Y be table expressions, and let x not be free
//! > in Y, then:
//! >
//! > 1. `σ[x : ∃y ∈ Y • p](X) ≡ X ⋉_{x,y:p} Y`
//! > 2. `σ[x : ¬∃y ∈ Y • p](X) ≡ X ▷_{x,y:p} Y`
//!
//! "A nested query with existential quantification is translated into a
//! semijoin operation; negated existential (i.e. universal) quantification
//! is dealt with by means of the antijoin operator."
//!
//! The rule also fires when the quantifier is one conjunct of a larger
//! predicate: the remaining conjuncts stay in a selection around the join.

use super::{RewriteCtx, Rule};
use oodb_adl::expr::{conjoin, conjuncts, Expr, JoinKind, QuantKind};
use oodb_adl::vars::is_free_in;

/// Shared driver for both halves of Rule 1.
fn unnest_select(e: &Expr, want_negated: bool) -> Option<Expr> {
    let Expr::Select {
        var: x,
        pred,
        input,
    } = e
    else {
        return None;
    };
    let parts = conjuncts(pred);
    // find the first conjunct of the requested shape with a base-table range
    let (idx, y, range, inner_pred) = parts.iter().enumerate().find_map(|(i, c)| {
        let (quant, negated) = match c {
            Expr::Not(q) => (q.as_ref(), true),
            q => (*q, false),
        };
        if negated != want_negated {
            return None;
        }
        let Expr::Quant {
            q: QuantKind::Exists,
            var: y,
            range,
            pred: p,
        } = quant
        else {
            return None;
        };
        if !super::is_base_table_expr(range) {
            return None;
        }
        // "let x not be free in Y" — implied by closedness, but keep
        // the check explicit for hand-built ranges
        if is_free_in(x, range) {
            return None;
        }
        Some((i, y.clone(), (**range).clone(), (**p).clone()))
    })?;

    // the bound variables must be distinct for a two-variable join lambda
    if *x == y {
        return None;
    }

    let rest: Vec<Expr> = parts
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, c)| (*c).clone())
        .collect();
    let join = Expr::Join {
        kind: if want_negated {
            JoinKind::Anti
        } else {
            JoinKind::Semi
        },
        lvar: x.clone(),
        rvar: y,
        pred: Box::new(inner_pred),
        left: input.clone(),
        right: Box::new(range),
    };
    if rest.is_empty() {
        Some(join)
    } else {
        Some(Expr::Select {
            var: x.clone(),
            pred: Box::new(conjoin(rest)),
            input: Box::new(join),
        })
    }
}

/// Rule 1.1: existential quantification over a base table → semijoin.
pub struct UnnestExists;

impl Rule for UnnestExists {
    fn name(&self) -> &'static str {
        "rule1-exists"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        unnest_select(e, false)
    }
}

/// Rule 1.2: negated existential quantification → antijoin.
pub struct UnnestNotExists;

impl Rule for UnnestNotExists {
    fn name(&self) -> &'static str {
        "rule1-not-exists"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        unnest_select(e, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn apply(rule: &dyn Rule, e: &Expr) -> Option<Expr> {
        let cat = supplier_part_catalog();
        rule.apply(e, &RewriteCtx { catalog: &cat })
    }

    #[test]
    fn exists_becomes_semijoin() {
        // σ[x : ∃y ∈ Y • p](X) ⇒ X ⋉_{x,y:p} Y
        let p = eq(var("y"), var("x").field("c"));
        let e = select("x", exists("y", table("Y"), p.clone()), table("X"));
        let out = apply(&UnnestExists, &e).unwrap();
        assert_eq!(out, semijoin("x", "y", p, table("X"), table("Y")));
    }

    #[test]
    fn not_exists_becomes_antijoin() {
        let p = eq(var("y"), var("x").field("c"));
        let e = select("x", not(exists("y", table("Y"), p.clone())), table("X"));
        let out = apply(&UnnestNotExists, &e).unwrap();
        assert_eq!(out, antijoin("x", "y", p, table("X"), table("Y")));
        // the positive rule must not fire on the negated form
        let e2 = select("x", not(exists("y", table("Y"), Expr::true_())), table("X"));
        assert!(apply(&UnnestExists, &e2).is_none());
    }

    #[test]
    fn extra_conjuncts_stay_in_selection() {
        let quant = exists("y", table("Y"), eq(var("y"), var("x").field("c")));
        let other = gt(var("x").field("n"), int(3));
        let e = select("x", and(other.clone(), quant), table("X"));
        let out = apply(&UnnestExists, &e).unwrap();
        let expected = select(
            "x",
            other,
            semijoin(
                "x",
                "y",
                eq(var("y"), var("x").field("c")),
                table("X"),
                table("Y"),
            ),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn set_attribute_range_is_left_nested() {
        // σ[x : ∃z ∈ x.c • p](X) stays — iteration over a clustered
        // set-valued attribute must not be unnested (paper §3)
        let e = select(
            "x",
            exists("z", var("x").field("c"), eq(var("z"), int(1))),
            table("X"),
        );
        assert!(apply(&UnnestExists, &e).is_none());
    }

    #[test]
    fn correlated_range_not_unnested() {
        // range σ[y : y.a = x.a](Y) references x — Rule 1 does not apply
        let e = select(
            "x",
            exists(
                "y",
                select(
                    "y",
                    eq(var("y").field("a"), var("x").field("a")),
                    table("Y"),
                ),
                Expr::true_(),
            ),
            table("X"),
        );
        assert!(apply(&UnnestExists, &e).is_none());
    }

    #[test]
    fn selected_base_table_range_is_fine() {
        // range σ[y : y.color = red](PART) is a closed table expression
        let range = select(
            "y",
            eq(var("y").field("color"), str_lit("red")),
            table("PART"),
        );
        let e = select(
            "x",
            exists(
                "y",
                range.clone(),
                member(var("y").field("pid"), var("x").field("parts")),
            ),
            table("SUPPLIER"),
        );
        let out = apply(&UnnestExists, &e).unwrap();
        assert!(matches!(
            out,
            Expr::Join {
                kind: JoinKind::Semi,
                ..
            }
        ));
    }

    #[test]
    fn chained_quantifiers_unnest_one_at_a_time() {
        let q1 = exists("y", table("Y"), eq(var("y"), var("x").field("a")));
        let q2 = exists(
            "w",
            table("PART"),
            eq(var("w").field("pid"), var("x").field("b")),
        );
        let e = select("x", and(q1, q2.clone()), table("X"));
        let once = apply(&UnnestExists, &e).unwrap();
        // first quantifier became a semijoin, second still pending
        let Expr::Select { pred, input, .. } = &once else {
            panic!("{once}")
        };
        assert_eq!(**pred, q2);
        assert!(matches!(
            input.as_ref(),
            Expr::Join {
                kind: JoinKind::Semi,
                ..
            }
        ));
        let twice = apply(&UnnestExists, &once).unwrap();
        assert!(matches!(
            twice,
            Expr::Join {
                kind: JoinKind::Semi,
                ..
            }
        ));
    }

    use oodb_adl::expr::Expr;
}

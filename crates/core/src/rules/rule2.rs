//! Rule 2 — nesting in the map operator (§5.3).
//!
//! > **Rule 2** `⋃(α[x : α[y : x ∘ y](σ[y : p])(Y)](X)) ≡ X ⋈_{x,y:p} Y`
//!
//! "The nested map operation on the left hand side creates a set of sets
//! that is flattened immediately afterwards; the same result is achieved
//! by the right hand join expression."

use super::{RewriteCtx, Rule};
use oodb_adl::expr::{Expr, JoinKind};
use oodb_adl::vars::is_free_in;

/// The Rule 2 rewrite.
pub struct MapJoin;

impl Rule for MapJoin {
    fn name(&self) -> &'static str {
        "rule2-map-join"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Flatten(inner) = e else { return None };
        let Expr::Map {
            var: x,
            body,
            input: left,
        } = inner.as_ref()
        else {
            return None;
        };
        let Expr::Map {
            var: y,
            body: concat,
            input: right,
        } = body.as_ref()
        else {
            return None;
        };
        // the inner body must be exactly x ∘ y (in either order — tuple
        // concatenation is commutative in our canonical representation)
        let Expr::Concat(a, b) = concat.as_ref() else {
            return None;
        };
        let is_xy = matches!(
            (a.as_ref(), b.as_ref()),
            (Expr::Var(va), Expr::Var(vb)) if (va == x && vb == y) || (va == y && vb == x)
        );
        if !is_xy || x == y {
            return None;
        }
        // split an optional selection off the right operand
        let (pred, base) = match right.as_ref() {
            Expr::Select {
                var: sv,
                pred,
                input: base,
            } => {
                let p = if sv == y {
                    (**pred).clone()
                } else {
                    oodb_adl::subst(pred, sv, &Expr::Var(y.clone()))
                };
                (p, (**base).clone())
            }
            other => (Expr::true_(), other.clone()),
        };
        // the right operand must not depend on x (x not free in Y)
        if is_free_in(x, &base) {
            return None;
        }
        Some(Expr::Join {
            kind: JoinKind::Inner,
            lvar: x.clone(),
            rvar: y.clone(),
            pred: Box::new(pred),
            left: left.clone(),
            right: Box::new(base),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn apply(e: &Expr) -> Option<Expr> {
        let cat = supplier_part_catalog();
        MapJoin.apply(e, &RewriteCtx { catalog: &cat })
    }

    #[test]
    fn rule2_matches_the_paper() {
        // ⋃(α[x : α[y : x∘y](σ[y : p](Y))](X)) ⇒ X ⋈_{x,y:p} Y
        let p = eq(var("x").field("a"), var("y").field("d"));
        let e = flatten(map(
            "x",
            map(
                "y",
                concat(var("x"), var("y")),
                select("y", p.clone(), table("Y")),
            ),
            table("X"),
        ));
        let out = apply(&e).unwrap();
        assert_eq!(out, join("x", "y", p, table("X"), table("Y")));
    }

    #[test]
    fn without_selection_pred_is_true() {
        let e = flatten(map(
            "x",
            map("y", concat(var("x"), var("y")), table("Y")),
            table("X"),
        ));
        let out = apply(&e).unwrap();
        assert_eq!(out, join("x", "y", Expr::true_(), table("X"), table("Y")));
    }

    #[test]
    fn flipped_concat_accepted() {
        let e = flatten(map(
            "x",
            map("y", concat(var("y"), var("x")), table("Y")),
            table("X"),
        ));
        assert!(apply(&e).is_some());
    }

    #[test]
    fn correlated_right_operand_rejected() {
        // Y depends on x (a set-valued attribute): must stay nested
        let e = flatten(map(
            "x",
            map("y", concat(var("x"), var("y")), var("x").field("cs")),
            table("X"),
        ));
        assert!(apply(&e).is_none());
    }

    #[test]
    fn other_bodies_rejected() {
        let e = flatten(map("x", map("y", var("y"), table("Y")), table("X")));
        assert!(apply(&e).is_none());
    }

    use oodb_adl::expr::Expr;
}

//! The nestjoin rewrites (§6.1) — grouping during join.
//!
//! For the general two-block formats that flat relational operators cannot
//! express without losing dangling tuples:
//!
//! * where-clause nesting:
//!   `σ[x : P(x, Y')](X)` with `Y' = α[y : G](σ[y : Q(x,y)](Y))`
//!   `⇒ π_{SCH(X)}(σ[z : P'](X ⊣_{x,y : Q; G; ys} Y))`
//! * select-clause nesting:
//!   `α[x : F(x, Y')](X) ⇒ α[z : F'](X ⊣_{x,y : Q; G; ys} Y)`
//!
//! where `P' = P[Y' → z.ys]` (and whole-tuple uses of `x` become
//! `z[SCH(X)]`). "Instead of producing the concatenation of every pair of
//! matching tuples, each left operand tuple is concatenated with the set
//! of matching right operand tuples" — dangling left tuples keep `∅`, so
//! no Complex Object bug arises.

use super::{replace_subexpr, split_subquery, uses_whole_var, RewriteCtx, Rule, Subquery};
use oodb_adl::expr::Expr;
use oodb_adl::infer_closed;
use oodb_adl::vars::{free_vars, fresh_name, is_free_in};
use oodb_value::fxhash::FxHashSet;
use oodb_value::Name;

/// Finds a correlated base-table subquery inside an iterator parameter.
///
/// The subquery must (1) decompose as `α[y:G](σ[y:Q](Y))`, (2) have a
/// *closed* base-table operand `Y`, (3) be correlated with exactly the
/// iterator variable `x` (uncorrelated operands are hoisted constants,
/// other variables would escape their scope).
fn find_subquery(param: &Expr, x: &str) -> Option<(Expr, Subquery)> {
    // candidate positions: any descendant that splits as a subquery
    fn walk(e: &Expr, x: &str, out: &mut Option<(Expr, Subquery)>) {
        if out.is_some() {
            return;
        }
        if let Some(sq) = split_subquery(e) {
            let fv = free_vars(e);
            let correlated = fv.iter().any(|n| n.as_ref() == x);
            let only_x = fv.iter().all(|n| n.as_ref() == x);
            if correlated && only_x && super::is_base_table_expr(&sq.base) {
                *out = Some((e.clone(), sq));
                return;
            }
        }
        e.for_each_child(&mut |c| walk(c, x, out));
    }
    let mut found = None;
    walk(param, x, &mut found);
    found
}

/// Builds the nestjoin node plus the parameter rewrite shared by both
/// rules. Returns `(nestjoin, new_param, needs_subscript)`.
fn build(
    x: &Name,
    param: &Expr,
    occurrence: &Expr,
    sq: Subquery,
    input: &Expr,
    ctx: &RewriteCtx<'_>,
) -> Option<(Expr, Expr, Vec<Name>)> {
    // SCH(X) for the final projection / whole-tuple subscription
    let input_ty = infer_closed(input, ctx.catalog).ok()?;
    let sch = input_ty.sch()?;
    // fresh group attribute
    let mut avoid: FxHashSet<Name> = sch.iter().cloned().collect();
    avoid.extend(free_vars(param));
    let ys = fresh_name("ys", &avoid);
    // the nestjoin's right variable must differ from x
    let y = if sq.var == *x {
        let mut avoid2 = avoid.clone();
        avoid2.insert(x.clone());
        fresh_name("y", &avoid2)
    } else {
        sq.var.clone()
    };
    let (pred, gfunc) = if y == sq.var {
        (sq.pred, sq.gfunc)
    } else {
        let renamed_pred = oodb_adl::subst(&sq.pred, &sq.var, &Expr::Var(y.clone()));
        let renamed_g = sq
            .gfunc
            .map(|g| oodb_adl::subst(&g, &sq.var, &Expr::Var(y.clone())));
        (renamed_pred, renamed_g)
    };
    // Q must not smuggle the group attribute in some other way: it may
    // reference x and y only (checked by find_subquery via free vars).
    let nj = Expr::NestJoin {
        lvar: x.clone(),
        rvar: y,
        pred: Box::new(pred),
        rfunc: gfunc.map(Box::new),
        as_attr: ys.clone(),
        left: Box::new(input.clone()),
        right: Box::new(sq.base),
    };
    // P' : the subquery occurrence becomes x.ys …
    let ys_ref = Expr::Field(Box::new(Expr::Var(x.clone())), ys.clone());
    let mut new_param = replace_subexpr(param, occurrence, &ys_ref);
    // … and whole-tuple uses of x become x[SCH(X)]
    if uses_whole_var(&new_param, x) {
        new_param = subst_whole_var(&new_param, x, &sch);
    }
    Some((nj, new_param, sch))
}

/// Replaces whole-tuple uses of `v` by `v[attrs]`, leaving `v.a` accesses
/// untouched.
fn subst_whole_var(e: &Expr, v: &str, attrs: &[Name]) -> Expr {
    match e {
        Expr::Var(n) if n.as_ref() == v => Expr::TupleProject(Box::new(e.clone()), attrs.to_vec()),
        Expr::Field(base, a) => {
            if matches!(base.as_ref(), Expr::Var(n) if n.as_ref() == v) {
                e.clone()
            } else {
                Expr::Field(Box::new(subst_whole_var(base, v, attrs)), a.clone())
            }
        }
        Expr::TupleProject(base, ns) => {
            if matches!(base.as_ref(), Expr::Var(n) if n.as_ref() == v) {
                e.clone()
            } else {
                Expr::TupleProject(Box::new(subst_whole_var(base, v, attrs)), ns.clone())
            }
        }
        // binders that shadow v stop the substitution
        Expr::Map { var, .. }
        | Expr::Select { var, .. }
        | Expr::Quant { var, .. }
        | Expr::Let { var, .. }
            if var.as_ref() == v =>
        {
            // only the non-scoped children may still see v; conservative:
            // the input/range/value of these binders is handled by the
            // generic recursion below when names differ, so for a shadowing
            // binder we only recurse into the operand position.
            match e {
                Expr::Map { var, body, input } => Expr::Map {
                    var: var.clone(),
                    body: body.clone(),
                    input: Box::new(subst_whole_var(input, v, attrs)),
                },
                Expr::Select { var, pred, input } => Expr::Select {
                    var: var.clone(),
                    pred: pred.clone(),
                    input: Box::new(subst_whole_var(input, v, attrs)),
                },
                Expr::Quant {
                    q,
                    var,
                    range,
                    pred,
                } => Expr::Quant {
                    q: *q,
                    var: var.clone(),
                    range: Box::new(subst_whole_var(range, v, attrs)),
                    pred: pred.clone(),
                },
                Expr::Let { var, value, body } => Expr::Let {
                    var: var.clone(),
                    value: Box::new(subst_whole_var(value, v, attrs)),
                    body: body.clone(),
                },
                _ => unreachable!(),
            }
        }
        other => other
            .clone()
            .map_children(&mut |c| subst_whole_var(&c, v, attrs)),
    }
}

/// Nestjoin rewrite for nesting in the **where-clause**.
pub struct NestJoinSelect;

impl Rule for NestJoinSelect {
    fn name(&self) -> &'static str {
        "nestjoin-select"
    }

    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Select {
            var: x,
            pred,
            input,
        } = e
        else {
            return None;
        };
        let (occurrence, sq) = find_subquery(pred, x)?;
        let (nj, new_pred, sch) = build(x, pred, &occurrence, sq, input, ctx)?;
        Some(Expr::Project {
            attrs: sch,
            input: Box::new(Expr::Select {
                var: x.clone(),
                pred: Box::new(new_pred),
                input: Box::new(nj),
            }),
        })
    }
}

/// Nestjoin rewrite for nesting in the **select-clause** (Example
/// Queries 1 and 6).
pub struct NestJoinMap;

impl Rule for NestJoinMap {
    fn name(&self) -> &'static str {
        "nestjoin-map"
    }

    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Map {
            var: x,
            body,
            input,
        } = e
        else {
            return None;
        };
        // don't touch maps whose input still carries an unnested selection
        // with base-table subqueries: the select-side rules go first
        if let Expr::Select { pred, .. } = input.as_ref() {
            if is_free_in(x, pred) {
                // (cannot actually happen — x is not in scope — but keep
                // planning deterministic when shadowing names collide)
                return None;
            }
        }
        let (occurrence, sq) = find_subquery(body, x)?;
        let (nj, new_body, _) = build(x, body, &occurrence, sq, input, ctx)?;
        Some(Expr::Map {
            var: x.clone(),
            body: Box::new(new_body),
            input: Box::new(nj),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::{figure12_db, supplier_part_catalog};
    use oodb_value::SetCmpOp;

    fn ctx_catalog() -> oodb_catalog::Catalog {
        supplier_part_catalog()
    }

    #[test]
    fn figure1_query_rewrites_to_nestjoin() {
        // σ[x : x.c ⊆ α[y : y.e](σ[y : x.a = y.d](Y))](X)
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        let sub = map(
            "y",
            var("y").field("e"),
            select(
                "y",
                eq(var("x").field("a"), var("y").field("d")),
                table("Y"),
            ),
        );
        let e = select(
            "x",
            set_cmp(SetCmpOp::SubsetEq, var("x").field("c"), sub),
            table("X"),
        );
        let out = NestJoinSelect.apply(&e, &ctx).unwrap();
        // π_{a,c,xid}(σ[x : x.c ⊆ x.ys](X ⊣_{x,y : x.a = y.d; y.e; ys} Y))
        let Expr::Project { attrs, input } = &out else {
            panic!("{out}")
        };
        assert!(attrs.iter().any(|a| a.as_ref() == "c"));
        let Expr::Select {
            pred, input: nj, ..
        } = input.as_ref()
        else {
            panic!("{out}")
        };
        assert_eq!(
            **pred,
            set_cmp(
                SetCmpOp::SubsetEq,
                var("x").field("c"),
                var("x").field("ys")
            )
        );
        let Expr::NestJoin {
            pred: q,
            rfunc,
            as_attr,
            ..
        } = nj.as_ref()
        else {
            panic!("{out}")
        };
        assert_eq!(**q, eq(var("x").field("a"), var("y").field("d")));
        assert_eq!(*rfunc.as_ref().unwrap().as_ref(), var("y").field("e"));
        assert_eq!(as_attr.as_ref(), "ys");
    }

    #[test]
    fn example_query6_rewrites_to_nestjoin_map() {
        // α[s : ⟨sname = s.sname, partssuppl = σ[p : p.pid ∈ s.parts](PART)⟩](SUPPLIER)
        let cat = ctx_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let sub = select(
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            table("PART"),
        );
        let e = map(
            "s",
            tuple(vec![
                ("sname", var("s").field("sname")),
                ("partssuppl", sub),
            ]),
            table("SUPPLIER"),
        );
        let out = NestJoinMap.apply(&e, &ctx).unwrap();
        let Expr::Map { body, input, .. } = &out else {
            panic!("{out}")
        };
        assert!(matches!(input.as_ref(), Expr::NestJoin { .. }));
        assert_eq!(
            **body,
            tuple(vec![
                ("sname", var("s").field("sname")),
                ("partssuppl", var("s").field("ys")),
            ])
        );
    }

    #[test]
    fn uncorrelated_subquery_is_not_a_nestjoin_case() {
        let cat = ctx_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let sub = select(
            "p",
            eq(var("p").field("color"), str_lit("red")),
            table("PART"),
        );
        let e = select(
            "s",
            set_cmp(SetCmpOp::SubsetEq, var("s").field("parts"), sub),
            table("SUPPLIER"),
        );
        assert!(NestJoinSelect.apply(&e, &ctx).is_none());
    }

    #[test]
    fn set_attribute_subqueries_stay_nested() {
        // Y' ranges over a set-valued attribute — no base table, no ⊣
        let cat = ctx_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let sub = select("z", gt(var("z"), int(1)), var("s").field("parts"));
        let e = select(
            "s",
            set_cmp(SetCmpOp::SetEq, var("s").field("parts"), sub),
            table("SUPPLIER"),
        );
        assert!(NestJoinSelect.apply(&e, &ctx).is_none());
    }

    #[test]
    fn whole_tuple_use_gets_subscripted() {
        // P compares x itself: P' must reference x[SCH(X)]
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        let sub = select(
            "y",
            eq(var("x").field("a"), var("y").field("d")),
            table("Y"),
        );
        let e = select("x", member(var("x"), sub), table("X"));
        let out = NestJoinSelect.apply(&e, &ctx).unwrap();
        let Expr::Project { input, .. } = &out else {
            panic!("{out}")
        };
        let Expr::Select { pred, .. } = input.as_ref() else {
            panic!("{out}")
        };
        let Expr::SetCmp(SetCmpOp::In, lhs, _) = pred.as_ref() else {
            panic!("{out}")
        };
        assert!(matches!(lhs.as_ref(), Expr::TupleProject(..)));
    }

    #[test]
    fn fresh_group_attribute_avoids_collisions() {
        // X already has an attribute named ys? — here: use variables named
        // ys in the predicate to force ys_1
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        let sub = select(
            "y",
            eq(var("x").field("a"), var("y").field("d")),
            table("Y"),
        );
        let e = select(
            "x",
            and(
                eq(var("ys"), var("ys")),
                set_cmp(SetCmpOp::SubsetEq, var("x").field("c"), sub),
            ),
            table("X"),
        );
        let out = NestJoinSelect.apply(&e, &ctx).unwrap();
        let Expr::Project { input, .. } = &out else {
            panic!("{out}")
        };
        let Expr::Select { input: nj, .. } = input.as_ref() else {
            panic!("{out}")
        };
        let Expr::NestJoin { as_attr, .. } = nj.as_ref() else {
            panic!("{out}")
        };
        assert_eq!(as_attr.as_ref(), "ys_1");
    }

    use oodb_adl::expr::Expr;
}

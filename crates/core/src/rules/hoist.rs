//! Uncorrelated subquery hoisting.
//!
//! "Of course the goal of unnesting applies to correlated subqueries only;
//! uncorrelated subqueries simply are constants, and treated as such"
//! (paper §3). A closed, base-table-reading subquery appearing as an
//! operand of a comparison/aggregate/set operation inside an iterator
//! parameter is pulled out into a `let` binding wrapping the iterator, so
//! it is evaluated once instead of once per outer tuple.
//!
//! Quantifier **ranges** are deliberately not hoisted: those are exactly
//! the shapes Rule 1 turns into semijoins/antijoins, which the planner
//! implements with hash algorithms — better than a per-tuple membership
//! scan against a hoisted constant.

use super::{replace_subexpr, RewriteCtx, Rule};
use oodb_adl::expr::Expr;
use oodb_adl::vars::{free_vars, fresh_name};
use oodb_value::fxhash::FxHashSet;
use oodb_value::Name;

/// Hoists closed base-table subqueries out of `σ`/`α` parameters.
pub struct HoistUncorrelated;

impl Rule for HoistUncorrelated {
    fn name(&self) -> &'static str {
        "hoist-uncorrelated"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        let (param, rebuild): (&Expr, Box<dyn Fn(Expr) -> Expr>) = match e {
            Expr::Select { var, pred, input } => {
                let (var, input) = (var.clone(), input.clone());
                (
                    pred,
                    Box::new(move |p| Expr::Select {
                        var: var.clone(),
                        pred: Box::new(p),
                        input: input.clone(),
                    }),
                )
            }
            Expr::Map { var, body, input } => {
                let (var, input) = (var.clone(), input.clone());
                (
                    body,
                    Box::new(move |b| Expr::Map {
                        var: var.clone(),
                        body: Box::new(b),
                        input: input.clone(),
                    }),
                )
            }
            _ => return None,
        };
        let target = find_hoistable(param)?;
        let mut avoid: FxHashSet<Name> = free_vars(e);
        avoid.extend(free_vars(param));
        let v = fresh_name("sub", &avoid);
        let new_param = replace_subexpr(param, &target, &Expr::Var(v.clone()));
        Some(Expr::Let {
            var: v,
            value: Box::new(target),
            body: Box::new(rebuild(new_param)),
        })
    }
}

/// Finds the first hoistable subquery in an *operand* position (operands
/// of comparisons, set comparisons, set operations, arithmetic and
/// aggregates — not quantifier ranges, not iterator inputs).
fn find_hoistable(e: &Expr) -> Option<Expr> {
    fn hoistable(e: &Expr) -> bool {
        let shape = matches!(
            e,
            Expr::Select { .. }
                | Expr::Map { .. }
                | Expr::Flatten(_)
                | Expr::Project { .. }
                | Expr::Rename { .. }
                | Expr::Unnest { .. }
                | Expr::Nest { .. }
                | Expr::Join { .. }
                | Expr::NestJoin { .. }
                | Expr::Product(..)
                | Expr::Div(..)
                | Expr::SetOp(..)
                | Expr::Agg(..)
        );
        shape && e.mentions_table() && free_vars(e).is_empty()
    }
    fn walk(e: &Expr) -> Option<Expr> {
        match e {
            Expr::Cmp(_, a, b)
            | Expr::SetCmp(_, a, b)
            | Expr::SetOp(_, a, b)
            | Expr::Arith(_, a, b) => {
                for side in [a, b] {
                    if hoistable(side) {
                        return Some((**side).clone());
                    }
                }
                walk(a).or_else(|| walk(b))
            }
            Expr::Agg(_, inner) => {
                if hoistable(inner) {
                    return Some((**inner).clone());
                }
                walk(inner)
            }
            Expr::And(a, b) | Expr::Or(a, b) => walk(a).or_else(|| walk(b)),
            Expr::Not(inner) => walk(inner),
            // descend into quantifier predicates but not their ranges
            Expr::Quant { pred, .. } => walk(pred),
            _ => None,
        }
    }
    walk(e)
}

/// Floats a `let` with a **closed** bound value out of an iterator
/// parameter, so hoisted constants keep rising until they sit above every
/// enclosing loop:
///
/// `α[x : let v = C in b](X) ⇒ let v = C in α[x : b](X)` (same for `σ`
/// predicates and quantifier bodies), provided `C` is closed and `v` does
/// not collide with the iterator's variable or operand.
pub struct LetUp;

impl Rule for LetUp {
    fn name(&self) -> &'static str {
        "let-up"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        // extract (iterator-var, let-node, rebuild-with-new-param)
        let (ivar, param, rebuild): (&Name, &Expr, Box<dyn Fn(Expr) -> Expr>) = match e {
            Expr::Select { var, pred, input } => {
                let (v, i) = (var.clone(), input.clone());
                (
                    var,
                    pred,
                    Box::new(move |p| Expr::Select {
                        var: v.clone(),
                        pred: Box::new(p),
                        input: i.clone(),
                    }),
                )
            }
            Expr::Map { var, body, input } => {
                let (v, i) = (var.clone(), input.clone());
                (
                    var,
                    body,
                    Box::new(move |b| Expr::Map {
                        var: v.clone(),
                        body: Box::new(b),
                        input: i.clone(),
                    }),
                )
            }
            Expr::Quant {
                q,
                var,
                range,
                pred,
            } => {
                let (qq, v, r) = (*q, var.clone(), range.clone());
                (
                    var,
                    pred,
                    Box::new(move |p| Expr::Quant {
                        q: qq,
                        var: v.clone(),
                        range: r.clone(),
                        pred: Box::new(p),
                    }),
                )
            }
            _ => return None,
        };
        let Expr::Let {
            var: lv,
            value,
            body,
        } = param
        else {
            return None;
        };
        if !free_vars(value).is_empty() || lv == ivar {
            return None;
        }
        Some(Expr::Let {
            var: lv.clone(),
            value: value.clone(),
            body: Box::new(rebuild((**body).clone())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn apply(e: &Expr) -> Option<Expr> {
        let cat = supplier_part_catalog();
        HoistUncorrelated.apply(e, &RewriteCtx { catalog: &cat })
    }

    #[test]
    fn hoists_uncorrelated_setcmp_operand() {
        // Example Query 3.1 shape: the s1-parts subquery is closed
        let sub = flatten(map(
            "t",
            var("t").field("parts"),
            select(
                "t",
                eq(var("t").field("sname"), str_lit("s1")),
                table("SUPPLIER"),
            ),
        ));
        let e = select(
            "s",
            set_cmp(
                oodb_value::SetCmpOp::SupersetEq,
                var("s").field("parts"),
                sub.clone(),
            ),
            table("SUPPLIER"),
        );
        let out = apply(&e).unwrap();
        let Expr::Let { var, value, body } = &out else {
            panic!("{out}")
        };
        assert_eq!(var.as_ref(), "sub");
        assert_eq!(**value, sub);
        // the body's predicate now references the binding
        let Expr::Select { pred, .. } = body.as_ref() else {
            panic!("{body}")
        };
        assert!(!pred.mentions_table());
        // firing again finds nothing
        assert!(apply(body).is_none());
    }

    #[test]
    fn correlated_subquery_not_hoisted() {
        // Figure 1's subquery references x — not a constant
        let sub = select(
            "y",
            eq(var("x").field("a"), var("y").field("d")),
            table("Y"),
        );
        let e = select(
            "x",
            set_cmp(oodb_value::SetCmpOp::SubsetEq, var("x").field("c"), sub),
            table("X"),
        );
        assert!(apply(&e).is_none());
    }

    #[test]
    fn quantifier_ranges_left_for_rule1() {
        let e = select(
            "s",
            exists(
                "p",
                select(
                    "p",
                    eq(var("p").field("color"), str_lit("red")),
                    table("PART"),
                ),
                member(var("p").field("pid"), var("s").field("parts")),
            ),
            table("SUPPLIER"),
        );
        assert!(apply(&e).is_none());
    }

    #[test]
    fn hoists_aggregate_operand() {
        let e = select(
            "s",
            gt(count(table("PART")), count(var("s").field("parts"))),
            table("SUPPLIER"),
        );
        let out = apply(&e).unwrap();
        let Expr::Let { value, .. } = &out else {
            panic!("{out}")
        };
        assert_eq!(**value, count(table("PART")));
    }

    #[test]
    fn hoists_from_map_bodies() {
        let sub = map("p", var("p").field("pid"), table("PART"));
        let e = map(
            "s",
            set_op(
                oodb_adl::SetOp::Intersect,
                var("s").field("parts"),
                sub.clone(),
            ),
            table("SUPPLIER"),
        );
        let out = apply(&e).unwrap();
        assert!(matches!(out, Expr::Let { .. }));
    }

    #[test]
    fn let_up_floats_closed_bindings() {
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        // σ[s : let v = count(PART) in s.n > v](SUPPLIER)
        let e = select(
            "s",
            let_(
                "v",
                count(table("PART")),
                gt(var("s").field("eidn"), var("v")),
            ),
            table("SUPPLIER"),
        );
        let out = LetUp.apply(&e, &ctx).unwrap();
        let Expr::Let { value, body, .. } = &out else {
            panic!("{out}")
        };
        assert_eq!(**value, count(table("PART")));
        assert!(matches!(body.as_ref(), Expr::Select { .. }));
        // a correlated binding must not float
        let e2 = select(
            "s",
            let_("v", count(var("s").field("parts")), gt(int(1), var("v"))),
            table("SUPPLIER"),
        );
        assert!(LetUp.apply(&e2, &ctx).is_none());
        // nested: hoist + let-up cooperate to reach the top
        let inner_sub = map("p", var("p").field("pid"), table("PART"));
        let nested = map(
            "d",
            select(
                "s",
                set_cmp(
                    oodb_value::SetCmpOp::SubsetEq,
                    var("s").field("parts"),
                    inner_sub.clone(),
                ),
                table("SUPPLIER"),
            ),
            table("DELIVERY"),
        );
        let hoisted = {
            // apply hoist inside the map body, then let-up on the map
            let Expr::Map { var, body, input } = nested else {
                unreachable!()
            };
            let new_body = HoistUncorrelated.apply(&body, &ctx).unwrap();
            Expr::Map {
                var,
                body: Box::new(new_body),
                input,
            }
        };
        let floated = LetUp.apply(&hoisted, &ctx).unwrap();
        assert!(matches!(floated, Expr::Let { .. }));
    }

    use oodb_adl::expr::Expr;
}

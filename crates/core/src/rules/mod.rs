//! The rewrite rule catalogue and the fixpoint driver.

pub mod attr_unnest;
pub mod division;
pub mod grouping;
pub mod hoist;
pub mod nestjoin;
pub mod normalize;
pub mod range;
pub mod rule1;
pub mod rule2;
pub mod setcmp;

use crate::trace::RewriteTrace;
use oodb_adl::expr::{Expr, QuantKind};
use oodb_adl::vars::free_vars;
use oodb_catalog::Catalog;
use oodb_value::{CmpOp, Name, SetCmpOp, Value};

/// Shared context handed to every rule.
pub struct RewriteCtx<'a> {
    /// The schema — rules need it to compute `SCH(X)` for projections and
    /// nestjoin group attributes.
    pub catalog: &'a Catalog,
}

/// A local rewrite rule. `apply` returns `Some(replacement)` when the rule
/// matches at this node, `None` otherwise.
pub trait Rule {
    /// Stable identifier used in traces and tests.
    fn name(&self) -> &'static str;
    /// Attempts the rewrite at `e`.
    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr>;
}

/// Applies `rules` everywhere in `e`, repeatedly, until no rule fires.
///
/// Each pass walks top-down: at every node the first matching rule is
/// applied (repeatedly, bounded), then children are visited. Passes repeat
/// until a fixpoint; `None` is returned if `max_passes` is exhausted
/// (which indicates a non-terminating rule pair — a bug).
pub fn rewrite_fixpoint(
    e: Expr,
    rules: &[&dyn Rule],
    ctx: &RewriteCtx<'_>,
    trace: &mut RewriteTrace,
    max_passes: usize,
) -> Option<Expr> {
    let mut cur = e;
    for _ in 0..max_passes {
        let mut changed = false;
        cur = rewrite_pass(cur, rules, ctx, trace, &mut changed);
        if !changed {
            return Some(cur);
        }
    }
    None
}

fn rewrite_pass(
    e: Expr,
    rules: &[&dyn Rule],
    ctx: &RewriteCtx<'_>,
    trace: &mut RewriteTrace,
    changed: &mut bool,
) -> Expr {
    let mut cur = e;
    // Apply rules at this node until none fires (bounded by node growth,
    // which the pass budget of the caller ultimately limits).
    let mut local_budget = 64usize;
    'retry: while local_budget > 0 {
        for r in rules {
            if let Some(next) = r.apply(&cur, ctx) {
                trace.record(r.name(), &cur, &next);
                cur = next;
                *changed = true;
                local_budget -= 1;
                continue 'retry;
            }
        }
        break;
    }
    cur.map_children(&mut |c| rewrite_pass(c, rules, ctx, trace, changed))
}

/// Replaces every occurrence of `target` (by structural equality) inside
/// `e` with `replacement`.
pub fn replace_subexpr(e: &Expr, target: &Expr, replacement: &Expr) -> Expr {
    if e == target {
        return replacement.clone();
    }
    e.clone()
        .map_children(&mut |c| replace_subexpr(&c, target, replacement))
}

/// Counts occurrences of `target` inside `e` (structural equality).
pub fn count_subexpr(e: &Expr, target: &Expr) -> usize {
    if e == target {
        return 1;
    }
    let mut n = 0;
    e.for_each_child(&mut |c| n += count_subexpr(c, target));
    n
}

/// Negation-normal-form negation that never *introduces* a universal
/// quantifier: `¬∀` becomes `∃¬`, while `¬∃` is kept as an explicit
/// negation (the shape Rule 1.2 consumes). This is the §5.2.1 "pushing
/// through negation".
pub fn nnf_negate(e: &Expr) -> Expr {
    match e {
        Expr::Not(p) => (**p).clone(),
        Expr::Lit(Value::Bool(b)) => Expr::Lit(Value::Bool(!b)),
        Expr::And(a, b) => Expr::Or(Box::new(nnf_negate(a)), Box::new(nnf_negate(b))),
        Expr::Or(a, b) => Expr::And(Box::new(nnf_negate(a)), Box::new(nnf_negate(b))),
        Expr::Cmp(op, a, b) => Expr::Cmp(op.negate(), a.clone(), b.clone()),
        Expr::Quant {
            q: QuantKind::Forall,
            var,
            range,
            pred,
        } => Expr::Quant {
            q: QuantKind::Exists,
            var: var.clone(),
            range: range.clone(),
            pred: Box::new(nnf_negate(pred)),
        },
        Expr::SetCmp(op, a, b) => match op.direct_negation() {
            Some(neg) => Expr::SetCmp(neg, a.clone(), b.clone()),
            None => Expr::Not(Box::new(e.clone())),
        },
        other => Expr::Not(Box::new(other.clone())),
    }
}

/// A decomposed subquery `Y' = α[y : G](σ[y : Q](Y))` — the general
/// two-block format of §5.1 (either the `α` or the `σ` may be absent).
#[derive(Debug, Clone)]
pub struct Subquery {
    /// The iteration variable `y` (normalized: `G` and `Q` both use it).
    pub var: Name,
    /// The inner predicate `Q(x, y)`; `true` when no selection is present.
    pub pred: Expr,
    /// The function `G(x, y)` applied by the map; `None` means identity.
    pub gfunc: Option<Expr>,
    /// The operand `Y` (what remains under the σ/α chain).
    pub base: Expr,
}

/// Decomposes `e` as a subquery block if it has the shape
/// `α[v : G](σ[u : Q](B))`, `α[v : G](B)` or `σ[u : Q](B)`.
pub fn split_subquery(e: &Expr) -> Option<Subquery> {
    match e {
        Expr::Map { var, body, input } => match input.as_ref() {
            Expr::Select {
                var: svar,
                pred,
                input: base,
            } => {
                // normalize the σ variable to the α variable
                let pred = if svar == var {
                    (**pred).clone()
                } else {
                    oodb_adl::subst(pred, svar, &Expr::Var(var.clone()))
                };
                Some(Subquery {
                    var: var.clone(),
                    pred,
                    gfunc: Some((**body).clone()),
                    base: (**base).clone(),
                })
            }
            _ => Some(Subquery {
                var: var.clone(),
                pred: Expr::true_(),
                gfunc: Some((**body).clone()),
                base: (**input).clone(),
            }),
        },
        Expr::Select { var, pred, input } => Some(Subquery {
            var: var.clone(),
            pred: (**pred).clone(),
            gfunc: None,
            base: (**input).clone(),
        }),
        _ => None,
    }
}

/// Is `e` a *base table expression* in the paper's sense: closed (no free
/// variables) and reading at least one class extension?
pub fn is_base_table_expr(e: &Expr) -> bool {
    e.mentions_table() && free_vars(e).is_empty()
}

/// True if `Var(v)` occurs in `e` other than as the base of a `Field` or
/// `TupleProject` — i.e. the variable is used "as a whole tuple".
pub fn uses_whole_var(e: &Expr, v: &str) -> bool {
    match e {
        Expr::Var(n) => n.as_ref() == v,
        Expr::Field(base, _) | Expr::TupleProject(base, _) => {
            if matches!(base.as_ref(), Expr::Var(n) if n.as_ref() == v) {
                false
            } else {
                uses_whole_var(base, v)
            }
        }
        // shadowing binders stop the search
        Expr::Map { var, body, input }
        | Expr::Select {
            var,
            pred: body,
            input,
        } => uses_whole_var(input, v) || (var.as_ref() != v && uses_whole_var(body, v)),
        Expr::Quant {
            var, range, pred, ..
        } => uses_whole_var(range, v) || (var.as_ref() != v && uses_whole_var(pred, v)),
        Expr::Let { var, value, body } => {
            uses_whole_var(value, v) || (var.as_ref() != v && uses_whole_var(body, v))
        }
        Expr::Join {
            lvar,
            rvar,
            pred,
            left,
            right,
            ..
        } => {
            uses_whole_var(left, v)
                || uses_whole_var(right, v)
                || (lvar.as_ref() != v && rvar.as_ref() != v && uses_whole_var(pred, v))
        }
        Expr::NestJoin {
            lvar,
            rvar,
            pred,
            rfunc,
            left,
            right,
            ..
        } => {
            uses_whole_var(left, v)
                || uses_whole_var(right, v)
                || (lvar.as_ref() != v
                    && rvar.as_ref() != v
                    && (uses_whole_var(pred, v)
                        || rfunc.as_ref().is_some_and(|g| uses_whole_var(g, v))))
        }
        other => {
            let mut found = false;
            other.for_each_child(&mut |c| {
                if !found && uses_whole_var(c, v) {
                    found = true;
                }
            });
            found
        }
    }
}

/// Convenience constructors shared by rules.
pub(crate) fn eq_expr(a: Expr, b: Expr) -> Expr {
    Expr::Cmp(CmpOp::Eq, Box::new(a), Box::new(b))
}

pub(crate) fn member_expr(elem: Expr, set: Expr) -> Expr {
    Expr::SetCmp(SetCmpOp::In, Box::new(elem), Box::new(set))
}

pub(crate) fn not_member_expr(elem: Expr, set: Expr) -> Expr {
    Expr::SetCmp(SetCmpOp::NotIn, Box::new(elem), Box::new(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;

    #[test]
    fn replace_subexpr_hits_all_occurrences() {
        let s = select("y", var("q"), table("Y"));
        let p = and(member(var("a"), s.clone()), eq(count(s.clone()), int(0)));
        let replaced = replace_subexpr(&p, &s, &var("Y1"));
        assert_eq!(count_subexpr(&replaced, &s), 0);
        assert_eq!(count_subexpr(&replaced, &var("Y1")), 2);
    }

    #[test]
    fn nnf_negate_keeps_not_exists() {
        let e = exists("y", table("Y"), var("p"));
        assert_eq!(nnf_negate(&e), not(exists("y", table("Y"), var("p"))));
        // ¬∀ becomes ∃¬ (no universal quantifier survives)
        let f = forall("y", table("Y"), eq(var("y"), int(1)));
        assert_eq!(
            nnf_negate(&f),
            exists("y", table("Y"), ne(var("y"), int(1)))
        );
        // double negation
        assert_eq!(nnf_negate(&not(var("p"))), var("p"));
    }

    #[test]
    fn split_subquery_decomposes_both_shapes() {
        let s = select("y", var("q"), table("Y"));
        let sq = split_subquery(&s).unwrap();
        assert!(sq.gfunc.is_none());
        assert_eq!(sq.base, table("Y"));

        let m = map("u", var("u").field("e"), select("y", var("q"), table("Y")));
        let sq = split_subquery(&m).unwrap();
        assert_eq!(sq.var.as_ref(), "u");
        assert!(sq.gfunc.is_some());
        // σ var renamed to α var
        assert_eq!(sq.pred, var("q"));

        assert!(split_subquery(&table("Y")).is_none());
    }

    #[test]
    fn split_subquery_renames_sigma_var() {
        let m = map(
            "u",
            var("u").field("e"),
            select("y", eq(var("y").field("a"), int(1)), table("Y")),
        );
        let sq = split_subquery(&m).unwrap();
        assert_eq!(sq.pred, eq(var("u").field("a"), int(1)));
    }

    #[test]
    fn base_table_expr_requires_closed_and_table() {
        assert!(is_base_table_expr(&table("Y")));
        assert!(is_base_table_expr(&select(
            "y",
            var("y").field("a"),
            table("Y")
        )));
        // correlated: x free
        assert!(!is_base_table_expr(&select(
            "y",
            eq(var("y").field("a"), var("x").field("a")),
            table("Y")
        )));
        // no table
        assert!(!is_base_table_expr(&var("x").field("c")));
    }

    #[test]
    fn whole_var_detection() {
        assert!(uses_whole_var(&var("x"), "x"));
        assert!(!uses_whole_var(&var("x").field("a"), "x"));
        assert!(!uses_whole_var(&tuple_project(var("x"), &["a"]), "x"));
        assert!(uses_whole_var(&eq(var("x"), var("y")), "x"));
        // shadowed occurrences don't count
        let shadowed = exists("x", var("z").field("c"), eq(var("x"), int(1)));
        assert!(!uses_whole_var(&shadowed, "x"));
        // but the range is visible
        let in_range = exists("u", var("x").field("c"), eq(var("x"), int(1)));
        assert!(uses_whole_var(&in_range, "x"));
    }

    #[test]
    fn fixpoint_driver_applies_until_stable() {
        struct Shrink;
        impl Rule for Shrink {
            fn name(&self) -> &'static str {
                "shrink"
            }
            fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
                match e {
                    Expr::Not(inner) => match inner.as_ref() {
                        Expr::Not(p) => Some((**p).clone()),
                        _ => None,
                    },
                    _ => None,
                }
            }
        }
        let cat = oodb_catalog::Catalog::new();
        let ctx = RewriteCtx { catalog: &cat };
        let mut trace = RewriteTrace::new();
        let e = not(not(not(not(var("p")))));
        let out = rewrite_fixpoint(e, &[&Shrink], &ctx, &mut trace, 10).unwrap();
        assert_eq!(out, var("p"));
        assert_eq!(trace.len(), 2);
    }
}

//! Normalization rules: boolean simplification, negation pushing, and the
//! `∀ → ¬∃¬` canonical form of §5.2.1.
//!
//! The relational rewrites (Rule 1, range extraction, quantifier
//! exchange) are phrased over (negated) existential quantifiers; these
//! rules bring arbitrary predicates into that shape. "The universal
//! quantifier is transformed into a negated existential quantifier by
//! pushing through negation to enable transformation into the antijoin
//! operation" (Rewriting Example 2).

use super::{nnf_negate, RewriteCtx, Rule};
use oodb_adl::expr::{Expr, QuantKind};
use oodb_value::Value;

/// `∀x ∈ e • p  ⇒  ¬∃x ∈ e • ¬p` (with `¬p` negation-normalized).
pub struct ForallToNotExists;

impl Rule for ForallToNotExists {
    fn name(&self) -> &'static str {
        "forall-to-not-exists"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        match e {
            Expr::Quant {
                q: QuantKind::Forall,
                var,
                range,
                pred,
            } => Some(Expr::Not(Box::new(Expr::Quant {
                q: QuantKind::Exists,
                var: var.clone(),
                range: range.clone(),
                pred: Box::new(nnf_negate(pred)),
            }))),
            _ => None,
        }
    }
}

/// Pushes negations inward **except** over `∃` (whose negated form is the
/// antijoin shape): `¬¬p ⇒ p`, `¬(a ∧ b) ⇒ ¬a ∨ ¬b`, `¬(a ∨ b) ⇒ ¬a ∧ ¬b`,
/// `¬(a = b) ⇒ a ≠ b`, `¬true ⇒ false`, negatable set comparisons.
pub struct PushNegation;

impl Rule for PushNegation {
    fn name(&self) -> &'static str {
        "push-negation"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Not(inner) = e else { return None };
        match inner.as_ref() {
            // keep ¬∃ — it is the Rule 1.2 / antijoin shape
            Expr::Quant {
                q: QuantKind::Exists,
                ..
            } => None,
            Expr::Not(_)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Cmp(..)
            | Expr::Lit(Value::Bool(_))
            | Expr::Quant {
                q: QuantKind::Forall,
                ..
            } => Some(nnf_negate(inner)),
            Expr::SetCmp(op, a, b) => op
                .direct_negation()
                .map(|neg| Expr::SetCmp(neg, a.clone(), b.clone())),
            _ => None,
        }
    }
}

/// Boolean constant folding: `p ∧ true ⇒ p`, `p ∧ false ⇒ false`,
/// `p ∨ false ⇒ p`, `p ∨ true ⇒ true`, `σ[x : true](X) ⇒ X`.
pub struct SimplifyBool;

impl Rule for SimplifyBool {
    fn name(&self) -> &'static str {
        "simplify-bool"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        match e {
            Expr::And(a, b) => {
                if a.is_bool_lit(true) {
                    Some((**b).clone())
                } else if b.is_bool_lit(true) {
                    Some((**a).clone())
                } else if a.is_bool_lit(false) || b.is_bool_lit(false) {
                    Some(Expr::false_())
                } else {
                    None
                }
            }
            Expr::Or(a, b) => {
                if a.is_bool_lit(false) {
                    Some((**b).clone())
                } else if b.is_bool_lit(false) {
                    Some((**a).clone())
                } else if a.is_bool_lit(true) || b.is_bool_lit(true) {
                    Some(Expr::true_())
                } else {
                    None
                }
            }
            Expr::Select { pred, input, .. } if pred.is_bool_lit(true) => Some((**input).clone()),
            _ => None,
        }
    }
}

/// Identity map elimination `α[x : x](e) ⇒ e` — produced by
/// `select d from d in (…)` translations; removing it is half of the
/// paper's "nesting in the from-clause is handled easily" (§2).
pub struct IdentityMap;

impl Rule for IdentityMap {
    fn name(&self) -> &'static str {
        "identity-map"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        match e {
            Expr::Map { var, body, input } if matches!(body.as_ref(), Expr::Var(v) if v == var) => {
                Some((**input).clone())
            }
            _ => None,
        }
    }
}

/// Cascading selection merge `σ[x : P](σ[y : Q](e)) ⇒ σ[x : Q[x/y] ∧ P](e)`
/// — the other half of from-clause unnesting (query composition collapses
/// into one selection).
pub struct MergeSelects;

impl Rule for MergeSelects {
    fn name(&self) -> &'static str {
        "merge-selects"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Select {
            var: x,
            pred: p,
            input,
        } = e
        else {
            return None;
        };
        let Expr::Select {
            var: y,
            pred: q,
            input: base,
        } = input.as_ref()
        else {
            return None;
        };
        let q_on_x = if y == x {
            (**q).clone()
        } else {
            oodb_adl::subst(q, y, &Expr::Var(x.clone()))
        };
        Some(Expr::Select {
            var: x.clone(),
            pred: Box::new(Expr::And(Box::new(q_on_x), p.clone())),
            input: base.clone(),
        })
    }
}

/// Table 2 row rewrites: emptiness predicates become (negated) existential
/// quantification — "the form suitable for transformation in relational
/// join expressions".
///
/// * `Y' = ∅  ⇒  ¬∃y ∈ Y' • true` (and `≠ ∅` ⇒ `∃`)
/// * `count(Y') = 0  ⇒  ¬∃y ∈ Y' • true` (`> 0`, `≠ 0`, `≥ 1` ⇒ `∃`)
/// * `x.c ∩ Y' = ∅  ⇒  ¬∃y ∈ Y' • y ∈ x.c` (quantifying over the side
///   that mentions a base table)
pub struct PredToQuant;

impl Rule for PredToQuant {
    fn name(&self) -> &'static str {
        "pred-to-quant"
    }

    fn apply(&self, e: &Expr, _: &RewriteCtx<'_>) -> Option<Expr> {
        use oodb_value::{CmpOp, SetCmpOp};
        // match `S = ∅` / `S ≠ ∅` in either orientation
        let emptiness = |op: SetCmpOp, a: &Expr, b: &Expr| -> Option<(bool, Expr)> {
            let is_empty_lit = |x: &Expr| matches!(x, Expr::Lit(Value::Set(s)) if s.is_empty());
            let positive = match op {
                SetCmpOp::SetEq => true,
                SetCmpOp::SetNe => false,
                _ => return None,
            };
            if is_empty_lit(b) {
                Some((positive, a.clone()))
            } else if is_empty_lit(a) {
                Some((positive, b.clone()))
            } else {
                None
            }
        };

        match e {
            Expr::SetCmp(op, a, b) => {
                let (is_eq_empty, set) = emptiness(*op, a, b)?;
                // only worth rewriting when the set is a rewritable
                // subquery; plain attributes are cheap to test directly
                if !set.mentions_table() {
                    return None;
                }
                // handle the intersection row specially: pick the
                // table-mentioning side as the quantifier range
                if let Expr::SetOp(oodb_adl::SetOp::Intersect, l, r) = &set {
                    let (range, other) = if l.mentions_table() {
                        (l.clone(), r.clone())
                    } else {
                        (r.clone(), l.clone())
                    };
                    let y = fresh_for(&[&range, &other]);
                    let ex = Expr::Quant {
                        q: QuantKind::Exists,
                        var: y.clone(),
                        range,
                        pred: Box::new(super::member_expr(Expr::Var(y), *other)),
                    };
                    return Some(if is_eq_empty {
                        Expr::Not(Box::new(ex))
                    } else {
                        ex
                    });
                }
                let y = fresh_for(&[&set]);
                let ex = Expr::Quant {
                    q: QuantKind::Exists,
                    var: y,
                    range: Box::new(set),
                    pred: Box::new(Expr::true_()),
                };
                Some(if is_eq_empty {
                    Expr::Not(Box::new(ex))
                } else {
                    ex
                })
            }
            Expr::Cmp(cmp, a, b) => {
                // count(S) compared against 0/1 literals
                let (count_arg, lit, cmp) = match (a.as_ref(), b.as_ref()) {
                    (Expr::Agg(oodb_adl::AggOp::Count, s), Expr::Lit(Value::Int(n))) => {
                        (s, *n, *cmp)
                    }
                    (Expr::Lit(Value::Int(n)), Expr::Agg(oodb_adl::AggOp::Count, s)) => {
                        (s, *n, cmp.flip())
                    }
                    _ => return None,
                };
                if !count_arg.mentions_table() {
                    return None;
                }
                // count(S) = 0 ≡ ¬∃ ; count(S) > 0 / ≠ 0 / ≥ 1 ≡ ∃
                let positive = match (cmp, lit) {
                    (CmpOp::Eq, 0) | (CmpOp::Le, 0) | (CmpOp::Lt, 1) => false,
                    (CmpOp::Gt, 0) | (CmpOp::Ne, 0) | (CmpOp::Ge, 1) => true,
                    _ => return None,
                };
                let y = fresh_for(&[count_arg]);
                let ex = Expr::Quant {
                    q: QuantKind::Exists,
                    var: y,
                    range: Box::new((**count_arg).clone()),
                    pred: Box::new(Expr::true_()),
                };
                Some(if positive {
                    ex
                } else {
                    Expr::Not(Box::new(ex))
                })
            }
            _ => None,
        }
    }
}

/// A fresh quantifier variable avoiding everything free in `parts`.
pub(crate) fn fresh_for(parts: &[&Expr]) -> oodb_value::Name {
    let mut avoid = oodb_value::fxhash::FxHashSet::default();
    for p in parts {
        avoid.extend(oodb_adl::free_vars(p));
    }
    oodb_adl::fresh_name("y", &avoid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn ctx_apply(rule: &dyn Rule, e: &Expr) -> Option<Expr> {
        let cat = supplier_part_catalog();
        rule.apply(e, &RewriteCtx { catalog: &cat })
    }

    #[test]
    fn forall_becomes_negated_exists() {
        let e = forall("z", var("x").field("c"), member(var("z"), var("S")));
        let out = ctx_apply(&ForallToNotExists, &e).unwrap();
        assert_eq!(
            out,
            not(exists(
                "z",
                var("x").field("c"),
                set_cmp(oodb_value::SetCmpOp::NotIn, var("z"), var("S"))
            ))
        );
    }

    #[test]
    fn push_negation_keeps_not_exists() {
        let e = not(exists("y", table("Y"), var("p")));
        assert!(ctx_apply(&PushNegation, &e).is_none());
        let e2 = not(not(var("p")));
        assert_eq!(ctx_apply(&PushNegation, &e2).unwrap(), var("p"));
        let e3 = not(and(var("p"), var("q")));
        assert_eq!(
            ctx_apply(&PushNegation, &e3).unwrap(),
            or(not(var("p")), not(var("q")))
        );
        let e4 = not(eq(var("a"), var("b")));
        assert_eq!(
            ctx_apply(&PushNegation, &e4).unwrap(),
            ne(var("a"), var("b"))
        );
    }

    #[test]
    fn simplify_bool_rules() {
        assert_eq!(
            ctx_apply(&SimplifyBool, &and(Expr::true_(), var("p"))).unwrap(),
            var("p")
        );
        assert_eq!(
            ctx_apply(&SimplifyBool, &or(var("p"), Expr::true_())).unwrap(),
            Expr::true_()
        );
        assert_eq!(
            ctx_apply(&SimplifyBool, &select("x", Expr::true_(), table("X"))).unwrap(),
            table("X")
        );
        assert!(ctx_apply(&SimplifyBool, &and(var("p"), var("q"))).is_none());
    }

    #[test]
    fn table2_empty_equality() {
        // Y' = ∅ ⇒ ¬∃y ∈ Y' • true   (Y' must mention a base table)
        let yprime = select("u", var("u").field("a"), table("Y"));
        let e = set_cmp(
            oodb_value::SetCmpOp::SetEq,
            yprime.clone(),
            Expr::empty_set(),
        );
        let out = ctx_apply(&PredToQuant, &e).unwrap();
        assert_eq!(out, not(exists("y", yprime.clone(), Expr::true_())));
        // ≠ ∅ is the positive form
        let e2 = set_cmp(
            oodb_value::SetCmpOp::SetNe,
            yprime.clone(),
            Expr::empty_set(),
        );
        assert_eq!(
            ctx_apply(&PredToQuant, &e2).unwrap(),
            exists("y", yprime, Expr::true_())
        );
        // attribute-only operand left alone
        let cheap = set_cmp(
            oodb_value::SetCmpOp::SetEq,
            var("x").field("c"),
            Expr::empty_set(),
        );
        assert!(ctx_apply(&PredToQuant, &cheap).is_none());
    }

    #[test]
    fn table2_count_comparisons() {
        let yprime = select("u", var("u").field("a"), table("Y"));
        let e = eq(count(yprime.clone()), int(0));
        let out = ctx_apply(&PredToQuant, &e).unwrap();
        assert_eq!(out, not(exists("y", yprime.clone(), Expr::true_())));
        // flipped orientation, strict positive
        let e2 = lt(int(0), count(yprime.clone()));
        assert_eq!(
            ctx_apply(&PredToQuant, &e2).unwrap(),
            exists("y", yprime.clone(), Expr::true_())
        );
        // count = 3 is not an emptiness test
        assert!(ctx_apply(&PredToQuant, &eq(count(yprime), int(3))).is_none());
    }

    #[test]
    fn table2_intersection_row() {
        // x.c ∩ Y' = ∅ ⇒ ¬∃y ∈ Y' • y ∈ x.c
        let yprime = select(
            "u",
            eq(var("u").field("a"), var("x").field("a")),
            table("Y"),
        );
        let e = set_cmp(
            oodb_value::SetCmpOp::SetEq,
            set_op(
                oodb_adl::SetOp::Intersect,
                var("x").field("c"),
                yprime.clone(),
            ),
            Expr::empty_set(),
        );
        let out = ctx_apply(&PredToQuant, &e).unwrap();
        assert_eq!(
            out,
            not(exists("y", yprime, member(var("y"), var("x").field("c"))))
        );
    }

    use oodb_adl::expr::Expr;
}

#[cfg(test)]
mod fromclause_tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_adl::expr::Expr;
    use oodb_catalog::fixtures::supplier_part_catalog;

    #[test]
    fn from_clause_nesting_collapses() {
        // Example Query 2's translated shape:
        // α[d : d](σ[d : date](α[e : e](σ[e : sname](DELIVERY))))
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let inner = map(
            "e",
            var("e"),
            select("e", eq(var("e").field("date"), int(1)), table("DELIVERY")),
        );
        let outer = select("d", eq(var("d").field("x"), int(2)), inner);
        // identity map collapses
        let Expr::Select { input, .. } = &outer else {
            unreachable!()
        };
        let collapsed = IdentityMap.apply(input, &ctx).unwrap();
        assert!(matches!(collapsed, Expr::Select { .. }));
        // then the two selections merge
        let merged = MergeSelects
            .apply(
                &select("d", eq(var("d").field("x"), int(2)), collapsed),
                &ctx,
            )
            .unwrap();
        let Expr::Select { pred, input, .. } = &merged else {
            panic!("{merged}")
        };
        assert!(matches!(input.as_ref(), Expr::Table(_)));
        assert_eq!(
            **pred,
            and(
                eq(var("d").field("date"), int(1)),
                eq(var("d").field("x"), int(2))
            )
        );
    }
}

//! Option 1 — unnesting of set-valued attributes (§4).
//!
//! "If nesting is caused by iteration over a set-valued attribute it is
//! possible to unnest this attribute. […] we only use this option if the
//! final nesting is not required, and empty set-valued attributes cause
//! no problem."
//!
//! The rule matches `π_A(σ[x : ∃z ∈ x.c • φ](X))` with `c ∉ A`:
//! existential quantification over the empty set delivers `false`, so the
//! tuples `μ_c` drops were never results; and because the result does not
//! need `c`, no re-nesting is required. After the rewrite the inner
//! quantifier body `φ` sits directly in a selection over `μ_c(X)`, where
//! Rule 1 can turn a base-table subquery inside it into a semijoin or —
//! as in Example Query 4 — an antijoin.

use super::{uses_whole_var, RewriteCtx, Rule};
use oodb_adl::expr::{conjoin, conjuncts, Expr, QuantKind};
use oodb_adl::vars::subst;

/// The option-1 rewrite.
///
/// Matches both the paper's `π_A(σ[…](X))` form and the
/// `α[x : F](σ[…](X))` form OOSQL projections translate to; in the map
/// form, `F` plays the role of "the result": it must not reference the
/// set attribute (and not use `x` as a whole tuple).
pub struct AttrUnnest;

impl Rule for AttrUnnest {
    fn name(&self) -> &'static str {
        "attr-unnest"
    }

    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr> {
        match e {
            Expr::Project { .. } => self.apply_project(e),
            Expr::Map { .. } => self.apply_map(e, ctx),
            _ => None,
        }
    }
}

impl AttrUnnest {
    fn apply_project(&self, e: &Expr) -> Option<Expr> {
        let Expr::Project { attrs, input } = e else {
            return None;
        };
        let Expr::Select {
            var: x,
            pred,
            input: base,
        } = input.as_ref()
        else {
            return None;
        };
        // find a conjunct ∃z ∈ x.c • φ with c not needed by the projection
        let parts = conjuncts(pred);
        let (idx, z, attr, phi) = parts.iter().enumerate().find_map(|(i, c)| {
            let Expr::Quant {
                q: QuantKind::Exists,
                var: z,
                range,
                pred: phi,
            } = c
            else {
                return None;
            };
            let Expr::Field(b, attr) = range.as_ref() else {
                return None;
            };
            if !matches!(b.as_ref(), Expr::Var(v) if v == x) {
                return None;
            }
            if attrs.contains(attr) {
                return None; // the projection needs the set attribute
            }
            Some((i, z.clone(), attr.clone(), (**phi).clone()))
        })?;

        // after μ, `x.c` denotes one element; all *other* references to
        // x.c (as a set) in the predicate would change meaning — bail out
        let other_conjuncts: Vec<Expr> = parts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, c)| (*c).clone())
            .collect();
        let references_attr = |expr: &Expr| {
            let target = Expr::Field(Box::new(Expr::Var(x.clone())), attr.clone());
            super::count_subexpr(expr, &target) > 0
        };
        if other_conjuncts.iter().any(references_attr) || references_attr(&phi) {
            return None;
        }
        // whole-tuple uses of x would see the reshaped tuple — bail out
        if other_conjuncts.iter().any(|c| uses_whole_var(c, x)) || uses_whole_var(&phi, x) {
            return None;
        }

        // φ[z → x.c] : the element is now carried by the flattened attr
        let elem_ref = Expr::Field(Box::new(Expr::Var(x.clone())), attr.clone());
        let phi2 = subst(&phi, &z, &elem_ref);
        let new_pred = conjoin(
            other_conjuncts
                .into_iter()
                .chain(std::iter::once(phi2))
                .collect(),
        );
        Some(Expr::Project {
            attrs: attrs.clone(),
            input: Box::new(Expr::Select {
                var: x.clone(),
                pred: Box::new(new_pred),
                input: Box::new(Expr::Unnest {
                    attr,
                    input: base.clone(),
                }),
            }),
        })
    }

    /// The `α[x : F](σ[x : ∃z ∈ x.c • φ](X))` variant: same rewrite, with
    /// "the projection does not need `c`" replaced by "`F` does not
    /// reference `x.c` or whole-`x`".
    fn apply_map(&self, e: &Expr, _ctx: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Map {
            var: mvar,
            body,
            input,
        } = e
        else {
            return None;
        };
        let Expr::Select {
            var: x,
            pred,
            input: base,
        } = input.as_ref()
        else {
            return None;
        };
        if mvar != x {
            // normalize is trivial but keep the rule conservative
            return None;
        }
        let parts = conjuncts(pred);
        let (idx, z, attr, phi) = parts.iter().enumerate().find_map(|(i, c)| {
            let Expr::Quant {
                q: QuantKind::Exists,
                var: z,
                range,
                pred: phi,
            } = c
            else {
                return None;
            };
            let Expr::Field(b, attr) = range.as_ref() else {
                return None;
            };
            if !matches!(b.as_ref(), Expr::Var(v) if v == x) {
                return None;
            }
            Some((i, z.clone(), attr.clone(), (**phi).clone()))
        })?;

        let attr_target = Expr::Field(Box::new(Expr::Var(x.clone())), attr.clone());
        let references_attr = |expr: &Expr| super::count_subexpr(expr, &attr_target) > 0;
        // F must not need the set attribute, nor the whole tuple
        if references_attr(body) || uses_whole_var(body, x) {
            return None;
        }
        let other_conjuncts: Vec<Expr> = parts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, c)| (*c).clone())
            .collect();
        if other_conjuncts
            .iter()
            .any(|c| references_attr(c) || uses_whole_var(c, x))
            || references_attr(&phi)
            || uses_whole_var(&phi, x)
        {
            return None;
        }
        let elem_ref = Expr::Field(Box::new(Expr::Var(x.clone())), attr.clone());
        let phi2 = subst(&phi, &z, &elem_ref);
        let new_pred = conjoin(
            other_conjuncts
                .into_iter()
                .chain(std::iter::once(phi2))
                .collect(),
        );
        Some(Expr::Map {
            var: x.clone(),
            body: body.clone(),
            input: Box::new(Expr::Select {
                var: x.clone(),
                pred: Box::new(new_pred),
                input: Box::new(Expr::Unnest {
                    attr,
                    input: base.clone(),
                }),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn apply(e: &Expr) -> Option<Expr> {
        let cat = supplier_part_catalog();
        AttrUnnest.apply(e, &RewriteCtx { catalog: &cat })
    }

    /// Example Query 4's nested form.
    fn query4() -> Expr {
        project(
            &["eid"],
            select(
                "s",
                exists(
                    "z",
                    var("s").field("parts"),
                    not(exists(
                        "p",
                        table("PART"),
                        eq(var("z"), var("p").field("pid")),
                    )),
                ),
                table("SUPPLIER"),
            ),
        )
    }

    #[test]
    fn query4_unnests_the_attribute() {
        let out = apply(&query4()).unwrap();
        // π_eid(σ[s : ¬∃p ∈ PART • s.parts = p.pid](μ_parts(SUPPLIER)))
        let expected = project(
            &["eid"],
            select(
                "s",
                not(exists(
                    "p",
                    table("PART"),
                    eq(var("s").field("parts"), var("p").field("pid")),
                )),
                unnest("parts", table("SUPPLIER")),
            ),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn needed_attribute_blocks_the_rewrite() {
        // projecting on parts keeps the set: no unnest
        let e = project(
            &["eid", "parts"],
            select(
                "s",
                exists("z", var("s").field("parts"), eq(var("z"), int(1))),
                table("SUPPLIER"),
            ),
        );
        assert!(apply(&e).is_none());
    }

    #[test]
    fn other_set_references_block_the_rewrite() {
        // the predicate also uses s.parts as a set elsewhere
        let e = project(
            &["eid"],
            select(
                "s",
                and(
                    exists("z", var("s").field("parts"), eq(var("z"), int(1))),
                    gt(count(var("s").field("parts")), int(2)),
                ),
                table("SUPPLIER"),
            ),
        );
        assert!(apply(&e).is_none());
    }

    #[test]
    fn forall_not_eligible() {
        // ∀ over the attribute: empty sets DO cause a problem — no rewrite
        let e = project(
            &["eid"],
            select(
                "s",
                forall("z", var("s").field("parts"), eq(var("z"), int(1))),
                table("SUPPLIER"),
            ),
        );
        assert!(apply(&e).is_none());
    }

    #[test]
    fn extra_conjuncts_are_preserved() {
        let e = project(
            &["eid"],
            select(
                "s",
                and(
                    eq(var("s").field("sname"), str_lit("s5")),
                    exists("z", var("s").field("parts"), eq(var("z"), int(1))),
                ),
                table("SUPPLIER"),
            ),
        );
        let out = apply(&e).unwrap();
        let Expr::Project { input, .. } = &out else {
            panic!("{out}")
        };
        let Expr::Select {
            pred, input: inner, ..
        } = input.as_ref()
        else {
            panic!("{out}")
        };
        assert!(matches!(inner.as_ref(), Expr::Unnest { .. }));
        let cs = conjuncts(pred);
        assert_eq!(cs.len(), 2);
    }

    use oodb_adl::expr::Expr;
}

#[cfg(test)]
mod map_variant_tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_adl::expr::Expr;
    use oodb_catalog::fixtures::supplier_part_catalog;

    #[test]
    fn map_form_of_query4_unnests() {
        // α[s : s.eid](σ[s : ∃z ∈ s.parts • ¬∃p ∈ PART • z = p.pid](SUPPLIER))
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let e = map(
            "s",
            var("s").field("eid"),
            select(
                "s",
                exists(
                    "z",
                    var("s").field("parts"),
                    not(exists(
                        "p",
                        table("PART"),
                        eq(var("z"), var("p").field("pid")),
                    )),
                ),
                table("SUPPLIER"),
            ),
        );
        let out = AttrUnnest.apply(&e, &ctx).unwrap();
        let Expr::Map { input, .. } = &out else {
            panic!("{out}")
        };
        let Expr::Select { input: inner, .. } = input.as_ref() else {
            panic!("{out}")
        };
        assert!(matches!(inner.as_ref(), Expr::Unnest { .. }));
    }

    #[test]
    fn map_body_needing_the_attr_blocks() {
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let e = map(
            "s",
            count(var("s").field("parts")),
            select(
                "s",
                exists("z", var("s").field("parts"), eq(var("z"), int(1))),
                table("SUPPLIER"),
            ),
        );
        assert!(AttrUnnest.apply(&e, &ctx).is_none());
    }

    #[test]
    fn whole_tuple_body_blocks() {
        let cat = supplier_part_catalog();
        let ctx = RewriteCtx { catalog: &cat };
        let e = map(
            "s",
            var("s"),
            select(
                "s",
                exists("z", var("s").field("parts"), eq(var("z"), int(1))),
                table("SUPPLIER"),
            ),
        );
        assert!(AttrUnnest.apply(&e, &ctx).is_none());
    }
}

//! Unnesting by grouping — §5.2.2 and the Complex Object bug.
//!
//! The relational technique of [Kim82, GaWo87] transforms
//! `σ[x : P(x, Y')](X)`, `Y' = α[y:G](σ[y:Q(x,y)](Y))` into a flat join
//! query: **(1)** a join to evaluate the inner predicate, **(2)** a nest
//! for grouping, **(3)** a selection evaluating `P`, **(4)** a final
//! projection.
//!
//! "However, in some cases the loss of dangling outer operand tuples in
//! the join causes incorrect results" — the **Complex Object bug**
//! (Figure 2). Three variants are provided:
//!
//! * [`Gawo87Unsafe`] — the transformation as-is: *deliberately buggy*,
//!   used to reproduce Figure 2;
//! * [`Gawo87Guarded`] — applies only when the Table 3 analysis reduces
//!   `P(x, ∅)` statically to `false` (dangling tuples never qualify, so
//!   losing them is harmless);
//! * [`OuterjoinGroup`] — the \[GaWo87\] repair: a left outer join keeps
//!   dangling tuples as `NULL`-padded rows, which the rewritten predicate
//!   filters out of each group.

use super::{replace_subexpr, split_subquery, uses_whole_var, RewriteCtx, Rule, Subquery};
use crate::emptiness::{reduce_with_empty, Truth};
use oodb_adl::expr::{Expr, JoinKind};
use oodb_adl::infer_closed;
use oodb_adl::vars::{free_vars, fresh_name};
use oodb_value::fxhash::FxHashSet;
use oodb_value::Name;

/// Decomposition shared by the grouping variants.
struct GroupingParts {
    occurrence: Expr,
    sq: Subquery,
    x_sch: Vec<Name>,
    y_sch: Vec<Name>,
    ys: Name,
    yvar: Name,
}

fn decompose(x: &Name, pred: &Expr, input: &Expr, ctx: &RewriteCtx<'_>) -> Option<GroupingParts> {
    // reuse the nestjoin rule's subquery finder logic (inlined here to
    // keep the modules independent)
    fn walk(e: &Expr, x: &str, out: &mut Option<(Expr, Subquery)>) {
        if out.is_some() {
            return;
        }
        if let Some(sq) = split_subquery(e) {
            let fv = free_vars(e);
            let correlated = fv.iter().any(|n| n.as_ref() == x);
            let only_x = fv.iter().all(|n| n.as_ref() == x);
            if correlated && only_x && super::is_base_table_expr(&sq.base) {
                *out = Some((e.clone(), sq));
                return;
            }
        }
        e.for_each_child(&mut |c| walk(c, x, out));
    }
    let mut found = None;
    walk(pred, x, &mut found);
    let (occurrence, sq) = found?;

    let x_ty = infer_closed(input, ctx.catalog).ok()?;
    let x_sch = x_ty.sch()?;
    let y_ty = infer_closed(&sq.base, ctx.catalog).ok()?;
    let y_sch = y_ty.sch()?;
    // the flat join requires disjoint schemas
    if x_sch.iter().any(|a| y_sch.contains(a)) {
        return None;
    }
    // whole-tuple uses of x or y complicate the pipeline — skip them here
    // (the nestjoin rule handles them); G references only y
    if uses_whole_var(pred, x) {
        return None;
    }
    let mut avoid: FxHashSet<Name> = x_sch.iter().cloned().collect();
    avoid.extend(y_sch.iter().cloned());
    avoid.extend(free_vars(pred));
    let ys = fresh_name("ys", &avoid);
    let yvar = sq.var.clone();
    Some(GroupingParts {
        occurrence,
        sq,
        x_sch,
        y_sch,
        ys,
        yvar,
    })
}

/// Builds the join→nest→select→project pipeline. `outer` selects the
/// (buggy) inner join or the (repaired) left outer join.
fn build_pipeline(x: &Name, pred: &Expr, input: &Expr, parts: GroupingParts, outer: bool) -> Expr {
    let GroupingParts {
        occurrence,
        sq,
        x_sch,
        y_sch,
        ys,
        yvar,
    } = parts;
    // (1) join evaluating Q
    let join = Expr::Join {
        kind: if outer {
            JoinKind::LeftOuter
        } else {
            JoinKind::Inner
        },
        lvar: x.clone(),
        rvar: yvar.clone(),
        pred: Box::new(sq.pred.clone()),
        left: Box::new(input.clone()),
        right: Box::new(sq.base.clone()),
    };
    // (2) nest: group the Y attributes
    let nested = Expr::Nest {
        attrs: y_sch.clone(),
        as_attr: ys.clone(),
        input: Box::new(join),
    };
    // (3) selection evaluating P with Y' := α[y : G](…group…)
    let group_ref = Expr::Field(Box::new(Expr::Var(x.clone())), ys.clone());
    let group_source = if outer {
        // filter the NULL-padded row out of each group
        let probe = y_sch.first().expect("non-empty schema").clone();
        Expr::Select {
            var: yvar.clone(),
            pred: Box::new(Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::Field(
                Box::new(Expr::Var(yvar.clone())),
                probe,
            )))))),
            input: Box::new(group_ref),
        }
    } else {
        group_ref
    };
    let subquery_value = match &sq.gfunc {
        Some(g) => Expr::Map {
            var: yvar.clone(),
            body: Box::new(g.clone()),
            input: Box::new(group_source),
        },
        None => group_source,
    };
    let new_pred = replace_subexpr(pred, &occurrence, &subquery_value);
    let selected = Expr::Select {
        var: x.clone(),
        pred: Box::new(new_pred),
        input: Box::new(nested),
    };
    // (4) final projection on X's attributes
    Expr::Project {
        attrs: x_sch,
        input: Box::new(selected),
    }
}

/// The unguarded \[GaWo87\] transformation — **exhibits the Complex Object
/// bug** on predicates where `P(x, ∅)` is not statically false. Exposed
/// for the Figure 2 reproduction and the ablation benchmarks; not part of
/// the default strategy.
pub struct Gawo87Unsafe;

impl Rule for Gawo87Unsafe {
    fn name(&self) -> &'static str {
        "gawo87-grouping-unsafe"
    }

    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Select {
            var: x,
            pred,
            input,
        } = e
        else {
            return None;
        };
        let parts = decompose(x, pred, input, ctx)?;
        Some(build_pipeline(x, pred, input, parts, false))
    }
}

/// The guarded transformation: fires only when losing dangling tuples is
/// provably harmless (`P(x, ∅) ≡ false`, Table 3).
pub struct Gawo87Guarded;

impl Rule for Gawo87Guarded {
    fn name(&self) -> &'static str {
        "gawo87-grouping-guarded"
    }

    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Select {
            var: x,
            pred,
            input,
        } = e
        else {
            return None;
        };
        let parts = decompose(x, pred, input, ctx)?;
        if reduce_with_empty(pred, &parts.occurrence) != Truth::False {
            return None;
        }
        Some(build_pipeline(x, pred, input, parts, false))
    }
}

/// The outerjoin repair of §5.2.2: dangling tuples survive as NULL-padded
/// rows whose group contribution is filtered away.
pub struct OuterjoinGroup;

impl Rule for OuterjoinGroup {
    fn name(&self) -> &'static str {
        "outerjoin-group"
    }

    fn apply(&self, e: &Expr, ctx: &RewriteCtx<'_>) -> Option<Expr> {
        let Expr::Select {
            var: x,
            pred,
            input,
        } = e
        else {
            return None;
        };
        let parts = decompose(x, pred, input, ctx)?;
        Some(build_pipeline(x, pred, input, parts, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::figure12_db;
    use oodb_engine::Evaluator;
    use oodb_value::{SetCmpOp, Value};

    /// Figure 1/2's nested query over the fixture tables.
    fn figure_query() -> Expr {
        let sub = map(
            "y",
            var("y").field("e"),
            select(
                "y",
                eq(var("x").field("a"), var("y").field("d")),
                table("Y"),
            ),
        );
        select(
            "x",
            set_cmp(SetCmpOp::SubsetEq, var("x").field("c"), sub),
            table("X"),
        )
    }

    fn project_ac(e: Expr) -> Expr {
        project(&["a", "c"], e)
    }

    fn a_values(v: &Value) -> Vec<i64> {
        v.as_set()
            .unwrap()
            .iter()
            .map(|t| t.as_tuple().unwrap().get("a").unwrap().as_int().unwrap())
            .collect()
    }

    #[test]
    fn figure2_bug_reproduced_by_unsafe_grouping() {
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        let ev = Evaluator::new(&db);

        // ground truth: nested-loop evaluation includes ⟨a=2, c=∅⟩
        let nested = ev.eval_closed(&project_ac(figure_query())).unwrap();
        assert_eq!(a_values(&nested), vec![1, 2]);

        // the GaWo87 pipeline loses it — the Complex Object bug
        let buggy = Gawo87Unsafe.apply(&figure_query(), &ctx).unwrap();
        let buggy_result = ev.eval_closed(&project_ac(buggy)).unwrap();
        assert_eq!(a_values(&buggy_result), vec![1]);
    }

    #[test]
    fn superset_variant_also_buggy() {
        // σ[x : x.c ⊇ Y'](X): all x with empty subquery results are lost
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        let ev = Evaluator::new(&db);
        let sub = map(
            "y",
            var("y").field("e"),
            select(
                "y",
                eq(var("x").field("a"), var("y").field("d")),
                table("Y"),
            ),
        );
        let q = select(
            "x",
            set_cmp(SetCmpOp::SupersetEq, var("x").field("c"), sub),
            table("X"),
        );
        let nested = ev.eval_closed(&project_ac(q.clone())).unwrap();
        // x1: {1,2} ⊇ {1,2,3}? no; x2: ∅ ⊇ ∅ yes; x3: {2,3} ⊇ {3} yes
        assert_eq!(a_values(&nested), vec![2, 3]);
        let buggy = Gawo87Unsafe.apply(&q, &ctx).unwrap();
        let buggy_result = ev.eval_closed(&project_ac(buggy)).unwrap();
        assert_eq!(a_values(&buggy_result), vec![3]);
    }

    #[test]
    fn outerjoin_repair_matches_nested_semantics() {
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        let ev = Evaluator::new(&db);
        let repaired = OuterjoinGroup.apply(&figure_query(), &ctx).unwrap();
        let fixed = ev.eval_closed(&project_ac(repaired)).unwrap();
        assert_eq!(a_values(&fixed), vec![1, 2]);
    }

    #[test]
    fn guard_rejects_runtime_dependent_predicates() {
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        // ⊆ reduces to "?" under ∅ → the guarded rule refuses
        assert!(Gawo87Guarded.apply(&figure_query(), &ctx).is_none());
    }

    #[test]
    fn guard_accepts_membership_predicates() {
        // P = x.b ∈ Y' reduces to false under Y' = ∅ — grouping is safe
        let db = figure12_db();
        let ctx = RewriteCtx {
            catalog: db.catalog(),
        };
        let ev = Evaluator::new(&db);
        let sub = map(
            "y",
            var("y").field("e"),
            select(
                "y",
                eq(var("x").field("a"), var("y").field("d")),
                table("Y"),
            ),
        );
        let q = select("x", member(var("x").field("a"), sub), table("X"));
        let safe = Gawo87Guarded.apply(&q, &ctx).unwrap();
        let grouped = ev.eval_closed(&project_ac(safe)).unwrap();
        let nested = ev.eval_closed(&project_ac(q)).unwrap();
        assert_eq!(grouped, nested);
        // x1: 1 ∈ {1,2,3} ✓; x2: subquery ∅ ✗; x3: 3 ∈ {3} ✓
        assert_eq!(a_values(&nested), vec![1, 3]);
    }

    use oodb_adl::expr::Expr;
}

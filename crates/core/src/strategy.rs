//! The four-step optimization strategy of §4.
//!
//! > "Given these options for optimization of nested ADL queries, the
//! > rewrite strategy is as follows:
//! >
//! > 1. Try to rewrite to the various relational join operators (join,
//! >    antijoin, or semijoin).
//! > 2. If the above is not possible, try to flatten set-valued
//! >    attributes; if the nesting phase can be skipped, this may be a
//! >    strategy worthwhile considering.
//! > 3. If the above is not possible, try to rewrite to one of the newly
//! >    defined operators, because they were introduced to get a better
//! >    performance compared to nested-loop processing.
//! > 4. If none of the above works, leave the query as it is, which means
//! >    that it is executed by means of nested loops."

use crate::rules::setcmp::SetCmpToQuant;
use crate::rules::{
    attr_unnest::AttrUnnest,
    hoist::{HoistUncorrelated, LetUp},
    nestjoin::{NestJoinMap, NestJoinSelect},
    normalize::{
        ForallToNotExists, IdentityMap, MergeSelects, PredToQuant, PushNegation, SimplifyBool,
    },
    range::{ExistsExchange, QuantSplitIndependent, QuantToMember, RangeExtract},
    rewrite_fixpoint,
    rule1::{UnnestExists, UnnestNotExists},
    rule2::MapJoin,
    RewriteCtx, Rule,
};
use crate::trace::RewriteTrace;
use crate::RewriteError;
use oodb_adl::expr::Expr;
use oodb_catalog::Catalog;

/// The result of optimization: the rewritten expression plus the full
/// rule-firing trace.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The (hopefully) unnested expression.
    pub expr: Expr,
    /// Every rule application, in order.
    pub trace: RewriteTrace,
}

/// Strategy driver. Construct via [`Optimizer::default`]; toggle
/// [`Optimizer::verify_types`] to disable the post-rewrite type check
/// (it is cheap and on by default).
#[derive(Debug, Clone)]
pub struct Optimizer {
    /// Maximum fixpoint passes per phase.
    pub max_passes: usize,
    /// After rewriting, re-infer the type and compare with the input's.
    pub verify_types: bool,
    /// Enable phase 3 (nestjoin rewrites). Disabling stops after the
    /// relational phases — what a flat-relational optimizer could do.
    pub enable_nestjoin: bool,
    /// Enable phase 2 (attribute unnesting).
    pub enable_attr_unnest: bool,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            max_passes: 32,
            verify_types: true,
            enable_nestjoin: true,
            enable_attr_unnest: true,
        }
    }
}

impl Optimizer {
    /// Runs the full §4 strategy on a closed ADL expression.
    pub fn optimize(&self, e: &Expr, catalog: &Catalog) -> Result<Optimized, RewriteError> {
        let ctx = RewriteCtx { catalog };
        let mut trace = RewriteTrace::new();
        let original_ty = if self.verify_types {
            Some(oodb_adl::infer_closed(e, catalog).map_err(RewriteError::Type)?)
        } else {
            None
        };

        let mut cur = e.clone();

        // Phase 0 — normalization: constants out, booleans simplified,
        // ∀ → ¬∃ canonical form, Table 2 predicate rewrites.
        let normalize: Vec<&dyn Rule> = vec![
            &SimplifyBool,
            &IdentityMap,
            &MergeSelects,
            &HoistUncorrelated,
            &LetUp,
            &PredToQuant,
            &ForallToNotExists,
            &PushNegation,
        ];
        cur = self.run_phase(cur, &normalize, &ctx, &mut trace)?;

        // Phase 1 — relational join operators (priority 1): profitable
        // Table 1 expansions, range extraction, quantifier exchange,
        // Rules 1 and 2.
        let relational: Vec<&dyn Rule> = vec![
            &SimplifyBool,
            &PushNegation,
            &SetCmpToQuant,
            &ForallToNotExists,
            &RangeExtract,
            &ExistsExchange,
            &UnnestExists,
            &UnnestNotExists,
            &MapJoin,
            &QuantSplitIndependent,
            &QuantToMember,
        ];
        cur = self.run_phase(cur, &relational, &ctx, &mut trace)?;

        // Phase 2 — unnesting of set-valued attributes (priority 2),
        // which can re-enable Rule 1; rerun the relational phase after.
        if self.enable_attr_unnest {
            let unnest: Vec<&dyn Rule> = vec![&AttrUnnest];
            let before = cur.clone();
            cur = self.run_phase(cur, &unnest, &ctx, &mut trace)?;
            if cur != before {
                cur = self.run_phase(cur, &relational, &ctx, &mut trace)?;
            }
        }

        // Phase 3 — new operators (priority 3): the nestjoin.
        if self.enable_nestjoin {
            let nest: Vec<&dyn Rule> = vec![&NestJoinSelect, &NestJoinMap];
            let before = cur.clone();
            cur = self.run_phase(cur, &nest, &ctx, &mut trace)?;
            if cur != before {
                // nestjoin may expose further relational opportunities in
                // what remains of the predicates
                cur = self.run_phase(cur, &relational, &ctx, &mut trace)?;
            }
        }

        // Phase 4 — whatever is left runs as nested loops.

        if let Some(t0) = original_ty {
            let t1 = oodb_adl::infer_closed(&cur, catalog).map_err(RewriteError::Type)?;
            if t0.unify(&t1).is_none() {
                return Err(RewriteError::TypeChanged {
                    before: t0.to_string(),
                    after: t1.to_string(),
                });
            }
        }
        Ok(Optimized { expr: cur, trace })
    }

    fn run_phase(
        &self,
        e: Expr,
        rules: &[&dyn Rule],
        ctx: &RewriteCtx<'_>,
        trace: &mut RewriteTrace,
    ) -> Result<Expr, RewriteError> {
        rewrite_fixpoint(e, rules, ctx, trace, self.max_passes)
            .ok_or(RewriteError::PassLimit(self.max_passes))
    }
}

/// Counts base-table references nested inside iterator parameter
/// expressions — the paper's measure of remaining nesting ("the goal is
/// to transform nested expressions […] into join expressions in which
/// base tables occur only at top level", §3). Zero means fully unnested.
pub fn nested_table_score(e: &Expr) -> usize {
    fn count_tables(e: &Expr) -> usize {
        let mut n = usize::from(matches!(e, Expr::Table(_)));
        e.for_each_child(&mut |c| n += count_tables(c));
        n
    }
    fn walk(e: &Expr, in_param: bool) -> usize {
        let mut score = 0;
        match e {
            Expr::Table(_) if in_param => score += 1,
            Expr::Map { body, input, .. } => {
                score += walk(body, true) + walk(input, in_param);
                return score;
            }
            Expr::Select { pred, input, .. } => {
                score += walk(pred, true) + walk(input, in_param);
                return score;
            }
            Expr::Join {
                pred, left, right, ..
            } => {
                score += walk(pred, true) + walk(left, in_param) + walk(right, in_param);
                return score;
            }
            Expr::NestJoin {
                pred,
                rfunc,
                left,
                right,
                ..
            } => {
                score += walk(pred, true)
                    + rfunc.as_ref().map_or(0, |g| walk(g, true))
                    + walk(left, in_param)
                    + walk(right, in_param);
                return score;
            }
            Expr::Quant { range, pred, .. } => {
                // a quantifier itself only occurs inside parameters; its
                // range and body inherit the parameter context
                score += walk(range, in_param) + walk(pred, in_param);
                return score;
            }
            Expr::Let { value, body, .. } => {
                score += walk(value, in_param) + walk(body, in_param);
                return score;
            }
            _ => {}
        }
        let _ = count_tables; // silence unused when in_param paths cover all
        e.for_each_child(&mut |c| score += walk(c, in_param));
        score
    }
    walk(e, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::{figure12_db, supplier_part_catalog, supplier_part_db};
    use oodb_engine::Evaluator;
    use oodb_value::SetCmpOp;

    fn optimize(e: &Expr) -> Optimized {
        Optimizer::default()
            .optimize(e, &supplier_part_catalog())
            .unwrap()
    }

    /// Example Query 5's nested translation.
    fn query5() -> Expr {
        select(
            "s",
            exists(
                "x",
                var("s").field("parts"),
                exists(
                    "p",
                    table("PART"),
                    and(
                        eq(var("x"), var("p").field("pid")),
                        eq(var("p").field("color"), str_lit("red")),
                    ),
                ),
            ),
            table("SUPPLIER"),
        )
    }

    #[test]
    fn query5_becomes_a_semijoin() {
        let out = optimize(&query5());
        assert!(out.trace.fired("exists-exchange"));
        assert!(out.trace.fired("rule1-exists"));
        assert!(matches!(
            out.expr,
            Expr::Join {
                kind: oodb_adl::JoinKind::Semi,
                ..
            }
        ));
        assert_eq!(nested_table_score(&out.expr), 0);
        // semantics preserved
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        assert_eq!(
            ev.eval_closed(&out.expr).unwrap(),
            ev.eval_closed(&query5()).unwrap()
        );
    }

    #[test]
    fn rewriting_example_1_membership() {
        // σ[x : x.a ∈ α[y : y.e](σ[y : q](Y))](X) ⇒ semijoin
        // (uncorrelated q would be hoisted; use a correlated q)
        let q = eq(var("y").field("d"), var("x").field("a"));
        let e = select(
            "x",
            member(
                var("x").field("a"),
                map("y", var("y").field("e"), select("y", q.clone(), table("Y"))),
            ),
            table("X"),
        );
        let db = figure12_db();
        let out = Optimizer::default().optimize(&e, db.catalog()).unwrap();
        assert!(out.trace.fired("setcmp-to-quant"));
        assert!(out.trace.fired("range-extract"));
        assert!(out.trace.fired("rule1-exists"));
        assert!(matches!(
            out.expr,
            Expr::Join {
                kind: oodb_adl::JoinKind::Semi,
                ..
            }
        ));
        let ev = Evaluator::new(&db);
        assert_eq!(
            ev.eval_closed(&out.expr).unwrap(),
            ev.eval_closed(&e).unwrap()
        );
    }

    #[test]
    fn rewriting_example_2_set_inclusion() {
        // σ[x : σ[y : q](Y) ⊆ x.c](X) ⇒ X ▷_{x,y : q ∧ y ∉ x.c} Y
        let q = eq(var("y").field("d"), var("x").field("a"));
        let e = select(
            "x",
            set_cmp(
                SetCmpOp::SubsetEq,
                map("y", var("y").field("e"), select("y", q.clone(), table("Y"))),
                var("x").field("c"),
            ),
            table("X"),
        );
        let db = figure12_db();
        let out = Optimizer::default().optimize(&e, db.catalog()).unwrap();
        assert!(out.trace.fired("rule1-not-exists"));
        assert!(matches!(
            out.expr,
            Expr::Join {
                kind: oodb_adl::JoinKind::Anti,
                ..
            }
        ));
        let ev = Evaluator::new(&db);
        assert_eq!(
            ev.eval_closed(&out.expr).unwrap(),
            ev.eval_closed(&e).unwrap()
        );
    }

    #[test]
    fn query4_uses_attr_unnest_then_antijoin() {
        let e = project(
            &["eid"],
            select(
                "s",
                exists(
                    "z",
                    var("s").field("parts"),
                    not(exists(
                        "p",
                        table("PART"),
                        eq(var("z"), var("p").field("pid")),
                    )),
                ),
                table("SUPPLIER"),
            ),
        );
        let out = optimize(&e);
        assert!(out.trace.fired("attr-unnest"));
        assert!(out.trace.fired("rule1-not-exists"));
        // π_eid(μ_parts(SUPPLIER) ▷ PART)
        let Expr::Project { input, .. } = &out.expr else {
            panic!("{}", out.expr)
        };
        assert!(matches!(
            input.as_ref(),
            Expr::Join {
                kind: oodb_adl::JoinKind::Anti,
                ..
            }
        ));
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        assert_eq!(
            ev.eval_closed(&out.expr).unwrap(),
            ev.eval_closed(&e).unwrap()
        );
        assert_eq!(nested_table_score(&out.expr), 0);
    }

    #[test]
    fn figure1_query_reaches_nestjoin() {
        let sub = map(
            "y",
            var("y").field("e"),
            select(
                "y",
                eq(var("x").field("a"), var("y").field("d")),
                table("Y"),
            ),
        );
        let e = select(
            "x",
            set_cmp(SetCmpOp::SubsetEq, var("x").field("c"), sub),
            table("X"),
        );
        let db = figure12_db();
        let out = Optimizer::default().optimize(&e, db.catalog()).unwrap();
        assert!(out.trace.fired("nestjoin-select"));
        assert_eq!(nested_table_score(&out.expr), 0);
        let ev = Evaluator::new(&db);
        assert_eq!(
            ev.eval_closed(&out.expr).unwrap(),
            ev.eval_closed(&e).unwrap()
        );
    }

    #[test]
    fn uncorrelated_subquery_hoisted_to_let() {
        // Example Query 3.1 (with flatten): uncorrelated subquery
        let sub = flatten(map(
            "t",
            var("t").field("parts"),
            select(
                "t",
                eq(var("t").field("sname"), str_lit("s1")),
                table("SUPPLIER"),
            ),
        ));
        let e = select(
            "s",
            set_cmp(SetCmpOp::SupersetEq, var("s").field("parts"), sub),
            table("SUPPLIER"),
        );
        let out = optimize(&e);
        assert!(out.trace.fired("hoist-uncorrelated"));
        assert!(matches!(out.expr, Expr::Let { .. }));
        assert_eq!(nested_table_score(&out.expr), 0);
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let v = ev.eval_closed(&out.expr).unwrap();
        assert_eq!(v, ev.eval_closed(&e).unwrap());
        // s1 and s3 supply ⊇ s1's parts
        assert_eq!(v.as_set().unwrap().len(), 2);
    }

    #[test]
    fn forall_query_becomes_antijoin() {
        // σ[s : ∀p ∈ σ[p : red](PART) • p.pid ∈ s.parts](SUPPLIER)
        let e = select(
            "s",
            forall(
                "p",
                select(
                    "p",
                    eq(var("p").field("color"), str_lit("red")),
                    table("PART"),
                ),
                member(var("p").field("pid"), var("s").field("parts")),
            ),
            table("SUPPLIER"),
        );
        let out = optimize(&e);
        assert!(out.trace.fired("forall-to-not-exists"));
        assert!(out.trace.fired("rule1-not-exists"));
        assert!(matches!(
            out.expr,
            Expr::Join {
                kind: oodb_adl::JoinKind::Anti,
                ..
            }
        ));
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let v = ev.eval_closed(&out.expr).unwrap();
        assert_eq!(v, ev.eval_closed(&e).unwrap());
        // suppliers stocking all red parts (bolt, screw, gear): none do —
        // wait: s3 has {11,12,13,14}: red parts are 11,13,15; 15 missing.
        // Nobody supplies gear(15): result is empty.
        assert!(v.as_set().unwrap().is_empty());
    }

    #[test]
    fn example_query6_full_strategy() {
        let sub = select(
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            table("PART"),
        );
        let e = map(
            "s",
            tuple(vec![
                ("sname", var("s").field("sname")),
                ("partssuppl", sub),
            ]),
            table("SUPPLIER"),
        );
        let out = optimize(&e);
        assert!(out.trace.fired("nestjoin-map"));
        assert_eq!(nested_table_score(&out.expr), 0);
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        assert_eq!(
            ev.eval_closed(&out.expr).unwrap(),
            ev.eval_closed(&e).unwrap()
        );
    }

    #[test]
    fn already_flat_queries_are_untouched() {
        let e = semijoin(
            "s",
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            table("SUPPLIER"),
            table("PART"),
        );
        let out = optimize(&e);
        assert!(out.trace.is_empty());
        assert_eq!(out.expr, e);
    }

    #[test]
    fn type_verification_passes_on_all_rewrites() {
        // spot-check that every strategy output type checks (guard is on
        // by default, so reaching Ok proves it)
        let _ = optimize(&query5());
    }

    #[test]
    fn nested_table_score_counts_correctly() {
        assert_eq!(nested_table_score(&query5()), 1);
        assert_eq!(nested_table_score(&table("PART")), 0);
        let flat = semijoin("a", "b", Expr::true_(), table("X"), table("Y"));
        assert_eq!(nested_table_score(&flat), 0);
        let in_pred = select("x", exists("y", table("Y"), Expr::true_()), table("X"));
        assert_eq!(nested_table_score(&in_pred), 1);
    }

    use oodb_adl::expr::Expr;
}

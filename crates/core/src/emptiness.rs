//! Static emptiness analysis — Table 3 of the paper.
//!
//! "The value of the expression `P(x, Y')`, with the empty set substituted
//! for `Y'`, determines whether or not dangling tuples should be included
//! into the result. Whenever `P(x, ∅)` can be statically reduced to
//! true/false, all/none of the dangling tuples must be included; whenever
//! this value is undetermined at compile time, it is run-time dependent.
//! […] the unnesting technique is guaranteed to deliver correct results
//! only if `P(x, ∅)` can be statically reduced to **false**." (§5.2.2)
//!
//! [`reduce_with_empty`] substitutes `∅` for the subquery occurrence and
//! folds; the resulting [`Truth`] guards the \[GaWo87\] grouping rewrite.

use crate::rules::replace_subexpr;
use oodb_adl::expr::{AggOp, Expr, QuantKind};
use oodb_value::{SetCmpOp, Value};

/// Three-valued static truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Statically `true` — **all** dangling tuples belong in the result
    /// (e.g. `x.c ⊇ ∅`).
    True,
    /// Statically `false` — dangling tuples never belong in the result
    /// (e.g. `x.c ⊂ ∅`); the grouping transformation is **safe**.
    False,
    /// Run-time dependent (`?` in Table 3), e.g. `x.c ⊆ ∅` ≡ `x.c = ∅`.
    Runtime,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Runtime => Truth::Runtime,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Runtime,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Runtime,
        }
    }
}

/// Reduces `P(x, ∅)`: substitutes the empty set for every occurrence of
/// `subquery` inside `pred`, then statically folds.
pub fn reduce_with_empty(pred: &Expr, subquery: &Expr) -> Truth {
    let substituted = replace_subexpr(pred, subquery, &Expr::empty_set());
    truth_of(&substituted)
}

/// Is the (set-valued) expression statically known to be empty?
fn is_statically_empty(e: &Expr) -> bool {
    match e {
        Expr::Lit(Value::Set(s)) => s.is_empty(),
        Expr::SetCons(es) => es.is_empty(),
        // operators that preserve emptiness of their input
        Expr::Select { input, .. }
        | Expr::Map { input, .. }
        | Expr::Project { input, .. }
        | Expr::Rename { input, .. }
        | Expr::Unnest { input, .. }
        | Expr::Nest { input, .. } => is_statically_empty(input),
        Expr::Flatten(inner) => is_statically_empty(inner),
        Expr::SetOp(op, a, b) => match op {
            oodb_adl::SetOp::Union => is_statically_empty(a) && is_statically_empty(b),
            oodb_adl::SetOp::Intersect => is_statically_empty(a) || is_statically_empty(b),
            oodb_adl::SetOp::Difference => is_statically_empty(a),
        },
        Expr::Product(a, b) => is_statically_empty(a) || is_statically_empty(b),
        Expr::Join {
            left, right, kind, ..
        } => match kind {
            oodb_adl::JoinKind::Inner => is_statically_empty(left) || is_statically_empty(right),
            _ => is_statically_empty(left),
        },
        Expr::NestJoin { left, .. } => is_statically_empty(left),
        _ => false,
    }
}

/// Statically known scalar value, if any (enough for count comparisons).
fn scalar_of(e: &Expr) -> Option<Value> {
    match e {
        Expr::Lit(v) => Some(v.clone()),
        Expr::Agg(AggOp::Count, inner) if is_statically_empty(inner) => Some(Value::Int(0)),
        Expr::Agg(AggOp::Sum, inner) if is_statically_empty(inner) => Some(Value::Int(0)),
        _ => None,
    }
}

/// Static truth of a boolean expression under the folding rules of
/// Table 3 (this is deliberately conservative: anything not covered is
/// [`Truth::Runtime`]).
pub fn truth_of(e: &Expr) -> Truth {
    match e {
        Expr::Lit(Value::Bool(true)) => Truth::True,
        Expr::Lit(Value::Bool(false)) => Truth::False,
        Expr::Not(p) => truth_of(p).not(),
        Expr::And(a, b) => truth_of(a).and(truth_of(b)),
        Expr::Or(a, b) => truth_of(a).or(truth_of(b)),
        Expr::Quant { q, range, pred, .. } => {
            if is_statically_empty(range) {
                // ∃ over ∅ is false; ∀ over ∅ is true (paper §4)
                return match q {
                    QuantKind::Exists => Truth::False,
                    QuantKind::Forall => Truth::True,
                };
            }
            // a non-empty (or unknown) range with a statically false
            // predicate still decides ∃; a true predicate decides nothing
            // (the range may be empty at run time).
            match (q, truth_of(pred)) {
                (QuantKind::Exists, Truth::False) => Truth::False,
                (QuantKind::Forall, Truth::True) => Truth::True,
                _ => Truth::Runtime,
            }
        }
        Expr::SetCmp(op, a, b) => {
            let (ae, be) = (is_statically_empty(a), is_statically_empty(b));
            table3(*op, ae, be)
        }
        Expr::Cmp(op, a, b) => match (scalar_of(a), scalar_of(b)) {
            (Some(va), Some(vb)) => match Value::compare(*op, &va, &vb) {
                Ok(true) => Truth::True,
                Ok(false) => Truth::False,
                Err(_) => Truth::Runtime,
            },
            _ => Truth::Runtime,
        },
        _ => Truth::Runtime,
    }
}

/// The Table 3 entries, generalized to either side being the known-empty
/// one. `ae`/`be` flag static emptiness of the lhs/rhs.
fn table3(op: SetCmpOp, ae: bool, be: bool) -> Truth {
    use SetCmpOp::*;
    match op {
        // x ∈ ∅ — false
        In if be => Truth::False,
        NotIn if be => Truth::True,
        // ∅ ⊂ s: runtime (s must be non-empty); s ⊂ ∅: false (Table 3)
        Subset if be => Truth::False,
        Subset if ae => Truth::Runtime,
        // s ⊆ ∅ ≡ s = ∅: runtime (Table 3 "?"); ∅ ⊆ s: true
        SubsetEq if ae => Truth::True,
        SubsetEq if be => Truth::Runtime,
        // s = ∅ / ∅ = s: runtime unless both
        SetEq if ae && be => Truth::True,
        SetEq if ae || be => Truth::Runtime,
        SetNe if ae && be => Truth::False,
        SetNe if ae || be => Truth::Runtime,
        // s ⊇ ∅: true (Table 3); ∅ ⊇ s: runtime
        SupersetEq if be => Truth::True,
        SupersetEq if ae => Truth::Runtime,
        // s ⊃ ∅: runtime (s non-empty?, Table 3 "?"); ∅ ⊃ s: false
        Superset if ae => Truth::False,
        Superset if be => Truth::Runtime,
        // ∅ ∋ x: false; s ∋ ∅-as-element: runtime (Table 3 "?")
        Contains if ae => Truth::False,
        NotContains if ae => Truth::True,
        Contains | NotContains => Truth::Runtime,
        _ => Truth::Runtime,
    }
}

/// Regenerates Table 3 as `(operator, P(x, ∅))` rows — used by the
/// benchmark report and pinned by tests.
pub fn table3_rows() -> Vec<(&'static str, Truth)> {
    use oodb_adl::dsl::*;
    let c = var("x").field("c");
    let yprime = var("Y'");
    [
        (SetCmpOp::Subset, "x.c ⊂ Y'"),
        (SetCmpOp::SubsetEq, "x.c ⊆ Y'"),
        (SetCmpOp::SetEq, "x.c = Y'"),
        (SetCmpOp::SupersetEq, "x.c ⊇ Y'"),
        (SetCmpOp::Superset, "x.c ⊃ Y'"),
        (SetCmpOp::Contains, "x.c ∋ Y'"),
    ]
    .into_iter()
    .map(|(op, label)| {
        let pred = set_cmp(op, c.clone(), yprime.clone());
        (label, reduce_with_empty(&pred, &yprime))
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;

    #[test]
    fn table3_matches_the_paper() {
        // Table 3: ⊂ → false, ⊆ → ?, = → ?, ⊇ → true, ⊃ → ?, ∋ → ?
        let rows = table3_rows();
        assert_eq!(
            rows,
            vec![
                ("x.c ⊂ Y'", Truth::False),
                ("x.c ⊆ Y'", Truth::Runtime),
                ("x.c = Y'", Truth::Runtime),
                ("x.c ⊇ Y'", Truth::True),
                ("x.c ⊃ Y'", Truth::Runtime),
                ("x.c ∋ Y'", Truth::Runtime),
            ]
        );
    }

    #[test]
    fn membership_in_empty_subquery_is_false() {
        // the COUNT-bug-free case: P(x, ∅) ≡ false makes grouping safe
        let s = var("Y'");
        let p = member(var("x").field("a"), s.clone());
        assert_eq!(reduce_with_empty(&p, &s), Truth::False);
        let np = not(member(var("x").field("a"), s.clone()));
        assert_eq!(reduce_with_empty(&np, &s), Truth::True);
    }

    #[test]
    fn count_comparisons_fold() {
        let s = var("Y'");
        // count(Y') = 0 under Y' = ∅ → true
        let p = eq(count(s.clone()), int(0));
        assert_eq!(reduce_with_empty(&p, &s), Truth::True);
        let p2 = gt(count(s.clone()), int(0));
        assert_eq!(reduce_with_empty(&p2, &s), Truth::False);
        // comparison against a run-time value stays runtime
        let p3 = eq(count(s.clone()), var("x").field("n"));
        assert_eq!(reduce_with_empty(&p3, &s), Truth::Runtime);
    }

    #[test]
    fn quantifiers_over_empty_ranges_fold() {
        let s = var("Y'");
        let ex = exists("y", s.clone(), Expr::true_());
        assert_eq!(reduce_with_empty(&ex, &s), Truth::False);
        let fa = forall("y", s.clone(), Expr::false_());
        assert_eq!(reduce_with_empty(&fa, &s), Truth::True);
    }

    #[test]
    fn emptiness_propagates_through_operators() {
        let s = var("Y'");
        // ∃y ∈ σ[u : q](α[w : w](Y')) • true — still empty underneath
        let wrapped = exists(
            "y",
            select("u", var("q"), map("w", var("w"), s.clone())),
            Expr::true_(),
        );
        assert_eq!(reduce_with_empty(&wrapped, &s), Truth::False);
        // intersection with ∅ is ∅
        let inter = exists(
            "y",
            set_op(oodb_adl::SetOp::Intersect, var("x").field("c"), s.clone()),
            Expr::true_(),
        );
        assert_eq!(reduce_with_empty(&inter, &s), Truth::False);
        // union is only empty if both are
        let uni = exists(
            "y",
            set_op(oodb_adl::SetOp::Union, var("x").field("c"), s.clone()),
            Expr::true_(),
        );
        assert_eq!(reduce_with_empty(&uni, &s), Truth::Runtime);
    }

    #[test]
    fn connectives_use_three_valued_logic() {
        let s = var("Y'");
        let f = member(var("z"), s.clone()); // false under ∅
        let r = eq(var("z"), int(1)); // runtime
        assert_eq!(
            reduce_with_empty(&and(f.clone(), r.clone()), &s),
            Truth::False
        );
        assert_eq!(
            reduce_with_empty(&or(f.clone(), r.clone()), &s),
            Truth::Runtime
        );
        assert_eq!(
            reduce_with_empty(&or(not(f.clone()), r.clone()), &s),
            Truth::True
        );
    }

    use oodb_adl::expr::Expr;
}

//! Rewrite traces.
//!
//! Every rule firing is recorded with the local expression before and
//! after, so a trace reads like the step-by-step derivations of §5
//! (Rewriting Examples 1–3). Tests assert on traces to pin *which* plan
//! shape a query reached, not merely that results match.

use std::fmt;

/// One rule application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Rule identifier (e.g. `"rule1-exists"`).
    pub rule: &'static str,
    /// The subexpression the rule matched (paper notation).
    pub before: String,
    /// What it was rewritten to.
    pub after: String,
}

/// An ordered list of rule applications.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteTrace {
    steps: Vec<TraceStep>,
}

impl RewriteTrace {
    /// Empty trace.
    pub fn new() -> Self {
        RewriteTrace::default()
    }

    /// Records a step.
    pub fn record(
        &mut self,
        rule: &'static str,
        before: &impl fmt::Display,
        after: &impl fmt::Display,
    ) {
        self.steps.push(TraceStep {
            rule,
            before: before.to_string(),
            after: after.to_string(),
        });
    }

    /// All steps, in application order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of rule firings.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no rule fired.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Did a rule with this name fire?
    pub fn fired(&self, rule: &str) -> bool {
        self.steps.iter().any(|s| s.rule == rule)
    }

    /// The names of all fired rules, in order (with repeats).
    pub fn rule_sequence(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.rule).collect()
    }
}

impl fmt::Display for RewriteTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "{:>3}. [{}]", i + 1, s.rule)?;
            writeln!(f, "       {}", s.before)?;
            writeln!(f, "     ≡ {}", s.after)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries_steps() {
        let mut t = RewriteTrace::new();
        assert!(t.is_empty());
        t.record("rule1-exists", &"σ[x : ∃y ∈ Y • p](X)", &"(X ⋉ Y)");
        assert_eq!(t.len(), 1);
        assert!(t.fired("rule1-exists"));
        assert!(!t.fired("rule2"));
        assert_eq!(t.rule_sequence(), vec!["rule1-exists"]);
        let text = t.to_string();
        assert!(text.contains("rule1-exists"));
        assert!(text.contains("⋉"));
    }
}

//! The CI bench-regression gate: `report --check BENCH_streaming.json`.
//!
//! The committed `BENCH_streaming.json` used to be documentation; this
//! module makes it an **enforced contract**. [`check`] re-runs the §7
//! workloads at the baseline's scale and fails (non-zero exit in the
//! `report` binary) when
//!
//! * any workload's `result_rows` differs from the baseline — a
//!   correctness regression dressed up as a perf number;
//! * any `*_work` counter — or the `mask_batches` vectorization
//!   counter — regresses beyond [`WORK_TOLERANCE`]: the deterministic,
//!   hardware-independent cost proxies the paper's argument is measured
//!   in. Wall-clock columns are deliberately *not* gated: CI machines
//!   are noisy, work counters are not.
//!
//! Either way it prints a per-workload delta table, so a red gate says
//! exactly which workload and which counter moved, by how much.
//!
//! The workspace builds offline (no serde), so the baseline is read
//! back with the small hand-rolled parser below — it understands
//! exactly the JSON the sibling emitter writes (flat objects of string
//! and number fields inside one `workloads` array).

use crate::streaming_report::{compare_counters_only, CompRow};
use std::fmt::Write as _;

/// Allowed relative growth of a `*_work` counter before the gate fails
/// (10%). Improvements (shrinking work) always pass.
pub const WORK_TOLERANCE: f64 = 0.10;

/// Absolute slack in work units, so a tiny baseline (or a zero) does
/// not turn one extra probe into a red build.
pub const WORK_SLACK: f64 = 16.0;

/// One workload row parsed from the committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Workload label.
    pub workload: String,
    /// Numeric fields, in file order.
    pub fields: Vec<(String, f64)>,
}

impl BaselineRow {
    /// The named numeric field, if present.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// The parsed committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The generator scale the numbers were measured at.
    pub scale: usize,
    /// Per-workload rows.
    pub workloads: Vec<BaselineRow>,
}

/// Parses the baseline JSON (the exact shape `streaming_report::to_json`
/// emits). Errors are strings — the gate prints them and exits non-zero.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let scale = scan_number_field(text, "scale")
        .ok_or_else(|| "baseline has no \"scale\" field".to_string())? as usize;
    let arr_start = text
        .find("\"workloads\"")
        .and_then(|i| text[i..].find('[').map(|j| i + j + 1))
        .ok_or_else(|| "baseline has no \"workloads\" array".to_string())?;
    let mut workloads = Vec::new();
    let mut rest = &text[arr_start..];
    while let Some(obj_start) = rest.find('{') {
        let obj_end = rest[obj_start..]
            .find('}')
            .map(|j| obj_start + j)
            .ok_or_else(|| "unterminated workload object".to_string())?;
        let obj = &rest[obj_start + 1..obj_end];
        workloads.push(parse_row(obj)?);
        rest = &rest[obj_end + 1..];
        // stop at the array's closing bracket
        if rest.trim_start().starts_with(']') {
            break;
        }
    }
    if workloads.is_empty() {
        return Err("baseline workloads array is empty".to_string());
    }
    Ok(Baseline { scale, workloads })
}

/// Parses one flat `"key": value, …` object body.
fn parse_row(body: &str) -> Result<BaselineRow, String> {
    let mut workload = None;
    let mut fields = Vec::new();
    let mut rest = body;
    while let Some(k0) = rest.find('"') {
        let k1 = rest[k0 + 1..]
            .find('"')
            .map(|j| k0 + 1 + j)
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &rest[k0 + 1..k1];
        let after = rest[k1 + 1..]
            .find(':')
            .map(|j| k1 + 2 + j)
            .ok_or_else(|| format!("no value for key {key:?}"))?;
        let value = rest[after..].trim_start();
        if let Some(stripped) = value.strip_prefix('"') {
            let end = stripped
                .find('"')
                .ok_or_else(|| format!("unterminated string value for {key:?}"))?;
            if key == "workload" {
                workload = Some(stripped[..end].to_string());
            }
            rest = &stripped[end + 1..];
        } else {
            let end = value.find([',', '}']).unwrap_or(value.len());
            let raw = value[..end].trim();
            let num = raw
                .parse::<f64>()
                .map_err(|e| format!("bad number {raw:?} for {key:?}: {e}"))?;
            fields.push((key.to_string(), num));
            rest = &value[end..];
        }
    }
    Ok(BaselineRow {
        workload: workload
            .ok_or_else(|| "workload object has no \"workload\" field".to_string())?,
        fields,
    })
}

/// Extracts a top-level `"name": number` field.
fn scan_number_field(text: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\"");
    let i = text.find(&needle)?;
    let rest = text[i + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// One gated comparison's outcome.
struct Delta {
    workload: String,
    column: &'static str,
    baseline: f64,
    current: f64,
    failed: bool,
}

impl Delta {
    fn pct(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.current - self.baseline) / self.baseline * 100.0
        }
    }
}

/// Recomputes the workloads at the baseline's scale and gates them (see
/// the module docs). `Ok(report)` when everything holds, `Err(report)`
/// when any gate fails — both carry the full delta table.
pub fn check(baseline_text: &str) -> Result<String, String> {
    let baseline = parse_baseline(baseline_text)?;
    // counters only: every gated column is computed and asserted, the
    // pure-timing sweeps (gated never) are skipped
    let rows = compare_counters_only(baseline.scale);
    check_rows(&baseline, &rows)
}

/// [`check`] against already-computed rows (separated for testability).
pub fn check_rows(baseline: &Baseline, rows: &[CompRow]) -> Result<String, String> {
    let mut deltas: Vec<Delta> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    for base in &baseline.workloads {
        let Some(row) = rows.iter().find(|r| r.workload == base.workload) else {
            missing.push(base.workload.clone());
            continue;
        };
        for (column, current) in row.gated_fields() {
            let Some(old) = base.field(column) else {
                // a column added after the baseline was committed is
                // not a regression; it starts being gated once the
                // baseline is refreshed
                continue;
            };
            let failed = if column == "result_rows" {
                current != old
            } else {
                current > old * (1.0 + WORK_TOLERANCE) && current > old + WORK_SLACK
            };
            deltas.push(Delta {
                workload: base.workload.clone(),
                column,
                baseline: old,
                current,
                failed,
            });
        }
    }

    // Join-order acceptance: on every recomputed workload, the
    // DP-enumerated plan's measured work must not exceed the
    // rewrite-order plan's. This compares the two freshly measured
    // columns against *each other* (not against the baseline), so a
    // cost-model drift that makes enumeration pick a worse order fails
    // the gate even if both columns stayed within tolerance.
    let mut order_violations: Vec<String> = Vec::new();
    for row in rows {
        if row.join_order_work > row.rewrite_order_work {
            order_violations.push(format!(
                "  {:<26} join_order_work {} > rewrite_order_work {} << REGRESSION",
                row.workload, row.join_order_work, row.rewrite_order_work
            ));
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Bench regression gate — scale {}, tolerance {:.0}% on *_work, result_rows exact, \
         join_order_work <= rewrite_order_work",
        baseline.scale,
        WORK_TOLERANCE * 100.0
    );
    let _ = writeln!(
        out,
        "  {:<26} {:<24} {:>12} {:>12} {:>8}",
        "workload", "column", "baseline", "current", "delta"
    );
    for d in &deltas {
        let _ = writeln!(
            out,
            "  {:<26} {:<24} {:>12} {:>12} {:>7.1}% {}",
            d.workload,
            d.column,
            d.baseline,
            d.current,
            d.pct(),
            if d.failed { "<< REGRESSION" } else { "" }
        );
    }
    for w in &missing {
        let _ = writeln!(out, "  {w:<26} MISSING from the recomputed workloads");
    }
    for v in &order_violations {
        let _ = writeln!(out, "{v}");
    }
    let failures =
        deltas.iter().filter(|d| d.failed).count() + missing.len() + order_violations.len();
    if failures == 0 {
        let _ = writeln!(out, "PASS: {} comparisons within tolerance", deltas.len());
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "FAIL: {failures} gate(s) violated — either fix the regression or refresh the \
             committed BENCH_streaming.json (run `cargo run -p oodb-bench --release --bin \
             report` and commit the result) with a justification"
        );
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming_report::to_json;

    /// A tiny synthetic row so tests don't run real workloads.
    fn row(workload: &str, work: u64, result_rows: usize) -> CompRow {
        CompRow {
            workload: workload.to_string(),
            result_rows,
            nested_loop_ms: 1.0,
            nested_loop_work: work,
            materialized_ms: 1.0,
            materialized_work: work,
            streaming_ms: 1.0,
            streaming_work: work,
            streaming_operators: 3,
            streaming_batches: 3,
            cost_based_work: work,
            forced_hash_work: work,
            forced_sort_merge_work: work,
            forced_nested_loop_work: work,
            streaming_row_ms: 1.0,
            streaming_col_ms: 1.0,
            streaming_p1_ms: 1.0,
            streaming_p2_ms: 1.0,
            streaming_p4_ms: 1.0,
            streaming_b64k_ms: 1.0,
            spill_bytes: 0,
            smj_spill_bytes: 0,
            join_order_work: work,
            rewrite_order_work: work,
            streaming_agg_ms: 1.0,
            mask_batches: 0,
            server_p50_ms: 1.0,
            server_p99_ms: 1.0,
            server_ttfb_ms: 1.0,
            streamed_chunks: 0,
            plan_ms: 1.0,
            exec_ms: 1.0,
        }
    }

    #[test]
    fn baseline_roundtrips_through_the_emitter() {
        let rows = vec![row("alpha", 1000, 42), row("beta", 2000, 7)];
        let text = to_json(123, &rows);
        let base = parse_baseline(&text).unwrap();
        assert_eq!(base.scale, 123);
        assert_eq!(base.workloads.len(), 2);
        assert_eq!(base.workloads[0].workload, "alpha");
        assert_eq!(base.workloads[0].field("streaming_work"), Some(1000.0));
        assert_eq!(base.workloads[1].field("result_rows"), Some(7.0));
        // identical rows pass the gate
        let report = check_rows(&base, &rows).expect("identical rows must pass");
        assert!(report.contains("PASS"), "{report}");
    }

    #[test]
    fn work_regressions_and_result_drift_fail() {
        let baseline_rows = vec![row("alpha", 1000, 42)];
        let base = parse_baseline(&to_json(99, &baseline_rows)).unwrap();
        // +50% work: regression
        let report = check_rows(&base, &[row("alpha", 1500, 42)]).unwrap_err();
        assert!(report.contains("REGRESSION"), "{report}");
        // within 10%: fine
        assert!(check_rows(&base, &[row("alpha", 1050, 42)]).is_ok());
        // faster is always fine
        assert!(check_rows(&base, &[row("alpha", 100, 42)]).is_ok());
        // different result cardinality: hard fail even if work improved
        let report = check_rows(&base, &[row("alpha", 100, 41)]).unwrap_err();
        assert!(report.contains("result_rows"), "{report}");
        // missing workload: fail
        let report = check_rows(&base, &[row("other", 1000, 42)]).unwrap_err();
        assert!(report.contains("MISSING"), "{report}");
    }

    #[test]
    fn dp_losing_to_the_rewrite_order_fails_the_gate() {
        let base = parse_baseline(&to_json(99, &[row("alpha", 1000, 42)])).unwrap();
        // within per-column tolerance of the baseline, but DP measured
        // *worse* than the rewrite order — the cross-column gate fires
        let mut bad = row("alpha", 1000, 42);
        bad.join_order_work = 1001;
        bad.rewrite_order_work = 1000;
        let report = check_rows(&base, &[bad]).unwrap_err();
        assert!(report.contains("join_order_work 1001"), "{report}");
        // equal is fine (DP declined to reorder)
        assert!(check_rows(&base, &[row("alpha", 1000, 42)]).is_ok());
    }

    #[test]
    fn tiny_baselines_get_absolute_slack() {
        let base = parse_baseline(&to_json(1, &[row("w", 10, 1)])).unwrap();
        // 10 → 12 is +20% but within the absolute slack of 16 units
        assert!(check_rows(&base, &[row("w", 12, 1)]).is_ok());
        // 10 → 50 exceeds both
        assert!(check_rows(&base, &[row("w", 50, 1)]).is_err());
    }

    #[test]
    fn committed_baseline_parses() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_streaming.json"
        ))
        .expect("committed baseline exists");
        let base = parse_baseline(&text).expect("committed baseline parses");
        assert_eq!(base.scale, 1600);
        assert_eq!(base.workloads.len(), 8);
        for w in &base.workloads {
            assert!(w.field("result_rows").is_some(), "{w:?}");
            assert!(w.field("streaming_work").is_some(), "{w:?}");
            assert!(w.field("join_order_work").is_some(), "{w:?}");
            assert!(w.field("rewrite_order_work").is_some(), "{w:?}");
        }
    }
}

//! CI smoke check for the server metrics layer.
//!
//! Boots a TCP server on a generated database, runs a handful of
//! queries (including one EXPLAIN ANALYZE and one deliberate error),
//! then prints the `METRICS` payload — Prometheus text exposition — to
//! stdout so the CI step can grep the metric families it expects.
//! Exits non-zero if any protocol step fails.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use oodb_datagen::{generate, GenConfig};
use oodb_server::{net, Protocol, ServerConfig};

const QUERIES: [&str; 3] = [
    "select d from d in DELIVERY where exists x in d.supply : x.part.color = \"red\"",
    "select s.sname from s in SUPPLIER where exists x in s.parts : \
     exists p in PART : x = p.pid and p.color = \"red\"",
    "select p.pname from p in PART where p.color = \"red\"",
];

fn main() {
    let db = Arc::new(generate(&GenConfig::scaled(300)));
    let handle = net::serve(
        db,
        ServerConfig {
            protocol: Protocol::Text,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind metrics-smoke server");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    let mut ask = |req: &str| -> Vec<String> {
        writeln!(writer, "{req}").expect("send request");
        writer.flush().expect("flush request");
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read response line");
            let line = line.trim_end().to_string();
            let done = line == "." || line.starts_with("ERR") || line == "BYE";
            lines.push(line);
            if done {
                break;
            }
        }
        lines
    };

    for q in QUERIES {
        let resp = ask(&format!("QUERY {q}"));
        assert!(
            resp[0].starts_with("OK "),
            "QUERY failed: {:?}",
            resp.first()
        );
    }
    // One analyzed query (exercises the diagnostic path) and one error
    // (exercises oodb_query_errors_total).
    let resp = ask(&format!("EXPLAIN ANALYZE {}", QUERIES[0]));
    assert!(
        resp[0].starts_with("OK "),
        "EXPLAIN ANALYZE failed: {:?}",
        resp.first()
    );
    assert!(
        resp.iter().any(|l| l.contains("actual_rows=")),
        "analyzed plan carries no actuals"
    );
    let resp = ask("QUERY select x from x in NO_SUCH_CLASS");
    assert!(
        resp[0].starts_with("ERR"),
        "expected ERR, got {:?}",
        resp.first()
    );

    let metrics = ask("METRICS");
    assert_eq!(metrics.first().map(String::as_str), Some("OK 0"));
    assert_eq!(metrics.last().map(String::as_str), Some("."));
    for line in &metrics[1..metrics.len() - 1] {
        println!("{line}");
    }
    ask("QUIT");
    handle.shutdown();
}

//! Regenerates every table and figure of the paper, plus the
//! performance-shape experiments recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p oodb-bench --bin report --release
//! ```

use oodb_adl::dsl::*;
use oodb_adl::expr::Expr;
use oodb_bench::*;
use oodb_catalog::fixtures::{figure12_db, figure3_db, supplier_part_db};
use oodb_catalog::Database;
use oodb_core::emptiness::table3_rows;
use oodb_core::rules::grouping::{Gawo87Unsafe, OuterjoinGroup};
use oodb_core::rules::nestjoin::NestJoinSelect;
use oodb_core::rules::setcmp::table1_rows;
use oodb_core::rules::{RewriteCtx, Rule};
use oodb_datagen::{generate, GenConfig};
use oodb_engine::{Evaluator, JoinAlgo, PlannerConfig};
use std::time::{Duration, Instant};

fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

fn fmt_dur(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_micros() >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{}µs", d.as_micros())
    }
}

fn headline(s: &str) {
    println!("\n{s}");
    println!("{}", "=".repeat(s.chars().count()));
}

fn main() {
    // `report --check BENCH_streaming.json` is the CI regression gate:
    // recompute the workloads at the committed baseline's scale, print
    // the per-workload delta table, and exit non-zero if any
    // result_rows differs or any *_work counter regresses beyond the
    // tolerance. No other experiment runs in this mode.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("usage: report --check <BENCH_streaming.json>");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        match oodb_bench::regression::check(&text) {
            Ok(report) => {
                println!("{report}");
                return;
            }
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }

    println!("From Nested-Loop to Join Queries in OODB — reproduction report");
    println!("(Steenhagen, Apers, Blanken, de By; VLDB 1994)");

    table1();
    table2();
    table3();
    figure1_figure2();
    figure3();
    perf_queries();
    perf_grouping();
    perf_pnhl();
    perf_join_algorithms();
    perf_streaming();
}

/// Experiment E — the streaming operator pipeline vs whole-set
/// materialization vs nested loops, emitting `BENCH_streaming.json`.
fn perf_streaming() {
    headline("Experiment E — Streaming pipeline vs materialized vs nested loops");
    let scale = 1_600;
    let rows =
        oodb_bench::streaming_report::write_bench_json(scale).expect("write BENCH_streaming.json");
    println!(
        "  {:<26} {:>7} {:>12} {:>13} {:>11} {:>9} {:>8} {:>11} {:>11}",
        "workload",
        "rows",
        "nested-loop",
        "materialized",
        "streaming",
        "ops",
        "batches",
        "cost-based",
        "best-forced"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>7} {:>10.2}ms {:>11.2}ms {:>9.2}ms {:>9} {:>8} {:>11} {:>11}",
            r.workload,
            r.result_rows,
            r.nested_loop_ms,
            r.materialized_ms,
            r.streaming_ms,
            r.streaming_operators,
            r.streaming_batches,
            r.cost_based_work,
            r.best_forced_work()
        );
        // the equi-join workloads are exempt: work() excludes sort
        // comparisons, so their forced sort-merge counter under-reports
        assert!(
            r.workload == "join_supplier_delivery"
                || r.workload == "multi_join_chain"
                || r.cost_based_work <= r.best_forced_work(),
            "{}: cost-based planning lost to a forced algorithm",
            r.workload
        );
    }
    println!("\n  Exchange parallelism (same plan, dop 1 / 2 / 4, best of 3):");
    println!(
        "  {:<26} {:>9} {:>9} {:>9} {:>10}",
        "workload", "dop=1", "dop=2", "dop=4", "speedup x4"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>9.2}x",
            r.workload,
            r.streaming_p1_ms,
            r.streaming_p2_ms,
            r.streaming_p4_ms,
            r.streaming_p1_ms / r.streaming_p4_ms.max(1e-9),
        );
    }
    println!("\n  Batch layout (same plan, dop 1, row vs columnar, best of 3):");
    println!(
        "  {:<26} {:>9} {:>9} {:>10}",
        "workload", "row", "columnar", "col/row"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>7.2}ms {:>7.2}ms {:>9.2}x",
            r.workload,
            r.streaming_row_ms,
            r.streaming_col_ms,
            r.streaming_row_ms / r.streaming_col_ms.max(1e-9),
        );
    }
    println!("\n  Vectorized layer (masks + columnar joins + streaming ν/Agg pinned on):");
    println!(
        "  {:<26} {:>11} {:>9} {:>12}",
        "workload", "vectorized", "row-path", "mask batches"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>9.2}ms {:>7.2}ms {:>12}",
            r.workload, r.streaming_agg_ms, r.streaming_row_ms, r.mask_batches,
        );
    }
    println!("\n  Serving layer (4 clients × 6 reps through one shared QueryServer):");
    println!(
        "  {:<26} {:>10} {:>10} {:>14}",
        "workload", "p50", "p99", "p99 / stream"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>8.2}ms {:>8.2}ms {:>13.2}x",
            r.workload,
            r.server_p50_ms,
            r.server_p99_ms,
            r.server_p99_ms / r.streaming_ms.max(1e-9),
        );
    }
    println!(
        "\n  Cursor streaming (time to first chunk vs collect-all, best of {}):",
        oodb_bench::streaming_report::PARALLEL_RUNS
    );
    println!(
        "  {:<26} {:>10} {:>11} {:>8} {:>12}",
        "workload", "ttfb", "collect-all", "chunks", "ttfb share"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>8.2}ms {:>9.2}ms {:>8} {:>11.1}%",
            r.workload,
            r.server_ttfb_ms,
            r.exec_ms,
            r.streamed_chunks,
            100.0 * r.server_ttfb_ms / r.exec_ms.max(1e-9),
        );
    }
    println!("\n  Phase breakdown (cold planner vs streaming execute, best of 3):");
    println!(
        "  {:<26} {:>9} {:>9} {:>12}",
        "workload", "plan", "execute", "plan share"
    );
    for r in &rows {
        let total = r.plan_ms + r.exec_ms;
        println!(
            "  {:<26} {:>7.2}ms {:>7.2}ms {:>11.1}%",
            r.workload,
            r.plan_ms,
            r.exec_ms,
            100.0 * r.plan_ms / total.max(1e-9),
        );
    }
    println!("\n  Join-order enumeration (DP vs the rewrite's association, work units):");
    println!(
        "  {:<26} {:>12} {:>14} {:>9}",
        "workload", "dp work", "rewrite work", "ratio"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>12} {:>14} {:>8.2}x",
            r.workload,
            r.join_order_work,
            r.rewrite_order_work,
            r.join_order_work as f64 / r.rewrite_order_work.max(1) as f64,
        );
        assert!(
            r.join_order_work <= r.rewrite_order_work,
            "{}: DP enumeration measured more work than the rewrite order",
            r.workload
        );
    }
    println!("\n  External memory (same plan, 64 KiB budget, best of 3):");
    println!(
        "  {:<26} {:>11} {:>11} {:>12} {:>15}",
        "workload", "unbounded", "64 KiB", "spill bytes", "smj spill bytes"
    );
    for r in &rows {
        println!(
            "  {:<26} {:>9.2}ms {:>9.2}ms {:>12} {:>15}",
            r.workload, r.streaming_p1_ms, r.streaming_b64k_ms, r.spill_bytes, r.smj_spill_bytes,
        );
    }
    println!("  (written to BENCH_streaming.json at the workspace root)");
}

/// Table 1 — rewriting set comparison operations.
fn table1() {
    headline("Table 1 — Rewriting Set Comparison Operations");
    for (op, expansion) in table1_rows() {
        println!("  {op:<14} ≡  {expansion}");
    }
    println!("  (each row is verified semantically in tests/tables_and_figures.rs)");
}

/// Table 2 — rewriting predicates.
fn table2() {
    headline("Table 2 — Rewriting Predicates");
    let rows = [
        ("Y' = ∅", "¬∃y ∈ Y' • true"),
        ("count(Y') = 0", "¬∃y ∈ Y' • true"),
        ("x.c ∩ Y' = ∅", "¬∃y ∈ Y' • y ∈ x.c"),
        ("∀z ∈ x.c • z ⊇ Y'", "¬∃y ∈ Y' • ∃z ∈ x.c • y ∉ z"),
    ];
    for (p, q) in rows {
        println!("  {p:<20} ≡  {q}");
    }
    println!("  (rows 1–3: rule `pred-to-quant`; row 4 derived by the general");
    println!("   machinery — see tests/rewriting_examples.rs)");
}

/// Table 3 — set comparison operators and bugs.
fn table3() {
    headline("Table 3 — Set Comparison Operators And Bugs: P(x, ∅)");
    for (label, truth) in table3_rows() {
        let shown = match truth {
            oodb_core::Truth::True => "true",
            oodb_core::Truth::False => "false",
            oodb_core::Truth::Runtime => "?",
        };
        println!("  {label:<12} {shown}");
    }
    println!("  (grouping without repair is safe only for the `false` rows)");
}

/// Figures 1 and 2 — the Complex Object bug on the paper's exact tables.
fn figure1_figure2() {
    headline("Figures 1 & 2 — Nesting With a Set-Valued Attribute / the Complex Object bug");
    let db = figure12_db();
    let ctx = RewriteCtx {
        catalog: db.catalog(),
    };
    let ev = Evaluator::new(&db);
    let show = |label: &str, e: &Expr| {
        let v = ev
            .eval_closed(&project(&["a", "c"], e.clone()))
            .expect("evaluates");
        println!("  {label:<26} {v}");
    };
    println!("  X = {}", db.table("X").unwrap().as_set_value());
    println!("  Y = {}", db.table("Y").unwrap().as_set_value());
    println!("  query: {}", figure_query());
    show("nested-loop (ground truth)", &figure_query());
    let buggy = Gawo87Unsafe.apply(&figure_query(), &ctx).expect("applies");
    show("GaWo87 grouping (BUGGY)", &buggy);
    let outer = OuterjoinGroup
        .apply(&figure_query(), &ctx)
        .expect("applies");
    show("outerjoin repair", &outer);
    let nest = NestJoinSelect
        .apply(&figure_query(), &ctx)
        .expect("applies");
    show("nestjoin (paper's fix)", &nest);
}

/// Figure 3 — the nestjoin example.
fn figure3() {
    headline("Figure 3 — Nestjoin Example");
    let db = figure3_db();
    let ev = Evaluator::new(&db);
    let e = map(
        "r",
        tuple(vec![
            ("a", var("r").field("a")),
            ("b", var("r").field("b")),
            (
                "ys",
                map(
                    "y",
                    tuple(vec![("c", var("y").field("c")), ("d", var("y").field("d"))]),
                    var("r").field("ys"),
                ),
            ),
        ]),
        nestjoin(
            "x",
            "y",
            eq(var("x").field("b"), var("y").field("d")),
            "ys",
            table("X"),
            table("Y"),
        ),
    );
    println!("  X ⊣_{{x,y : x.b = y.d; ys}} Y =");
    for row in ev
        .eval_closed(&e)
        .expect("evaluates")
        .as_set()
        .unwrap()
        .iter()
    {
        println!("    {row}");
    }
}

struct Row {
    label: String,
    naive: (Duration, u64),
    opt: (Duration, u64),
}

fn print_rows(rows: &[Row]) {
    println!(
        "  {:<26} {:>11} {:>13} {:>10} {:>12} {:>9}",
        "workload", "naive time", "naive work", "opt time", "opt work", "speedup"
    );
    for r in rows {
        let speedup = r.naive.0.as_secs_f64() / r.opt.0.as_secs_f64().max(1e-9);
        println!(
            "  {:<26} {:>11} {:>13} {:>10} {:>12} {:>8.1}×",
            r.label,
            fmt_dur(r.naive.0),
            r.naive.1,
            fmt_dur(r.opt.0),
            r.opt.1,
            speedup
        );
    }
}

fn bench_query(db: &Database, label: &str, q: &Expr) -> Row {
    let ((nv, ns), nt) = time_it(|| run_naive(db, q));
    let ((ov, os, _), ot) = time_it(|| run_optimized(db, q));
    assert_eq!(nv, ov, "{label}: optimized diverged");
    Row {
        label: label.to_string(),
        naive: (nt, ns.work()),
        opt: (ot, os.work()),
    }
}

/// The example-query experiments: nested-loop vs optimized at two scales.
fn perf_queries() {
    headline("Experiment A — Example Queries: nested loops vs the §4 strategy");
    println!("  (work = scans + loop iterations + predicate evals + hash ops)");
    for scale in [400usize, 1600] {
        let db = generate(&GenConfig {
            dangling_fraction: 0.02,
            empty_supplier_fraction: 0.05,
            ..GenConfig::scaled(scale)
        });
        println!(
            "\n  scale: |PART| = {}, |SUPPLIER| = {}",
            db.table("PART").unwrap().len(),
            db.table("SUPPLIER").unwrap().len()
        );
        let rows = vec![
            bench_query(&db, "Q5 red-part suppliers", &query5_nested()),
            bench_query(&db, "Q4 referential integrity", &query4_nested()),
            bench_query(&db, "Q6 portfolios (nestjoin)", &query6_nested()),
            bench_query(
                &db,
                "Q3.1 superset-of-anchor",
                &query31_nested("supplier-0"),
            ),
        ];
        print_rows(&rows);
    }
    // also the fixture sanity line
    let db = supplier_part_db();
    let (v, _, opt) = run_optimized(&db, &query5_nested());
    println!(
        "\n  fixture check: Q5 = {v}  via {} rule firings",
        opt.trace.len()
    );
}

/// Figure 2 at scale: grouping variants.
fn perf_grouping() {
    headline("Experiment B — Unnesting by grouping (Figure 2 at scale)");
    let db = figure_db(2_000, 4_000, 50, 4);
    let ctx = RewriteCtx {
        catalog: db.catalog(),
    };
    let q = figure_query();

    let ((naive_v, naive_s), naive_t) = time_it(|| run_naive(&db, &q));
    let buggy = Gawo87Unsafe.apply(&q, &ctx).expect("applies");
    let ((buggy_v, _), buggy_t) = time_it(|| run_planned(&db, &buggy, PlannerConfig::default()));
    let outer = OuterjoinGroup.apply(&q, &ctx).expect("applies");
    let ((outer_v, _), outer_t) = time_it(|| run_planned(&db, &outer, PlannerConfig::default()));
    let nestj = NestJoinSelect.apply(&q, &ctx).expect("applies");
    let ((nest_v, nest_s), nest_t) = time_it(|| run_planned(&db, &nestj, PlannerConfig::default()));

    let nres = naive_v.as_set().unwrap().len();
    println!("  |X| = 2000, |Y| = 4000, 50 join groups");
    println!(
        "  nested loops   : {:>10}  ({} rows, work {})",
        fmt_dur(naive_t),
        nres,
        naive_s.work()
    );
    println!(
        "  GaWo87 grouping: {:>10}  ({} rows — WRONG, lost {} dangling tuples)",
        fmt_dur(buggy_t),
        buggy_v.as_set().unwrap().len(),
        nres - buggy_v.as_set().unwrap().len()
    );
    println!(
        "  outerjoin fix  : {:>10}  ({} rows — correct)",
        fmt_dur(outer_t),
        outer_v.as_set().unwrap().len()
    );
    println!(
        "  nestjoin  ⊣    : {:>10}  ({} rows — correct, work {})",
        fmt_dur(nest_t),
        nest_v.as_set().unwrap().len(),
        nest_s.work()
    );
    assert_eq!(outer_v, naive_v);
    assert_eq!(nest_v, naive_v);
}

/// PNHL (§6.2): memory-budget sweep vs assembly.
fn perf_pnhl() {
    headline("Experiment C — Materializing set-valued attributes (PNHL, §6.2)");
    let db = generate(&GenConfig {
        parts: 8_000,
        suppliers: 2_000,
        deliveries: 0,
        parts_per_supplier: 10,
        dangling_fraction: 0.0,
        ..GenConfig::default()
    });
    let q = materialize_query();
    let ((naive_v, naive_s), naive_t) = time_it(|| run_naive(&db, &q));
    println!(
        "  |SUPPLIER| = 2000 (fanout ≈ 10), |PART| = 8000; naive nested loop: {} (work {})",
        fmt_dur(naive_t),
        naive_s.work()
    );
    for budget in [8_000usize, 2_000, 500, 125] {
        let cfg = PlannerConfig {
            cost_based: false,
            pnhl_budget: budget,
            prefer_assembly: false,
            ..Default::default()
        };
        let ((v, s), t) = time_it(|| run_planned(&db, &q, cfg));
        assert_eq!(v, naive_v);
        println!(
            "  PNHL budget {budget:>5}: {:>10}  ({} segments, {} probes)",
            fmt_dur(t),
            s.partitions,
            s.hash_probes
        );
    }
    let cat_stats = oodb_catalog::CatalogStats::from_database(&db);
    let ((v, s), t) = time_it(|| run_planned_stats(&db, &cat_stats, &q, Default::default()));
    assert_eq!(v, naive_v);
    println!(
        "  assembly (ptr) : {:>10}  ({} oid-index lookups)",
        fmt_dur(t),
        s.oid_lookups
    );
}

/// Join implementation choices the rewrite makes available (§6).
fn perf_join_algorithms() {
    headline("Experiment D — Join implementation choice (what unnesting buys)");
    let db = generate(&GenConfig {
        parts: 2_000,
        suppliers: 2_000,
        deliveries: 2_000,
        ..GenConfig::default()
    });
    // equi-join: deliveries with their suppliers
    let q = join(
        "s",
        "d",
        eq(var("s").field("eid"), var("d").field("supplier")),
        project(&["eid", "sname"], table("SUPPLIER")),
        project(&["did", "supplier"], table("DELIVERY")),
    );
    println!("  SUPPLIER ⋈ DELIVERY on eid = supplier (2000 × 2000):");
    let mut reference = None;
    for (label, algo) in [
        ("nested loop", JoinAlgo::NestedLoop),
        ("sort-merge", JoinAlgo::SortMerge),
        ("hash join", JoinAlgo::Hash),
    ] {
        let cfg = PlannerConfig {
            cost_based: false,
            join_algo: algo,
            use_indexes: false,
            ..Default::default()
        };
        let ((v, s), t) = time_it(|| run_planned(&db, &q, cfg));
        if let Some(r) = &reference {
            assert_eq!(&v, r);
        } else {
            reference = Some(v);
        }
        println!("    {label:<12}: {:>10}  (work {})", fmt_dur(t), s.work());
    }
    // index nested-loop join (secondary index on DELIVERY.supplier)
    let mut db2 = db.clone();
    db2.create_index("DELIVERY", "supplier").expect("indexable");
    let cat_stats = oodb_catalog::CatalogStats::from_database(&db2);
    let ((v, s), t) = time_it(|| run_planned_stats(&db2, &cat_stats, &q, Default::default()));
    assert_eq!(Some(v), reference);
    println!(
        "    {:<12}: {:>10}  (work {})",
        "index NL",
        fmt_dur(t),
        s.work()
    );
}

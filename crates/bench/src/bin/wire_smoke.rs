//! CI smoke check for the binary wire protocol.
//!
//! Boots a binary-protocol TCP server on a generated database, then
//! **pipelines** four tagged `QUERY` requests plus an `ANALYZE` in one
//! send burst before reading anything — the protocol's core promises
//! (tag-correct routing, streamed chunks that decode to exactly the
//! library result, END totals that match what arrived) are all asserted
//! on the way back. A deliberate error and a `METRICS` request at the
//! end make the error-code and uniform-verb paths part of the smoke.
//! Exits non-zero if any step fails.

use std::net::TcpStream;
use std::sync::Arc;

use oodb_datagen::{generate, GenConfig};
use oodb_server::wire::{self, verb, WireClient};
use oodb_server::{net, ErrorCode, Protocol, ServerConfig};
use oodb_value::{Set, Value};

const QUERIES: [&str; 4] = [
    "select d from d in DELIVERY where exists x in d.supply : x.part.color = \"red\"",
    "select s.sname from s in SUPPLIER where exists x in s.parts : \
     exists p in PART : x = p.pid and p.color = \"red\"",
    "select p.pname from p in PART where p.color = \"red\"",
    "select s.eid from s in SUPPLIER \
     where exists x in s.parts : not (exists p in PART : x = p.pid)",
];

fn main() {
    let db = Arc::new(generate(&GenConfig::scaled(300)));
    let handle = net::serve(
        Arc::clone(&db),
        ServerConfig {
            protocol: Protocol::Binary,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind wire-smoke server");

    let mut client = WireClient::new(TcpStream::connect(handle.addr()).expect("connect"));

    // Pipelined burst: four QUERYs and an ANALYZE, no reads in between.
    for (i, q) in QUERIES.iter().enumerate() {
        client
            .send(10 + i as u32, verb::QUERY, q.as_bytes())
            .expect("pipeline QUERY");
    }
    client
        .send(99, verb::ANALYZE, QUERIES[0].as_bytes())
        .expect("pipeline ANALYZE");

    // Responses come back in request order, each echoing its tag.
    let mut results = Vec::new();
    for (i, q) in QUERIES.iter().enumerate() {
        let (flags, rows) = client
            .read_query_response(10 + i as u32)
            .expect("read pipelined response")
            .unwrap_or_else(|(code, msg)| panic!("query {q:?} failed: {code} {msg}"));
        assert_eq!(
            flags & wire::flags::SCALAR,
            0,
            "workload queries are set-valued"
        );
        results.push(Value::Set(Set::from_values(rows)).to_string());
    }
    let analyzed = client
        .read_text_response(99)
        .expect("read ANALYZE response")
        .unwrap_or_else(|(code, msg)| panic!("ANALYZE failed: {code} {msg}"));
    assert!(
        analyzed.contains("actual_rows="),
        "analyzed plan carries no actuals"
    );

    // A repeat of query 0 must hit the shared caches and return the
    // same bytes.
    let (flags, rows) = client
        .query(500, QUERIES[0])
        .expect("repeat query")
        .expect("repeat query errored");
    assert_ne!(flags & wire::flags::PLAN_HIT, 0, "repeat missed plan cache");
    assert_eq!(
        Value::Set(Set::from_values(rows)).to_string(),
        results[0],
        "cached repeat diverged"
    );

    // A deliberate error carries its stable code.
    let (code, msg) = client
        .query(600, "select x from x in NO_SUCH_CLASS")
        .expect("error round trip")
        .expect_err("bogus query must fail");
    assert_eq!(
        ErrorCode::from_u16(code),
        Some(ErrorCode::Type),
        "unexpected code {code}: {msg}"
    );

    // METRICS over the uniform frame shape; print for the CI grep.
    let metrics = client
        .text_request(700, verb::METRICS, "")
        .expect("metrics round trip")
        .expect("metrics errored");
    assert!(
        metrics.contains("oodb_streamed_chunks_total"),
        "streaming counters missing from metrics"
    );
    println!("{metrics}");

    client.send(999, verb::QUIT, &[]).expect("send QUIT");
    let bye = client
        .read_frame()
        .expect("read BYE")
        .expect("server hung up before BYE");
    assert_eq!((bye.tag, bye.kind), (999, wire::kind::BYE));
    drop(client);
    handle.shutdown();
    println!(
        "wire-smoke: ok ({} pipelined queries + ANALYZE)",
        QUERIES.len()
    );
}

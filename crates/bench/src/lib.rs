//! Shared benchmark workloads and runners.
//!
//! Everything the criterion benches and the `report` binary execute lives
//! here: the paper's queries as ADL builders, a scaled generator for the
//! Figure 1/2 tables, and naive/optimized runners with work counters.

use oodb_adl::dsl::*;
use oodb_adl::expr::Expr;
use oodb_catalog::{Catalog, CatalogStats, ClassDef, Database};
use oodb_core::strategy::{Optimized, Optimizer};
use oodb_engine::{BatchKind, Evaluator, JoinAlgo, JoinOrder, Planner, PlannerConfig, Stats};
use oodb_value::{name, Oid, SetCmpOp, Tuple, TupleType, Type, Value};

pub mod regression;

/// Runs the naive nested-loop evaluation.
pub fn run_naive(db: &Database, e: &Expr) -> (Value, Stats) {
    let ev = Evaluator::new(db);
    let mut stats = Stats::new();
    let v = ev
        .eval_closed_with(e, &mut stats)
        .expect("naive evaluation");
    (v, stats)
}

/// Optimizes with the §4 strategy, then executes through the physical
/// planner.
pub fn run_optimized(db: &Database, e: &Expr) -> (Value, Stats, Optimized) {
    run_optimized_with(db, e, PlannerConfig::default())
}

/// Like [`run_optimized`] with an explicit planner configuration.
pub fn run_optimized_with(
    db: &Database,
    e: &Expr,
    config: PlannerConfig,
) -> (Value, Stats, Optimized) {
    let optimized = Optimizer::default()
        .optimize(e, db.catalog())
        .expect("optimize");
    let planner = Planner::with_config(db, config);
    let plan = planner.plan(&optimized.expr).expect("plan");
    let mut stats = Stats::new();
    let v = plan.execute(&mut stats).expect("execute");
    (v, stats, optimized)
}

/// Executes an already-rewritten expression through the planner.
pub fn run_planned(db: &Database, e: &Expr, config: PlannerConfig) -> (Value, Stats) {
    let planner = Planner::with_config(db, config);
    let plan = planner.plan(e).expect("plan");
    let mut stats = Stats::new();
    let v = plan.execute(&mut stats).expect("execute");
    (v, stats)
}

/// Like [`run_planned`], but reusing pre-collected catalog statistics —
/// timed loops must not re-scan the database once per plan (the naive
/// baseline pays no such scan, so re-collecting would skew every
/// comparison against it).
pub fn run_planned_stats(
    db: &Database,
    stats: &CatalogStats,
    e: &Expr,
    config: PlannerConfig,
) -> (Value, Stats) {
    let planner = Planner::with_stats(db, config, stats.clone());
    let plan = planner.plan(e).expect("plan");
    let mut s = Stats::new();
    let v = plan.execute(&mut s).expect("execute");
    (v, s)
}

/// Like [`run_planned`], but through the streaming operator pipeline.
pub fn run_planned_streaming(db: &Database, e: &Expr, config: PlannerConfig) -> (Value, Stats) {
    let planner = Planner::with_config(db, config);
    let plan = planner.plan(e).expect("plan");
    let mut stats = Stats::new();
    let v = plan
        .execute_streaming(&mut stats)
        .expect("execute streaming");
    (v, stats)
}

/// Like [`run_planned_streaming`], with pre-collected statistics (see
/// [`run_planned_stats`]).
pub fn run_planned_streaming_stats(
    db: &Database,
    stats: &CatalogStats,
    e: &Expr,
    config: PlannerConfig,
) -> (Value, Stats) {
    let planner = Planner::with_stats(db, config, stats.clone());
    let plan = planner.plan(e).expect("plan");
    let mut s = Stats::new();
    let v = plan.execute_streaming(&mut s).expect("execute streaming");
    (v, s)
}

/// Optimizes with the §4 strategy, then executes through the streaming
/// operator pipeline.
pub fn run_optimized_streaming(db: &Database, e: &Expr) -> (Value, Stats, Optimized) {
    let optimized = Optimizer::default()
        .optimize(e, db.catalog())
        .expect("optimize");
    let (v, stats) = run_planned_streaming(db, &optimized.expr, PlannerConfig::default());
    (v, stats, optimized)
}

/// Example Query 5's nested translation (suppliers supplying red parts).
pub fn query5_nested() -> Expr {
    map(
        "s0",
        var("s0").field("sname"),
        select(
            "s",
            exists(
                "x",
                var("s").field("parts"),
                exists(
                    "p",
                    table("PART"),
                    and(
                        eq(var("x"), var("p").field("pid")),
                        eq(var("p").field("color"), str_lit("red")),
                    ),
                ),
            ),
            table("SUPPLIER"),
        ),
    )
}

/// Example Query 4's nested translation (referential integrity).
pub fn query4_nested() -> Expr {
    map(
        "s",
        var("s").field("eid"),
        select(
            "s",
            exists(
                "z",
                var("s").field("parts"),
                not(exists(
                    "p",
                    table("PART"),
                    eq(var("z"), var("p").field("pid")),
                )),
            ),
            table("SUPPLIER"),
        ),
    )
}

/// Example Query 6's nested translation (supplier portfolios).
pub fn query6_nested() -> Expr {
    map(
        "s",
        tuple(vec![
            ("sname", var("s").field("sname")),
            (
                "partssuppl",
                select(
                    "p",
                    member(var("p").field("pid"), var("s").field("parts")),
                    table("PART"),
                ),
            ),
        ]),
        table("SUPPLIER"),
    )
}

/// Example Query 3.1's nested translation (uncorrelated ⊇ between blocks).
pub fn query31_nested(anchor: &str) -> Expr {
    map(
        "s0",
        var("s0").field("sname"),
        select(
            "s",
            set_cmp(
                SetCmpOp::SupersetEq,
                var("s").field("parts"),
                flatten(map(
                    "t",
                    var("t").field("parts"),
                    select(
                        "t",
                        eq(var("t").field("sname"), str_lit(anchor)),
                        table("SUPPLIER"),
                    ),
                )),
            ),
            table("SUPPLIER"),
        ),
    )
}

/// The Figure 1/2 nested query, over the fixture or a scaled database
/// built by [`figure_db`].
pub fn figure_query() -> Expr {
    select(
        "x",
        set_cmp(
            SetCmpOp::SubsetEq,
            var("x").field("c"),
            map(
                "y",
                var("y").field("e"),
                select(
                    "y",
                    eq(var("x").field("a"), var("y").field("d")),
                    table("Y"),
                ),
            ),
        ),
        table("X"),
    )
}

/// The §6.2 materialization query:
/// `α[s : s except (parts = σ[p : p.pid ∈ s.parts](PART))](SUPPLIER)`.
pub fn materialize_query() -> Expr {
    map(
        "s",
        except(
            var("s"),
            vec![(
                "parts",
                select(
                    "p",
                    member(var("p").field("pid"), var("s").field("parts")),
                    table("PART"),
                ),
            )],
        ),
        table("SUPPLIER"),
    )
}

/// The grouping-heavy ν workload: flatten every DELIVERY's `supply`
/// set with μ, then regroup the flat rows by the remaining delivery
/// attributes, collecting `(part, quantity)` pairs back into a
/// `supply` set — a full unnest/nest round trip whose cost is
/// dominated by the grouping operator, so the streaming hash-grouping
/// path (and its spill partitioning under a budget) does real work at
/// bench scale rather than riding along behind a join.
pub fn nu_group_query() -> Expr {
    nest(
        &["part", "quantity"],
        "supply",
        unnest("supply", table("DELIVERY")),
    )
}

/// The generic equi-join workload: SUPPLIER ⋈ DELIVERY on
/// `eid = supplier`, over the full tuples (set-valued `parts` and
/// `supply` attributes included, so both sides overflow a 64 KiB
/// budget). The member-join workloads above pin their own physical
/// operators, so this is the one §7 workload where `join_algo`
/// genuinely selects the implementation — and where a budgeted forced
/// sort-merge run exercises the keyed external merge (its spill
/// volume is the baseline's `smj_spill_bytes` column).
pub fn join_supplier_delivery_query() -> Expr {
    join(
        "s",
        "d",
        eq(var("s").field("eid"), var("d").field("supplier")),
        table("SUPPLIER"),
        table("DELIVERY"),
    )
}

/// The multi-join chain workload: SUPPLIER ⋈ μ_supply(DELIVERY) ⋈ PART,
/// associated left-deep the way the rewrite pipeline emits it — three
/// relations and two equi-join edges, the smallest shape where
/// join-order enumeration has a real choice to make. The gated
/// `join_order_work` / `rewrite_order_work` columns run it (and every
/// other workload) with DP enumeration on and off.
pub fn multi_join_chain_query() -> Expr {
    join(
        "sd",
        "p",
        eq(var("sd").field("part"), var("p").field("pid")),
        join(
            "s",
            "d",
            eq(var("s").field("eid"), var("d").field("supplier")),
            table("SUPPLIER"),
            unnest("supply", table("DELIVERY")),
        ),
        table("PART"),
    )
}

/// A scaled version of the Figure 1/2 tables: `nx` X-rows with `c` sets of
/// size ≤ `fanout`, `ny` Y-rows, join values in `0..groups`. A fraction of
/// X rows keeps `c = ∅` and a fraction gets an `a` matching no Y row —
/// the dangling tuples the Complex Object bug loses.
pub fn figure_db(nx: usize, ny: usize, groups: i64, fanout: usize) -> Database {
    let mut cat = Catalog::new();
    cat.add_class(
        ClassDef::new(
            name("XRow"),
            name("X"),
            name("xid"),
            TupleType::from_pairs([
                ("xid", Type::Oid(Some(name("XRow")))),
                ("a", Type::Int),
                ("c", Type::set(Type::Int)),
            ]),
        )
        .expect("valid class"),
    )
    .expect("fresh catalog");
    cat.add_class(
        ClassDef::new(
            name("YRow"),
            name("Y"),
            name("yid"),
            TupleType::from_pairs([
                ("yid", Type::Oid(Some(name("YRow")))),
                ("d", Type::Int),
                ("e", Type::Int),
            ]),
        )
        .expect("valid class"),
    )
    .expect("fresh catalog");
    let mut db = Database::new(cat).expect("catalog closed");

    // deterministic pseudo-random content (LCG) — reproducible without an
    // RNG dependency in this crate
    let mut state = 0x5DEECE66Du64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    for i in 0..nx {
        let dangling = i % 10 == 3; // this row's `a` joins nothing
        let a = if dangling {
            groups + (next() % 1000).abs()
        } else {
            next().rem_euclid(groups)
        };
        let csize = if i % 7 == 0 {
            0
        } else {
            1 + (next() as usize % fanout.max(1))
        };
        let c: Vec<Value> = (0..csize)
            .map(|_| Value::Int(next().rem_euclid(8)))
            .collect();
        db.insert(
            "X",
            Tuple::from_pairs([
                ("xid", Value::Oid(Oid(1_000_000 + i as u64))),
                ("a", Value::Int(a)),
                ("c", Value::set(c)),
            ]),
        )
        .expect("x row");
    }
    for j in 0..ny {
        db.insert(
            "Y",
            Tuple::from_pairs([
                ("yid", Value::Oid(Oid(2_000_000 + j as u64))),
                ("d", Value::Int(next().rem_euclid(groups))),
                ("e", Value::Int(next().rem_euclid(8))),
            ]),
        )
        .expect("y row");
    }
    db
}

/// The §7-style three-way comparison — nested loops vs the optimized
/// plan under whole-set materialization vs the same plan streamed — and
/// its `BENCH_streaming.json` serialization. Shared by `cargo bench -p
/// oodb-bench` and the `report` binary.
pub mod streaming_report {
    use super::*;
    use oodb_datagen::generate;
    use std::time::Instant;

    /// One workload's measurements: naive nested loops, the default
    /// (cost-based) plan under materialized and streaming execution, and
    /// the streaming plan under each forced join algorithm.
    #[derive(Debug, Clone)]
    pub struct CompRow {
        /// Workload label.
        pub workload: String,
        /// Result cardinality (identical across all paths).
        pub result_rows: usize,
        /// Naive nested-loop wall-clock (milliseconds) and work units.
        pub nested_loop_ms: f64,
        /// Work units of the nested-loop run.
        pub nested_loop_work: u64,
        /// Optimized plan, whole-set materialization.
        pub materialized_ms: f64,
        /// Work units of the materialized run.
        pub materialized_work: u64,
        /// Optimized plan, streaming pipeline.
        pub streaming_ms: f64,
        /// Work units of the streaming run.
        pub streaming_work: u64,
        /// Operators in the streaming plan.
        pub streaming_operators: usize,
        /// Total batches the streaming operators emitted.
        pub streaming_batches: u64,
        /// Work units of the cost-based plan (streaming; the default
        /// configuration — equals `streaming_work` by construction, kept
        /// as its own column so regressions against the forced
        /// algorithms below stay visible).
        pub cost_based_work: u64,
        /// Streaming work with `join_algo` forced to hash (rule-based).
        pub forced_hash_work: u64,
        /// Streaming work with `join_algo` forced to sort-merge.
        pub forced_sort_merge_work: u64,
        /// Streaming work with `join_algo` forced to nested loops.
        pub forced_nested_loop_work: u64,
        /// Streaming wall-clock under the legacy **row** batch layout
        /// (`batch_kind = Row`, dop 1, unbounded budget), best of
        /// [`PARALLEL_RUNS`] runs.
        pub streaming_row_ms: f64,
        /// Streaming wall-clock under the **columnar** batch layout
        /// (the default; same plan and knobs as `streaming_row_ms`), so
        /// the row-vs-columnar delta is a first-class artifact column.
        pub streaming_col_ms: f64,
        /// Streaming wall-clock at `parallelism = 1` (exchanges off) —
        /// best of [`PARALLEL_RUNS`] runs, like the other per-dop
        /// columns, so the speedup trajectory is comparable.
        pub streaming_p1_ms: f64,
        /// Streaming wall-clock at `parallelism = 2`.
        pub streaming_p2_ms: f64,
        /// Streaming wall-clock at `parallelism = 4`.
        pub streaming_p4_ms: f64,
        /// Streaming wall-clock under a 64 KiB memory budget (grace
        /// hash joins / external sorts where state exceeds it), best of
        /// [`PARALLEL_RUNS`] runs.
        pub streaming_b64k_ms: f64,
        /// Bytes the 64 KiB-budget run wrote to spill files (0 = the
        /// workload's state fit the budget). Deterministic (serial
        /// plan, fixed record encoding), so gated like the work
        /// counters: growth beyond tolerance means an operator started
        /// spilling more than the committed baseline.
        pub spill_bytes: u64,
        /// Bytes the same 64 KiB-budget run spills with `join_algo`
        /// forced to sort-merge — the keyed external merge whose runs
        /// are deduplicated at set boundaries before they reach disk.
        /// Gated: losing the fold-dedupe-into-the-merge optimization
        /// would roughly double this column and fail the gate.
        pub smj_spill_bytes: u64,
        /// Streaming wall-clock with the vectorized fast paths pinned
        /// **on** (compiled selection masks, columnar join outputs,
        /// streaming ν/`Agg`) regardless of `OODB_VECTORIZE` — dop 1,
        /// unbounded budget, best of [`PARALLEL_RUNS`] runs. Compare
        /// against `streaming_row_ms`/`streaming_col_ms` (which inherit
        /// the environment's vectorize default) to see what the
        /// vectorized layer buys on each workload.
        pub streaming_agg_ms: f64,
        /// Streaming work units with `join_order` pinned to DP
        /// enumeration (cost-based, serial, unbounded budget). Gated —
        /// and `report --check` additionally asserts this column never
        /// exceeds `rewrite_order_work`: enumeration must not pick a
        /// plan that measures *worse* than the order the rewrite
        /// produced.
        pub join_order_work: u64,
        /// Streaming work units of the same configuration with
        /// `join_order` pinned off — the rewrite's own association,
        /// the baseline DP is held against.
        pub rewrite_order_work: u64,
        /// Batches whose selection predicate was evaluated through a
        /// compiled mask instead of the row interpreter, from the
        /// deterministic counters run (`Stats::mask_batches`). Gated:
        /// a drop means batches silently fell back to row-at-a-time
        /// evaluation, which the gate tolerates, but growth beyond
        /// tolerance means the plan shape changed.
        pub mask_batches: u64,
        /// Median per-query latency of the many-client serving-layer
        /// driver: 4 concurrent sessions re-running the workload
        /// through one shared `QueryServer` (plan cache, shared morsel
        /// pool, admission control). Wall clock — not gated.
        pub server_p50_ms: f64,
        /// 99th-percentile latency of the same driver (with 24 pooled
        /// samples, effectively the worst observed query — the one
        /// that paid the plan-cache miss or lost the pool race).
        pub server_p99_ms: f64,
        /// Server time-to-first-chunk: milliseconds from execution
        /// start until the serving-path cursor hands over its first
        /// result chunk (result caching off — the pure streaming
        /// path), best of [`PARALLEL_RUNS`]. The wire protocol writes
        /// that chunk immediately, so this is the floor on streamed-
        /// response latency — compare against `exec_ms` (full drain)
        /// for what streaming buys. Wall clock — not gated.
        pub server_ttfb_ms: f64,
        /// Chunks the serving-path cursor streamed for one execution
        /// of the workload (the wire protocol sends one CHUNK frame
        /// per entry). Ungated — reported alongside `server_ttfb_ms`
        /// in the streaming-vs-collect table.
        pub streamed_chunks: u64,
        /// Planning-phase wall clock (rewrite + lowering on cached
        /// statistics), best of [`PARALLEL_RUNS`]. Ungated — machine
        /// noise, printed in the report's phase-breakdown table.
        pub plan_ms: f64,
        /// Execution-phase wall clock of the default streaming run,
        /// best of [`PARALLEL_RUNS`]. Ungated, like every wall time.
        pub exec_ms: f64,
    }

    /// Timed runs per degree of parallelism; the best (minimum) is
    /// recorded, damping scheduler noise.
    pub const PARALLEL_RUNS: usize = 3;

    impl CompRow {
        /// The best (lowest) work among the forced-algorithm runs.
        pub fn best_forced_work(&self) -> u64 {
            self.forced_hash_work
                .min(self.forced_sort_merge_work)
                .min(self.forced_nested_loop_work)
        }

        /// The deterministic columns the CI regression gate compares
        /// against the committed baseline: result cardinality (must be
        /// exact), every `*_work` counter, and the mask-evaluation
        /// batch count (tolerance-checked). Wall times are deliberately
        /// excluded — they are machine noise.
        pub fn gated_fields(&self) -> Vec<(&'static str, f64)> {
            vec![
                ("result_rows", self.result_rows as f64),
                ("nested_loop_work", self.nested_loop_work as f64),
                ("materialized_work", self.materialized_work as f64),
                ("streaming_work", self.streaming_work as f64),
                ("cost_based_work", self.cost_based_work as f64),
                ("forced_hash_work", self.forced_hash_work as f64),
                ("forced_sort_merge_work", self.forced_sort_merge_work as f64),
                (
                    "forced_nested_loop_work",
                    self.forced_nested_loop_work as f64,
                ),
                ("join_order_work", self.join_order_work as f64),
                ("rewrite_order_work", self.rewrite_order_work as f64),
                ("mask_batches", self.mask_batches as f64),
                ("spill_bytes", self.spill_bytes as f64),
                ("smj_spill_bytes", self.smj_spill_bytes as f64),
            ]
        }
    }

    fn ms(f: impl FnOnce() -> (Value, Stats)) -> (Value, Stats, f64) {
        let t0 = Instant::now();
        let (v, s) = f();
        (v, s, t0.elapsed().as_secs_f64() * 1e3)
    }

    /// Many-client serving-layer driver: [`SERVER_CLIENTS`] concurrent
    /// sessions each run the workload [`SERVER_REPS`] times through one
    /// shared `QueryServer` (plan cache, shared morsel pool), asserting
    /// every answer against the reference; returns (p50, p99) of the
    /// pooled per-query latencies in milliseconds.
    fn server_percentiles(db: &Database, nested: &Expr, expect: &Value) -> (f64, f64) {
        use oodb_server::{QueryServer, ServerConfig};
        const SERVER_CLIENTS: usize = 4;
        const SERVER_REPS: usize = 6;
        let server = QueryServer::with_config(
            db,
            ServerConfig {
                planner: PlannerConfig {
                    parallel_threshold: 256,
                    memory_budget: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let samples = std::sync::Mutex::new(Vec::with_capacity(SERVER_CLIENTS * SERVER_REPS));
        std::thread::scope(|scope| {
            for _ in 0..SERVER_CLIENTS {
                let server = &server;
                let samples = &samples;
                scope.spawn(move || {
                    let session = server.session();
                    for _ in 0..SERVER_REPS {
                        let t0 = Instant::now();
                        let out = session.run_expr(nested.clone()).expect("server run");
                        let dt = t0.elapsed().as_secs_f64() * 1e3;
                        assert_eq!(&out.result, expect, "server path diverged");
                        samples.lock().unwrap().push(dt);
                    }
                });
            }
        });
        let mut samples = samples.into_inner().unwrap();
        samples.sort_by(f64::total_cmp);
        let quantile = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
        (quantile(0.50), quantile(0.99))
    }

    /// Streaming-cursor driver: executes the workload through the
    /// serving path's `ResultCursor` (result caching off, so nothing is
    /// replayed or accumulated server-side) and reports the best
    /// time-to-first-chunk over [`PARALLEL_RUNS`] plus the chunk count
    /// of one full drain. The decoded stream is asserted against the
    /// reference on every run.
    fn cursor_streaming(db: &Database, nested: &Expr, expect: &Value) -> (f64, u64) {
        use oodb_server::{QueryServer, ServerConfig};
        let server = QueryServer::with_config(
            db,
            ServerConfig {
                planner: PlannerConfig {
                    memory_budget: 0,
                    ..Default::default()
                },
                cache_results: false,
                ..Default::default()
            },
        );
        let session = server.session();
        let mut best_ttfb = f64::INFINITY;
        let mut chunks = 0u64;
        for _ in 0..PARALLEL_RUNS {
            let mut cursor = session
                .open_expr_stream(nested.clone())
                .expect("open cursor");
            let mut rows = Vec::new();
            while let Some(batch) = cursor.next_chunk().expect("stream chunk") {
                rows.extend(batch.into_values());
            }
            let reassembled = if cursor.scalar() {
                rows.into_iter().next().unwrap_or(Value::Null)
            } else {
                Value::Set(oodb_value::Set::from_values(rows))
            };
            assert_eq!(&reassembled, expect, "cursor stream diverged");
            best_ttfb = best_ttfb.min(cursor.ttfb_us().unwrap_or(0) as f64 / 1e3);
            chunks = cursor.chunks_streamed();
        }
        (best_ttfb, chunks)
    }

    /// Runs the three-way comparison on the §7 workloads at `scale`
    /// generated objects, asserting all paths agree.
    pub fn compare(scale: usize) -> Vec<CompRow> {
        compare_with_timings(scale, true)
    }

    /// [`compare`] without the pure-timing sweeps (per-dop, per-batch-
    /// kind, 64 KiB-budget best-of-N loops): every run that produces a
    /// **gated** column — result cardinalities and the deterministic
    /// `*_work` counters — still executes and is still asserted equal,
    /// but columns the regression gate deliberately ignores are left at
    /// zero. This is what `report --check` calls, so the CI gate costs
    /// a fraction of a full bench pass.
    pub fn compare_counters_only(scale: usize) -> Vec<CompRow> {
        compare_with_timings(scale, false)
    }

    fn compare_with_timings(scale: usize, timings: bool) -> Vec<CompRow> {
        let db = generate(&oodb_datagen::GenConfig::scaled(scale));
        // collected once, outside every timed closure — the naive
        // baseline pays no statistics scan, so neither may the planner
        let cat_stats = CatalogStats::from_database(&db);
        let workloads: Vec<(&str, Expr)> = vec![
            ("q5_red_part_suppliers", query5_nested()),
            ("q4_referential_integrity", query4_nested()),
            ("q6_portfolios_nestjoin", query6_nested()),
            ("q31_superset_of_anchor", query31_nested("supplier-0")),
            ("materialize_section_6_2", materialize_query()),
            ("nu_group_supply", nu_group_query()),
            ("join_supplier_delivery", join_supplier_delivery_query()),
            ("multi_join_chain", multi_join_chain_query()),
        ];
        let mut rows = Vec::with_capacity(workloads.len());
        // The work-unit comparisons below measure the §7 algorithmic
        // argument, so they pin the memory budget off (a budget adds
        // spill I/O that the work counters deliberately exclude); the
        // `streaming_b64k_ms`/`spill_bytes` columns measure spilling
        // explicitly instead of inheriting `OODB_MEMORY_BUDGET`.
        let unbounded = PlannerConfig {
            memory_budget: 0,
            ..Default::default()
        };
        for (label, q) in workloads {
            let (nv, ns, nt) = ms(|| run_naive(&db, &q));
            let optimized = Optimizer::default()
                .optimize(&q, db.catalog())
                .expect("optimize");
            let (mv, m_stats, mt) =
                ms(|| run_planned_stats(&db, &cat_stats, &optimized.expr, unbounded.clone()));
            let (sv, s_stats, st) = ms(|| {
                run_planned_streaming_stats(&db, &cat_stats, &optimized.expr, unbounded.clone())
            });
            assert_eq!(nv, mv, "{label}: materialized diverged");
            assert_eq!(nv, sv, "{label}: streaming diverged");
            // the grouping workload is the streaming-ν acceptance
            // check: incremental hash grouping must stay within 2× of
            // the drain-to-set materialized execution in work units
            if label == "nu_group_supply" {
                assert!(
                    s_stats.work() <= 2 * m_stats.work().max(1),
                    "{label}: streaming grouping work {} exceeds 2× materialized work {}",
                    s_stats.work(),
                    m_stats.work(),
                );
            }
            // every rule-based forced algorithm, for the cost-based row
            // to be measured against
            let forced = |algo: JoinAlgo| {
                let cfg = PlannerConfig {
                    cost_based: false,
                    join_algo: algo,
                    memory_budget: 0,
                    ..Default::default()
                };
                let (fv, f_stats) = run_planned_streaming(&db, &optimized.expr, cfg);
                assert_eq!(nv, fv, "{label}: forced {algo:?} diverged");
                f_stats.work()
            };
            // the same cost-based streaming plan with join-order
            // enumeration pinned on (DP) and off (the rewrite's own
            // association) — explicitly, not via `OODB_JOIN_ORDER`, so
            // both gated columns are environment-independent
            let per_order = |join_order: JoinOrder| {
                let cfg = PlannerConfig {
                    memory_budget: 0,
                    join_order,
                    ..Default::default()
                };
                let (ov, o_stats) =
                    run_planned_streaming_stats(&db, &cat_stats, &optimized.expr, cfg);
                assert_eq!(nv, ov, "{label}: join order {join_order:?} diverged");
                o_stats.work()
            };
            let join_order_work = per_order(JoinOrder::Dp);
            let rewrite_order_work = per_order(JoinOrder::Off);
            // per-dop wall clock: the same streaming plan under exchange
            // parallelism 1 / 2 / 4, best of PARALLEL_RUNS timed runs; a
            // low threshold keeps the exchanges live at this scale
            let per_dop = |dop: usize| {
                let cfg = PlannerConfig {
                    parallelism: dop,
                    parallel_threshold: 256,
                    memory_budget: 0,
                    ..Default::default()
                };
                let mut best = f64::INFINITY;
                for _ in 0..PARALLEL_RUNS {
                    let (pv, _, pt) = ms(|| {
                        run_planned_streaming_stats(&db, &cat_stats, &optimized.expr, cfg.clone())
                    });
                    assert_eq!(nv, pv, "{label}: parallelism {dop} diverged");
                    best = best.min(pt);
                }
                best
            };
            // the same streaming plan under each batch layout (dop 1,
            // unbounded budget), best of PARALLEL_RUNS — the
            // row-vs-columnar wall-clock delta the report prints
            let per_kind = |batch_kind: BatchKind| {
                let cfg = PlannerConfig {
                    parallelism: 1,
                    memory_budget: 0,
                    batch_kind,
                    ..Default::default()
                };
                let mut best = f64::INFINITY;
                for _ in 0..PARALLEL_RUNS {
                    let (kv, _, kt) = ms(|| {
                        run_planned_streaming_stats(&db, &cat_stats, &optimized.expr, cfg.clone())
                    });
                    assert_eq!(nv, kv, "{label}: batch kind {batch_kind:?} diverged");
                    best = best.min(kt);
                }
                best
            };
            // the same streaming plan under a 64 KiB memory budget:
            // grace hash joins and external sorts where state exceeds
            // it, identical answers, measured spill volume
            let b64k_cfg = PlannerConfig {
                parallelism: 1,
                memory_budget: 64 << 10,
                ..Default::default()
            };
            // spill volume is deterministic (serial plan, fixed record
            // encoding), so it is measured — and gated — even in
            // counters-only mode; only the wall clock needs the
            // best-of-N timing loop
            let mut b64k_best = f64::INFINITY;
            let mut b64k_spill = 0u64;
            for _ in 0..if timings { PARALLEL_RUNS } else { 1 } {
                let (bv, b_stats, bt) = ms(|| {
                    run_planned_streaming_stats(&db, &cat_stats, &optimized.expr, b64k_cfg.clone())
                });
                assert_eq!(nv, bv, "{label}: 64 KiB budget diverged");
                b64k_best = b64k_best.min(bt);
                b64k_spill = b_stats.spill_bytes;
            }
            if !timings {
                b64k_best = 0.0;
            }
            // the same budget with the join algorithm forced to
            // sort-merge: the spill path whose runs go through the
            // keyed external merge with set-boundary deduplication
            // folded in, recorded as its own gated column
            let smj_cfg = PlannerConfig {
                cost_based: false,
                join_algo: JoinAlgo::SortMerge,
                parallelism: 1,
                memory_budget: 64 << 10,
                ..Default::default()
            };
            let (jv, j_stats) =
                run_planned_streaming_stats(&db, &cat_stats, &optimized.expr, smj_cfg);
            assert_eq!(nv, jv, "{label}: budgeted sort-merge diverged");
            // the same streaming plan with the vectorized fast paths
            // pinned on — explicitly, not via the `OODB_VECTORIZE`
            // default — so the column measures the vectorized layer
            // even when the environment turns it off
            let agg_cfg = PlannerConfig {
                parallelism: 1,
                memory_budget: 0,
                vectorize: true,
                ..Default::default()
            };
            let mut agg_best = 0.0f64;
            if timings {
                agg_best = f64::INFINITY;
                for _ in 0..PARALLEL_RUNS {
                    let (av, _, at) = ms(|| {
                        run_planned_streaming_stats(
                            &db,
                            &cat_stats,
                            &optimized.expr,
                            agg_cfg.clone(),
                        )
                    });
                    assert_eq!(nv, av, "{label}: vectorized streaming diverged");
                    agg_best = agg_best.min(at);
                }
            }
            // the many-client serving-layer percentiles (pure timing —
            // correctness of the served path is the concurrency suite's
            // job, but every driver answer is still asserted)
            let (server_p50, server_p99) = if timings {
                server_percentiles(&db, &q, &nv)
            } else {
                (0.0, 0.0)
            };
            // the streaming-cursor driver: time-to-first-chunk and
            // chunk volume through the serving path (pure timing, but
            // the stream is asserted row-identical every run)
            let (server_ttfb, streamed_chunks) = if timings {
                cursor_streaming(&db, &q, &nv)
            } else {
                (0.0, 0)
            };
            // phase breakdown (ungated wall clock): planning = rewrite +
            // lowering on the cached statistics, execution = the default
            // streaming run of that plan — each best of PARALLEL_RUNS
            let (mut plan_best, mut exec_best) = (0.0f64, 0.0f64);
            if timings {
                plan_best = f64::INFINITY;
                exec_best = f64::INFINITY;
                for _ in 0..PARALLEL_RUNS {
                    let t0 = Instant::now();
                    let opt = Optimizer::default()
                        .optimize(&q, db.catalog())
                        .expect("optimize");
                    let planner = Planner::with_stats(&db, unbounded.clone(), cat_stats.clone());
                    let plan = planner.plan(&opt.expr).expect("plan");
                    plan_best = plan_best.min(t0.elapsed().as_secs_f64() * 1e3);
                    let mut p_stats = Stats::default();
                    let t1 = Instant::now();
                    let pv = plan.execute_streaming(&mut p_stats).expect("execute");
                    exec_best = exec_best.min(t1.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(nv, pv, "{label}: phase-timed run diverged");
                }
            }
            rows.push(CompRow {
                workload: label.to_string(),
                result_rows: nv.as_set().map(|s| s.len()).unwrap_or(1),
                nested_loop_ms: nt,
                nested_loop_work: ns.work(),
                materialized_ms: mt,
                materialized_work: m_stats.work(),
                streaming_ms: st,
                streaming_work: s_stats.work(),
                streaming_operators: s_stats.operators.len(),
                streaming_batches: s_stats.total_batches(),
                cost_based_work: s_stats.work(),
                forced_hash_work: forced(JoinAlgo::Hash),
                forced_sort_merge_work: forced(JoinAlgo::SortMerge),
                forced_nested_loop_work: forced(JoinAlgo::NestedLoop),
                streaming_row_ms: if timings {
                    per_kind(BatchKind::Row)
                } else {
                    0.0
                },
                streaming_col_ms: if timings {
                    per_kind(BatchKind::Columnar)
                } else {
                    0.0
                },
                streaming_p1_ms: if timings { per_dop(1) } else { 0.0 },
                streaming_p2_ms: if timings { per_dop(2) } else { 0.0 },
                streaming_p4_ms: if timings { per_dop(4) } else { 0.0 },
                streaming_b64k_ms: b64k_best,
                spill_bytes: b64k_spill,
                smj_spill_bytes: j_stats.spill_bytes,
                join_order_work,
                rewrite_order_work,
                streaming_agg_ms: agg_best,
                mask_batches: s_stats.mask_batches,
                server_p50_ms: server_p50,
                server_p99_ms: server_p99,
                server_ttfb_ms: server_ttfb,
                streamed_chunks,
                plan_ms: plan_best,
                exec_ms: exec_best,
            });
        }
        rows
    }

    /// Serializes rows as a JSON document (hand-rolled — the workspace
    /// builds offline, without serde).
    pub fn to_json(scale: usize, rows: &[CompRow]) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {scale},\n"));
        out.push_str("  \"unit\": \"milliseconds\",\n");
        out.push_str("  \"workloads\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"result_rows\": {}, \
                 \"nested_loop_ms\": {:.3}, \"nested_loop_work\": {}, \
                 \"materialized_ms\": {:.3}, \"materialized_work\": {}, \
                 \"streaming_ms\": {:.3}, \"streaming_work\": {}, \
                 \"streaming_operators\": {}, \"streaming_batches\": {}, \
                 \"cost_based_work\": {}, \"forced_hash_work\": {}, \
                 \"forced_sort_merge_work\": {}, \"forced_nested_loop_work\": {}, \
                 \"streaming_row_ms\": {:.3}, \"streaming_col_ms\": {:.3}, \
                 \"streaming_p1_ms\": {:.3}, \"streaming_p2_ms\": {:.3}, \
                 \"streaming_p4_ms\": {:.3}, \"streaming_b64k_ms\": {:.3}, \
                 \"spill_bytes\": {}, \"smj_spill_bytes\": {}, \
                 \"join_order_work\": {}, \"rewrite_order_work\": {}, \
                 \"streaming_agg_ms\": {:.3}, \"mask_batches\": {}, \
                 \"server_p50_ms\": {:.3}, \"server_p99_ms\": {:.3}, \
                 \"server_ttfb_ms\": {:.3}, \"streamed_chunks\": {}, \
                 \"plan_ms\": {:.3}, \"exec_ms\": {:.3}}}{}\n",
                r.workload,
                r.result_rows,
                r.nested_loop_ms,
                r.nested_loop_work,
                r.materialized_ms,
                r.materialized_work,
                r.streaming_ms,
                r.streaming_work,
                r.streaming_operators,
                r.streaming_batches,
                r.cost_based_work,
                r.forced_hash_work,
                r.forced_sort_merge_work,
                r.forced_nested_loop_work,
                r.streaming_row_ms,
                r.streaming_col_ms,
                r.streaming_p1_ms,
                r.streaming_p2_ms,
                r.streaming_p4_ms,
                r.streaming_b64k_ms,
                r.spill_bytes,
                r.smj_spill_bytes,
                r.join_order_work,
                r.rewrite_order_work,
                r.streaming_agg_ms,
                r.mask_batches,
                r.server_p50_ms,
                r.server_p99_ms,
                r.server_ttfb_ms,
                r.streamed_chunks,
                r.plan_ms,
                r.exec_ms,
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Runs [`compare`] and writes `BENCH_streaming.json` at the
    /// workspace root, returning the rows for further printing.
    pub fn write_bench_json(scale: usize) -> std::io::Result<Vec<CompRow>> {
        let rows = compare(scale);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
        std::fs::write(path, to_json(scale, &rows))?;
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_datagen::{generate, GenConfig};

    #[test]
    fn all_workloads_agree_naive_vs_optimized() {
        let db = generate(&GenConfig::scaled(120));
        for q in [
            query5_nested(),
            query4_nested(),
            query6_nested(),
            query31_nested("supplier-0"),
            materialize_query(),
        ] {
            let (naive, _) = run_naive(&db, &q);
            let (opt, _, rewritten) = run_optimized(&db, &q);
            assert_eq!(naive, opt, "diverged: {}", rewritten.trace);
        }
    }

    #[test]
    fn cost_based_never_loses_to_the_best_forced_algorithm() {
        // the §7 argument in one assertion: letting the optimizer choose
        // per operator is at least as good as the best global rule
        let rows = streaming_report::compare(300);
        for r in &rows {
            // work() deliberately excludes sort comparisons, so on the
            // plain equi-join workloads the forced sort-merge counter
            // under-reports its true cost; the cost model (which does
            // price the sort) rightly picks hash anyway
            if r.workload == "join_supplier_delivery" || r.workload == "multi_join_chain" {
                continue;
            }
            assert!(
                r.cost_based_work <= r.best_forced_work(),
                "{}: cost-based {} > best forced {} (hash {}, sort-merge {}, nl {})",
                r.workload,
                r.cost_based_work,
                r.best_forced_work(),
                r.forced_hash_work,
                r.forced_sort_merge_work,
                r.forced_nested_loop_work,
            );
        }
    }

    #[test]
    fn per_operator_timing_overhead_is_bounded() {
        use std::time::Instant;
        // The acceptance bound for the observability layer: capturing
        // per-operator wall-clock timings (two monotonic-clock reads
        // per open/next_batch/close through the instrumentation shim)
        // must cost ≤ 5% on the streaming workloads. Timing is pinned
        // through `PlannerConfig`, not the environment; best-of-5 per
        // workload damps scheduler noise, and a small absolute slack
        // absorbs sub-millisecond jitter at this scale.
        let db = generate(&GenConfig::scaled(300));
        let cat_stats = CatalogStats::from_database(&db);
        let workloads = [
            query5_nested(),
            join_supplier_delivery_query(),
            multi_join_chain_query(),
        ];
        let measure = |timing: bool| -> f64 {
            let mut total = 0.0;
            for q in &workloads {
                let optimized = Optimizer::default()
                    .optimize(q, db.catalog())
                    .expect("optimize");
                let cfg = PlannerConfig {
                    timing,
                    parallelism: 1,
                    memory_budget: 0,
                    ..Default::default()
                };
                let planner = Planner::with_stats(&db, cfg, cat_stats.clone());
                let plan = planner.plan(&optimized.expr).expect("plan");
                let mut best = f64::INFINITY;
                for _ in 0..5 {
                    let mut stats = Stats::new();
                    let t0 = Instant::now();
                    plan.execute_streaming(&mut stats).expect("execute");
                    best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                }
                total += best;
            }
            total
        };
        let _warmup = measure(false);
        let off = measure(false);
        let on = measure(true);
        assert!(
            on <= off * 1.05 + 30.0,
            "per-operator timing overhead exceeds 5%: on={on:.2}ms off={off:.2}ms"
        );
    }

    #[test]
    fn figure_db_scales_and_agrees() {
        let db = figure_db(60, 80, 10, 4);
        assert_eq!(db.table("X").unwrap().len(), 60);
        assert_eq!(db.table("Y").unwrap().len(), 80);
        let (naive, _) = run_naive(&db, &figure_query());
        let (opt, _, _) = run_optimized(&db, &figure_query());
        assert_eq!(naive, opt);
        // the empty-c and dangling-a rows exist (bug bait)
        let empties = db
            .table("X")
            .unwrap()
            .rows()
            .filter(|r| r.get("c").unwrap().as_set().unwrap().is_empty())
            .count();
        assert!(empties > 0);
    }
}

//! Criterion benchmarks, one group per table/figure/experiment of the
//! paper (see DESIGN.md §5 for the index).
//!
//! Sizes are deliberately modest so `cargo bench --workspace` completes in
//! minutes — the *shape* (who wins, by what factor, where crossovers sit)
//! is the result, not absolute numbers. The `report` binary runs the same
//! workloads at larger scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oodb_adl::dsl::*;
use oodb_bench::*;
use oodb_catalog::CatalogStats;
use oodb_core::rules::grouping::{Gawo87Unsafe, OuterjoinGroup};
use oodb_core::rules::nestjoin::NestJoinSelect;
use oodb_core::rules::setcmp::table1_expansion;
use oodb_core::rules::{RewriteCtx, Rule};
use oodb_datagen::{generate, GenConfig};
use oodb_engine::{Evaluator, JoinAlgo, PlannerConfig};
use oodb_value::{SetCmpOp, Value};
use std::time::Duration;

/// Table 1: direct set-comparison evaluation vs its quantifier expansion.
/// The expansions are semantics-preserving; this measures their cost so
/// the strategy's choice to expand only the unnesting-friendly operators
/// is grounded.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_setcmp_vs_expansion");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let a = Value::set((0..64).map(Value::Int));
    let b = Value::set((0..96).step_by(2).map(Value::Int));
    let db = figure_db(2, 2, 2, 2); // any db; operands are literals
    let ev = Evaluator::new(&db);
    for op in [SetCmpOp::SubsetEq, SetCmpOp::SupersetEq, SetCmpOp::SetEq] {
        let direct = set_cmp(op, lit(a.clone()), lit(b.clone()));
        let expanded = table1_expansion(op, &lit(a.clone()), &lit(b.clone()));
        g.bench_with_input(
            BenchmarkId::new("direct", op.symbol()),
            &direct,
            |bch, q| bch.iter(|| ev.eval_closed(q).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("expanded", op.symbol()),
            &expanded,
            |bch, q| bch.iter(|| ev.eval_closed(q).unwrap()),
        );
    }
    g.finish();
}

/// Experiment A / Example Query 5: nested loops vs the optimized
/// semijoin, across scales (the headline figure of the paper).
fn bench_query5(c: &mut Criterion) {
    let mut g = c.benchmark_group("query5_semijoin");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for scale in [100usize, 400] {
        let db = generate(&GenConfig::scaled(scale));
        let q = query5_nested();
        g.bench_with_input(BenchmarkId::new("nested_loop", scale), &db, |bch, db| {
            bch.iter(|| run_naive(db, &q).0)
        });
        let (_, _, optimized) = run_optimized(&db, &q);
        let cat_stats = CatalogStats::from_database(&db);
        g.bench_with_input(BenchmarkId::new("semijoin", scale), &db, |bch, db| {
            bch.iter(|| run_planned_stats(db, &cat_stats, &optimized.expr, Default::default()).0)
        });
    }
    g.finish();
}

/// Example Query 4: antijoin vs nested loops (referential integrity).
fn bench_query4(c: &mut Criterion) {
    let mut g = c.benchmark_group("query4_antijoin");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for scale in [100usize, 400] {
        let db = generate(&GenConfig {
            dangling_fraction: 0.05,
            ..GenConfig::scaled(scale)
        });
        let q = query4_nested();
        g.bench_with_input(BenchmarkId::new("nested_loop", scale), &db, |bch, db| {
            bch.iter(|| run_naive(db, &q).0)
        });
        let (_, _, optimized) = run_optimized(&db, &q);
        let cat_stats = CatalogStats::from_database(&db);
        g.bench_with_input(BenchmarkId::new("antijoin", scale), &db, |bch, db| {
            bch.iter(|| run_planned_stats(db, &cat_stats, &optimized.expr, Default::default()).0)
        });
    }
    g.finish();
}

/// Example Query 6 / Figure 3: nestjoin implementations.
fn bench_query6_nestjoin(c: &mut Criterion) {
    let mut g = c.benchmark_group("query6_fig3_nestjoin");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let db = generate(&GenConfig::scaled(400));
    let q = query6_nested();
    g.bench_function("nested_loop", |bch| bch.iter(|| run_naive(&db, &q).0));
    let (_, _, optimized) = run_optimized(&db, &q);
    let cat_stats = CatalogStats::from_database(&db);
    g.bench_function("member_nestjoin", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &optimized.expr, Default::default()).0)
    });
    g.bench_function("nl_nestjoin", |bch| {
        bch.iter(|| {
            run_planned(
                &db,
                &optimized.expr,
                PlannerConfig {
                    cost_based: false,
                    join_algo: JoinAlgo::NestedLoop,
                    ..Default::default()
                },
            )
            .0
        })
    });
    g.finish();
}

/// Figure 2 at scale: grouping variants (buggy pipeline included — it is
/// measured for cost; correctness is asserted in tests).
fn bench_fig2_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_grouping");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let db = figure_db(300, 600, 30, 4);
    let ctx = RewriteCtx {
        catalog: db.catalog(),
    };
    let q = figure_query();
    g.bench_function("nested_loop", |bch| bch.iter(|| run_naive(&db, &q).0));
    let cat_stats = CatalogStats::from_database(&db);
    let buggy = Gawo87Unsafe.apply(&q, &ctx).unwrap();
    g.bench_function("gawo87_buggy", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &buggy, Default::default()).0)
    });
    let outer = OuterjoinGroup.apply(&q, &ctx).unwrap();
    g.bench_function("outerjoin_fix", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &outer, Default::default()).0)
    });
    let nestj = NestJoinSelect.apply(&q, &ctx).unwrap();
    g.bench_function("nestjoin_fix", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &nestj, Default::default()).0)
    });
    g.finish();
}

/// §6.2 PNHL: budget sweep + assembly comparison.
fn bench_pnhl(c: &mut Criterion) {
    let mut g = c.benchmark_group("pnhl_materialize");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let db = generate(&GenConfig {
        parts: 2_000,
        suppliers: 500,
        deliveries: 0,
        parts_per_supplier: 8,
        dangling_fraction: 0.0,
        ..GenConfig::default()
    });
    let q = materialize_query();
    g.bench_function("naive_nested_loop", |bch| bch.iter(|| run_naive(&db, &q).0));
    for budget in [2_000usize, 250, 50] {
        let cfg = PlannerConfig {
            cost_based: false,
            pnhl_budget: budget,
            prefer_assembly: false,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("pnhl_budget", budget), &cfg, |bch, cfg| {
            bch.iter(|| run_planned(&db, &q, cfg.clone()).0)
        });
    }
    let cat_stats = CatalogStats::from_database(&db);
    g.bench_function("assembly_pointer_join", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &q, Default::default()).0)
    });
    g.finish();
}

/// §6 join implementation choice on a plain equi-join.
fn bench_join_algos(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_algorithms");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let db = generate(&GenConfig {
        parts: 400,
        suppliers: 400,
        deliveries: 400,
        ..GenConfig::default()
    });
    let q = join(
        "s",
        "d",
        eq(var("s").field("eid"), var("d").field("supplier")),
        project(&["eid", "sname"], table("SUPPLIER")),
        project(&["did", "supplier"], table("DELIVERY")),
    );
    for (label, algo) in [
        ("nested_loop", JoinAlgo::NestedLoop),
        ("sort_merge", JoinAlgo::SortMerge),
        ("hash", JoinAlgo::Hash),
    ] {
        let cfg = PlannerConfig {
            cost_based: false,
            join_algo: algo,
            ..Default::default()
        };
        g.bench_function(label, |bch| {
            bch.iter(|| run_planned(&db, &q, cfg.clone()).0)
        });
    }
    g.finish();
}

/// The optimizer itself: full §4 strategy cost per query shape.
fn bench_rewriter(c: &mut Criterion) {
    let mut g = c.benchmark_group("rewriter_strategy");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let db = generate(&GenConfig::scaled(16));
    let opt = oodb_core::Optimizer::default();
    for (label, q) in [
        ("query5", query5_nested()),
        ("query4", query4_nested()),
        ("query6", query6_nested()),
        ("figure1", figure_query()),
    ] {
        // figure1 needs the figure catalog
        let cat = if label == "figure1" {
            figure_db(2, 2, 2, 2)
        } else {
            generate(&GenConfig::scaled(8))
        };
        let catalog = if label == "figure1" {
            cat.catalog()
        } else {
            db.catalog()
        };
        g.bench_function(label, |bch| {
            bch.iter(|| opt.optimize(&q, catalog).unwrap().expr)
        });
    }
    g.finish();
}

/// Ablation: universal quantification via the paper's antijoin (Rule 1.2
/// after ∀-normalization) versus the classical division route (\[Codd72\] /
/// \[CeGo85\]) — the design choice DESIGN.md calls out.
fn bench_forall_ablation(c: &mut Criterion) {
    use oodb_core::rules::division::ForallToDivision;
    let mut g = c.benchmark_group("forall_antijoin_vs_division");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let db = generate(&GenConfig {
        parts: 800,
        suppliers: 400,
        deliveries: 0,
        parts_per_supplier: 12,
        red_fraction: 0.01, // small divisor: a few "red" parts to cover
        empty_supplier_fraction: 0.0,
        dangling_fraction: 0.0,
        ..GenConfig::default()
    });
    let q = select(
        "s",
        forall(
            "p",
            select(
                "p",
                eq(var("p").field("color"), str_lit("red")),
                table("PART"),
            ),
            member(var("p").field("pid"), var("s").field("parts")),
        ),
        table("SUPPLIER"),
    );
    g.bench_function("nested_loop", |bch| bch.iter(|| run_naive(&db, &q).0));
    let (_, _, optimized) = run_optimized(&db, &q); // antijoin plan
    let cat_stats = CatalogStats::from_database(&db);
    g.bench_function("antijoin", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &optimized.expr, Default::default()).0)
    });
    let ctx = RewriteCtx {
        catalog: db.catalog(),
    };
    let division = ForallToDivision.apply(&q, &ctx).expect("fires");
    // correctness (divisor non-empty): all three agree
    assert_eq!(
        run_planned(&db, &division, PlannerConfig::default()).0,
        run_naive(&db, &q).0
    );
    g.bench_function("division", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &division, Default::default()).0)
    });
    g.finish();
}

/// §6 index nested-loop join vs hash join on an indexed extent.
fn bench_index_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_nl_join");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let mut db = generate(&GenConfig {
        parts: 500,
        suppliers: 500,
        deliveries: 500,
        ..GenConfig::default()
    });
    db.create_index("DELIVERY", "supplier").expect("indexable");
    let q = join(
        "s",
        "d",
        eq(var("s").field("eid"), var("d").field("supplier")),
        project(&["eid", "sname"], table("SUPPLIER")),
        table("DELIVERY"),
    );
    let cat_stats = CatalogStats::from_database(&db);
    g.bench_function("index_nl", |bch| {
        bch.iter(|| run_planned_stats(&db, &cat_stats, &q, Default::default()).0)
    });
    g.bench_function("hash", |bch| {
        bch.iter(|| {
            run_planned_stats(
                &db,
                &cat_stats,
                &q,
                PlannerConfig {
                    use_indexes: false,
                    ..Default::default()
                },
            )
            .0
        })
    });
    g.finish();
}

/// Streaming pipeline vs whole-set materialization on the §7 workloads,
/// also emitting `BENCH_streaming.json` at the workspace root.
fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_vs_materialized");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let db = generate(&GenConfig::scaled(400));
    for (label, q) in [
        ("query5", query5_nested()),
        ("query6", query6_nested()),
        ("materialize", materialize_query()),
    ] {
        let (_, _, optimized) = run_optimized(&db, &q);
        let cat_stats = CatalogStats::from_database(&db);
        g.bench_with_input(
            BenchmarkId::new("materialized", label),
            &optimized.expr,
            |bch, e| bch.iter(|| run_planned_stats(&db, &cat_stats, e, Default::default()).0),
        );
        g.bench_with_input(
            BenchmarkId::new("streaming", label),
            &optimized.expr,
            |bch, e| {
                bch.iter(|| run_planned_streaming_stats(&db, &cat_stats, e, Default::default()).0)
            },
        );
    }
    g.finish();
    // scale 1600 matches the report binary — and is large enough that
    // the 64 KiB-budget columns show real spilling (PART alone encodes
    // past the budget), so the spill columns in the artifact are live
    let rows =
        oodb_bench::streaming_report::write_bench_json(1_600).expect("write BENCH_streaming.json");
    println!(
        "wrote BENCH_streaming.json ({} workloads, nested-loop vs materialized vs streaming)",
        rows.len()
    );
}

criterion_group!(
    benches,
    bench_table1,
    bench_query5,
    bench_query4,
    bench_query6_nestjoin,
    bench_fig2_grouping,
    bench_pnhl,
    bench_join_algos,
    bench_rewriter,
    bench_forall_ablation,
    bench_index_join,
    bench_streaming
);
criterion_main!(benches);

//! # OOSQL → ADL translation
//!
//! "Translation of OOSQL queries into the algebra is done in a simple,
//! almost one-to-one way. […] In the translation phase, nested OOSQL
//! queries are translated into nested algebraic expressions" (paper §3).
//!
//! The central equivalence:
//!
//! ```text
//! select e₁ from x in e₂ where e₃   ≡   α[x : e₁](σ[x : e₃](e₂))
//! ```
//!
//! — a selection `σ` computes the where-clause restriction, then a map `α`
//! computes the "projection" (arbitrary select-clause expression). Nested
//! blocks translate recursively, producing nested (tuple-oriented)
//! algebra; **no optimization happens here** — unnesting is the job of
//! `oodb-core`.
//!
//! Additional translation duties:
//! * multi-binding from-clauses become `⋃(α[x₁ : … ](e₁))` chains;
//! * OOSQL's implicit path dereferencing becomes the explicit ADL
//!   `deref` (the materialize operator of §6.2);
//! * `=`/`!=` on set-typed operands become set equality;
//! * the `with` construct becomes `let`.

use oodb_adl::expr::Expr;
use oodb_catalog::Catalog;
use oodb_oosql::ast::{AggKind, OExpr, SetBinOp};
use oodb_oosql::typecheck::{deref_step, infer, OEnv};
use oodb_oosql::TypeError;
use oodb_value::{Name, SetCmpOp, Type, Value};
use std::fmt;

/// Errors raised during translation.
///
/// A query that passed the type checker only fails here for constructs the
/// algebra cannot express (currently: non-literal `date(…)` arguments).
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// The OOSQL type checker rejected a subexpression (translation
    /// re-infers types to drive dereferencing, so errors can surface here
    /// when translating an unchecked AST).
    Type(TypeError),
    /// `date(e)` with a non-literal `e`.
    NonLiteralDate(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Type(e) => write!(f, "{e}"),
            TranslateError::NonLiteralDate(e) => {
                write!(f, "date(…) requires an integer literal, found `{e}`")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<TypeError> for TranslateError {
    fn from(e: TypeError) -> Self {
        TranslateError::Type(e)
    }
}

/// Translates a (type-correct) OOSQL query into a nested ADL expression.
pub fn translate(q: &OExpr, catalog: &Catalog) -> Result<Expr, TranslateError> {
    let t = Translator { catalog };
    t.tr(q, &OEnv::new())
}

/// A plan-cache key for a translated query: the canonical
/// alpha-normalized rendering (exact — used for lookup) plus a 64-bit
/// FNV fingerprint (compact — used for display and the wire protocol).
/// Queries that differ only in bound-variable names produce equal keys,
/// so `select s.sname from s in …` and `select x.sname from x in …`
/// share one cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical normalized ADL text (`oodb_adl::normal_key`).
    pub text: String,
    /// FNV-1a fingerprint of `text`.
    pub hash: u64,
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.hash)
    }
}

/// The [`PlanKey`] of a translated (nested ADL) query expression.
pub fn plan_cache_key(e: &Expr) -> PlanKey {
    let text = oodb_adl::normal_key(e);
    let hash = oodb_adl::key_hash(&text);
    PlanKey { text, hash }
}

struct Translator<'a> {
    catalog: &'a Catalog,
}

impl Translator<'_> {
    fn tr(&self, e: &OExpr, env: &OEnv) -> Result<Expr, TranslateError> {
        Ok(match e {
            OExpr::Lit(v) => Expr::Lit(v.clone()),
            OExpr::Ident(n) => {
                if env.get(n).is_some() {
                    Expr::Var(n.clone())
                } else if self.catalog.is_extent(n) {
                    Expr::Table(n.clone())
                } else {
                    return Err(TypeError::new(format!(
                        "`{n}` is neither a variable in scope nor a base table"
                    ))
                    .into());
                }
            }
            OExpr::Path(inner, attr) => {
                let t = infer(inner, env, self.catalog)?;
                let base = self.tr(inner, env)?;
                let (_, class) = deref_step(&t, self.catalog)?;
                let obj = match class {
                    Some(c) => Expr::Deref(Box::new(base), c),
                    None => base,
                };
                Expr::Field(Box::new(obj), attr.clone())
            }
            OExpr::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, fe) in fields {
                    out.push((n.clone(), self.tr(fe, env)?));
                }
                Expr::TupleCons(out)
            }
            OExpr::SetLit(es) => {
                let mut out = Vec::with_capacity(es.len());
                for se in es {
                    out.push(self.tr(se, env)?);
                }
                Expr::SetCons(out)
            }
            OExpr::Cmp(op, a, b) => {
                // `=`/`≠` on sets is set equality (Table 1's `=` row)
                let ta = infer(a, env, self.catalog)?;
                let (la, lb) = (self.tr(a, env)?, self.tr(b, env)?);
                if ta.is_set() {
                    let sop = match op {
                        oodb_value::CmpOp::Eq => SetCmpOp::SetEq,
                        oodb_value::CmpOp::Ne => SetCmpOp::SetNe,
                        other => {
                            return Err(TypeError::new(format!(
                                "ordering comparison `{}` on sets",
                                other.symbol()
                            ))
                            .into())
                        }
                    };
                    Expr::SetCmp(sop, Box::new(la), Box::new(lb))
                } else {
                    Expr::Cmp(*op, Box::new(la), Box::new(lb))
                }
            }
            OExpr::SetCmp(op, a, b) => {
                Expr::SetCmp(*op, Box::new(self.tr(a, env)?), Box::new(self.tr(b, env)?))
            }
            OExpr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(self.tr(a, env)?), Box::new(self.tr(b, env)?))
            }
            OExpr::Neg(inner) => {
                let t = infer(inner, env, self.catalog)?;
                let zero = match t {
                    Type::Float => Expr::Lit(Value::float(0.0)),
                    _ => Expr::int(0),
                };
                Expr::Arith(
                    oodb_value::ArithOp::Sub,
                    Box::new(zero),
                    Box::new(self.tr(inner, env)?),
                )
            }
            OExpr::And(a, b) => Expr::And(Box::new(self.tr(a, env)?), Box::new(self.tr(b, env)?)),
            OExpr::Or(a, b) => Expr::Or(Box::new(self.tr(a, env)?), Box::new(self.tr(b, env)?)),
            OExpr::Not(inner) => Expr::Not(Box::new(self.tr(inner, env)?)),
            OExpr::SetBin(op, a, b) => {
                let sop = match op {
                    SetBinOp::Union => oodb_adl::SetOp::Union,
                    SetBinOp::Intersect => oodb_adl::SetOp::Intersect,
                    SetBinOp::Minus => oodb_adl::SetOp::Difference,
                };
                Expr::SetOp(sop, Box::new(self.tr(a, env)?), Box::new(self.tr(b, env)?))
            }
            OExpr::Quant {
                exists,
                var,
                range,
                pred,
            } => {
                let tr_range = self.tr(range, env)?;
                let elem = match infer(range, env, self.catalog)? {
                    Type::Set(e) => *e,
                    other => {
                        return Err(TypeError::new(format!(
                            "quantifier range must be a set, found {other}"
                        ))
                        .into())
                    }
                };
                let inner_env = env.bind(var, elem);
                let tr_pred = self.tr(pred, &inner_env)?;
                Expr::Quant {
                    q: if *exists {
                        oodb_adl::QuantKind::Exists
                    } else {
                        oodb_adl::QuantKind::Forall
                    },
                    var: var.clone(),
                    range: Box::new(tr_range),
                    pred: Box::new(tr_pred),
                }
            }
            OExpr::Agg(kind, inner) => {
                let op = match kind {
                    AggKind::Count => oodb_adl::AggOp::Count,
                    AggKind::Sum => oodb_adl::AggOp::Sum,
                    AggKind::Min => oodb_adl::AggOp::Min,
                    AggKind::Max => oodb_adl::AggOp::Max,
                    AggKind::Avg => oodb_adl::AggOp::Avg,
                };
                Expr::Agg(op, Box::new(self.tr(inner, env)?))
            }
            OExpr::Flatten(inner) => Expr::Flatten(Box::new(self.tr(inner, env)?)),
            OExpr::DateLit(inner) => match inner.as_ref() {
                OExpr::Lit(Value::Int(d)) => Expr::Lit(Value::Date(*d)),
                other => return Err(TranslateError::NonLiteralDate(other.to_string())),
            },
            OExpr::Sfw {
                select,
                bindings,
                where_,
            } => self.tr_sfw(select, bindings, where_.as_deref(), env)?,
            OExpr::With { var, value, body } => {
                let v = self.tr(value, env)?;
                let tv = infer(value, env, self.catalog)?;
                let b = self.tr(body, &env.bind(var, tv))?;
                Expr::Let {
                    var: var.clone(),
                    value: Box::new(v),
                    body: Box::new(b),
                }
            }
        })
    }

    /// `select F from x₁ in e₁, …, xₙ in eₙ where P` ⇒
    /// `⋃(α[x₁ : … α[xₙ : F](σ[xₙ : P](eₙ)) …](e₁))`
    ///
    /// With a single binding this is exactly the paper's
    /// `α[x : e₁](σ[x : e₃](e₂))`; the σ is omitted when there is no
    /// where-clause.
    fn tr_sfw(
        &self,
        select: &OExpr,
        bindings: &[oodb_oosql::Binding],
        where_: Option<&OExpr>,
        env: &OEnv,
    ) -> Result<Expr, TranslateError> {
        let b = &bindings[0];
        let range = self.tr(&b.range, env)?;
        let elem = match infer(&b.range, env, self.catalog)? {
            Type::Set(e) => *e,
            other => {
                return Err(TypeError::new(format!(
                    "from-clause operand `{}` is not a set (found {other})",
                    b.range
                ))
                .into())
            }
        };
        let inner_env = env.bind(&b.var, elem);

        if bindings.len() == 1 {
            let body = self.tr(select, &inner_env)?;
            let input = match where_ {
                Some(w) => {
                    let pred = self.tr(w, &inner_env)?;
                    Expr::Select {
                        var: b.var.clone(),
                        pred: Box::new(pred),
                        input: Box::new(range),
                    }
                }
                None => range,
            };
            Ok(Expr::Map {
                var: b.var.clone(),
                body: Box::new(body),
                input: Box::new(input),
            })
        } else {
            let inner = self.tr_sfw(select, &bindings[1..], where_, &inner_env)?;
            Ok(Expr::Flatten(Box::new(Expr::Map {
                var: b.var.clone(),
                body: Box::new(inner),
                input: Box::new(range),
            })))
        }
    }
}

/// Convenience: parse, type check and translate in one call.
pub fn compile(src: &str, catalog: &Catalog) -> Result<Expr, String> {
    let q = oodb_oosql::parse(src).map_err(|e| e.to_string())?;
    oodb_oosql::typecheck(&q, catalog).map_err(|e| e.to_string())?;
    translate(&q, catalog).map_err(|e| e.to_string())
}

// `Name` is referenced by doc examples and kept for API parity.
#[allow(unused_imports)]
use Name as _Name;

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl;
    use oodb_catalog::fixtures::supplier_part_catalog;

    fn tr(src: &str) -> Expr {
        compile(src, &supplier_part_catalog()).unwrap()
    }

    #[test]
    fn sfw_becomes_map_of_select() {
        // paper §3: select e1 from x in e2 where e3 ≡ α[x:e1](σ[x:e3](e2))
        let got = tr("select s.sname from s in SUPPLIER where s.sname = \"s1\"");
        let expected = dsl::map(
            "s",
            dsl::var("s").field("sname"),
            dsl::select(
                "s",
                dsl::eq(dsl::var("s").field("sname"), dsl::str_lit("s1")),
                dsl::table("SUPPLIER"),
            ),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn missing_where_omits_selection() {
        let got = tr("select s from s in SUPPLIER");
        let expected = dsl::map("s", dsl::var("s"), dsl::table("SUPPLIER"));
        assert_eq!(got, expected);
    }

    #[test]
    fn nested_block_stays_nested() {
        // Example Query 5-shaped query: the translator must NOT unnest.
        let got = tr("select s from s in SUPPLIER \
             where exists x in s.parts : \
                   exists p in PART : x = p.pid and p.color = \"red\"");
        // outer σ contains a quantifier whose range is a base table
        match &got {
            Expr::Map { input, .. } => match input.as_ref() {
                Expr::Select { pred, .. } => {
                    assert!(pred.mentions_table(), "subquery must stay nested");
                }
                other => panic!("expected select, got {other}"),
            },
            other => panic!("expected map, got {other}"),
        }
    }

    #[test]
    fn paths_through_references_deref() {
        // Example Query 2's e.supplier.sname
        let got = tr("select e.supplier.sname from e in DELIVERY");
        let expected = dsl::map(
            "e",
            dsl::deref(dsl::var("e").field("supplier"), "Supplier").field("sname"),
            dsl::table("DELIVERY"),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn tuple_valued_select_clause() {
        // Example Query 1 shape
        let got = tr("select (sname := s.sname, \
                     pnames := select p.pname from p in PART \
                               where p.pid in s.parts) \
             from s in SUPPLIER");
        match got {
            Expr::Map { body, .. } => assert!(matches!(*body, Expr::TupleCons(_))),
            other => panic!("expected map, got {other}"),
        }
    }

    #[test]
    fn multi_binding_flattens() {
        let got = tr("select (d := x.did, q := y.quantity) \
             from x in DELIVERY, y in x.supply \
             where y.quantity > 10");
        assert!(matches!(got, Expr::Flatten(_)));
    }

    #[test]
    fn set_equality_disambiguated() {
        let got = tr("select s from s in SUPPLIER, t in SUPPLIER where s.parts = t.parts");
        let mut found = false;
        fn walk(e: &Expr, found: &mut bool) {
            if matches!(e, Expr::SetCmp(SetCmpOp::SetEq, _, _)) {
                *found = true;
            }
            e.for_each_child(&mut |c| walk(c, found));
        }
        walk(&got, &mut found);
        assert!(found, "s.parts = t.parts must become set equality");
    }

    #[test]
    fn with_becomes_let() {
        let got = tr(
            "with red as (select p.pid from p in PART where p.color = \"red\") \
             select s.sname from s in SUPPLIER \
             where exists x in s.parts : x in red",
        );
        assert!(matches!(got, Expr::Let { .. }));
    }

    #[test]
    fn date_literals_fold() {
        let got = tr("select d from d in DELIVERY where d.date = date(940101)");
        let mut found = false;
        fn walk(e: &Expr, found: &mut bool) {
            if matches!(e, Expr::Lit(Value::Date(940101))) {
                *found = true;
            }
            e.for_each_child(&mut |c| walk(c, found));
        }
        walk(&got, &mut found);
        assert!(found);
    }

    #[test]
    fn non_literal_date_rejected() {
        let q = oodb_oosql::parse("select d from d in DELIVERY where d.date = date(1+1)").unwrap();
        let err = translate(&q, &supplier_part_catalog()).unwrap_err();
        assert!(matches!(err, TranslateError::NonLiteralDate(_)));
    }

    #[test]
    fn translated_queries_typecheck_in_adl() {
        // End-to-end sanity: every paper query translation is well-typed ADL.
        let cat = supplier_part_catalog();
        for src in [
            "select (sname := s.sname, pnames := select p.pname from p in PART \
              where p.pid in s.parts and p.color = \"red\") from s in SUPPLIER",
            "select d from d in (select e from e in DELIVERY \
              where e.supplier.sname = \"s1\") where d.date = date(940101)",
            "select s.sname from s in SUPPLIER where s.parts supseteq \
              flatten(select t.parts from t in SUPPLIER where t.sname = \"s1\")",
            "select d from d in DELIVERY \
              where exists x in d.supply : x.part.color = \"red\"",
            "select s.eid from s in SUPPLIER where exists x in s.parts : \
              not (exists p in PART : x = p.pid)",
            "select s from s in SUPPLIER where exists x in s.parts : \
              exists p in PART : x = p.pid and p.color = \"red\"",
        ] {
            let e = compile(src, &cat).unwrap_or_else(|err| panic!("{src}: {err}"));
            oodb_adl::infer_closed(&e, &cat)
                .unwrap_or_else(|err| panic!("{src}: ADL type error {err}"));
        }
    }

    #[test]
    fn negation_translates_to_subtraction() {
        let got = tr("select 0 - p.price from p in PART where -p.price < 0");
        assert!(matches!(got, Expr::Map { .. }));
        // negative numeric literals fold in the parser; negation of
        // non-literals becomes subtraction from the typed zero
        assert_eq!(tr("-1.5"), Expr::Lit(Value::float(-1.5)));
        let q = oodb_oosql::parse("select -p.price from p in PART").unwrap();
        let e = translate(&q, &supplier_part_catalog()).unwrap();
        let Expr::Map { body, .. } = &e else {
            panic!("{e}")
        };
        assert!(matches!(
            body.as_ref(),
            Expr::Arith(oodb_value::ArithOp::Sub, ..)
        ));
    }
}

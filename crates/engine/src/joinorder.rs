//! Join-*order* enumeration over inner equi-join chains.
//!
//! The rewrite pipeline turns nested queries into join queries, but it
//! fixes the join *order*: whatever association the rules produced is
//! what the planner lowers, and the cost model only picks the best
//! *algorithm* per join. This module adds the classic next optimizer
//! layer, in the spirit of "XQuery Join Graph Isolation": isolate an
//! explicit **join graph** from the rewritten ADL, then search orders
//! over it.
//!
//! * **Extraction** ([`JoinGraph::extract`]): a chain of `Inner`
//!   [`Expr::Join`] nodes is flattened into *leaves* (the non-join
//!   operands, left opaque — nest/assembly/PNHL subtrees stay exactly
//!   the composite vertices the §6.2 materialization detection built)
//!   and *predicates*, each conjunct re-anchored onto the leaves whose
//!   attributes it touches. Anything the extraction cannot prove safe —
//!   a bare tuple reference, an attribute owned by no unique leaf, a
//!   non-inner join — aborts the whole attempt and the rewrite order is
//!   kept.
//! * **Enumeration** ([`enumerate`]): DPsize over connected subsets
//!   (cross products are never considered), pricing every candidate
//!   through the existing [`CostModel`] — including its spill and
//!   exchange terms — with **interesting orders**: a sort-merge join's
//!   output is sorted on its keys, and a downstream sort-merge join
//!   over the same keys inherits that order instead of re-deriving it
//!   (the sort term is subtracted, mirroring how the adaptive run-sort
//!   consumes pre-sorted input in linear time). Above
//!   [`DP_RELATION_LIMIT`] relations the search degrades to greedy
//!   cheapest-pair combination.
//! * **Guarantee**: the rewrite's own association is priced through the
//!   same machinery, and a reordered plan is returned **only when it is
//!   strictly cheaper** — otherwise the planner falls through to the
//!   rewrite-order path unchanged. Enumeration can therefore never
//!   return a higher-estimated-cost plan than the rewrite order.

use crate::cost::CostModel;
use crate::physical::PhysPlan;
use crate::plan::{build_residual, split_pred, PlanError, Planner, SplitPred};
use oodb_adl::expr::{conjuncts, Expr, JoinKind};
use oodb_adl::vars::free_vars;
use oodb_value::fxhash::FxHashMap;
use oodb_value::Name;

/// Exact DPsize enumeration is exponential in the relation count; above
/// this many leaves the search falls back to greedy cheapest-pair
/// combination.
pub const DP_RELATION_LIMIT: usize = 10;

/// One relation of the join graph: an opaque ADL operand with its
/// lowered plan and output schema.
struct Leaf {
    /// The original ADL subexpression (needed for index-NL candidates,
    /// which must see a bare `Table`).
    expr: Expr,
    /// Lowered physical plan, single-leaf filter conjuncts pushed.
    plan: PhysPlan,
    /// Marker variable the rewritten predicates reference this leaf by.
    marker: Name,
    /// Display label for the `order=` annotation.
    label: String,
}

/// One join-predicate conjunct, rewritten so every join-variable field
/// access targets the *leaf marker variable* owning that attribute.
struct GraphPred {
    expr: Expr,
    /// Bitmask of the leaves the conjunct references.
    leaves: u64,
}

/// The isolated join graph: relations plus predicate hyperedges.
struct JoinGraph {
    leaves: Vec<Leaf>,
    preds: Vec<GraphPred>,
    /// The rewrite's own association over leaf bitmasks, kept so its
    /// cost can be priced through the same candidate machinery.
    rewrite_shape: Shape,
}

/// Binary association tree over leaf bitmasks (the rewrite's original
/// parenthesization).
enum Shape {
    Leaf(usize),
    Join(Box<Shape>, Box<Shape>),
}

impl Shape {
    fn mask(&self) -> u64 {
        match self {
            Shape::Leaf(i) => 1u64 << i,
            Shape::Join(l, r) => l.mask() | r.mask(),
        }
    }
}

/// A priced subplan for one subset of the leaves.
#[derive(Clone)]
struct Entry {
    plan: PhysPlan,
    /// Adjusted cumulative cost: the model's estimate minus any
    /// interesting-order sort terms earned along the way.
    cost: f64,
    /// The model's unadjusted cumulative estimate for `plan` (what a
    /// parent's estimate will embed for this subtree).
    raw: f64,
    /// Interesting order: per sort position, the set of attributes the
    /// output is known sorted by (a sort-merge join's output is sorted
    /// by its left *and* right key attributes, which are equal).
    order: Option<Vec<Vec<Name>>>,
    /// Parenthesized association over leaf labels, e.g.
    /// `(SUPPLIER ⋈ (Unnest(supply) ⋈ PART))` — what the `order=`
    /// annotation shows.
    desc: String,
}

/// Entry point from [`Planner::plan_join`]: attempt to extract a join
/// graph rooted at this inner join and return a re-ordered plan — but
/// only when enumeration finds a *strictly cheaper* association than
/// the rewrite's. `Ok(None)` means "fall through to the rewrite-order
/// path".
pub(crate) fn try_reorder(
    planner: &Planner<'_>,
    lvar: &Name,
    rvar: &Name,
    pred: &Expr,
    left: &Expr,
    right: &Expr,
) -> Result<Option<PhysPlan>, PlanError> {
    let Some(model) = planner.cost.as_ref() else {
        return Ok(None);
    };
    let Some(graph) = JoinGraph::extract(planner, lvar, rvar, pred, left, right)? else {
        return Ok(None);
    };
    if graph.leaves.len() < 3 {
        // Two-way joins already get both build orientations from the
        // ordinary cost-based path; nothing to enumerate.
        return Ok(None);
    }
    if !graph.connected((1u64 << graph.leaves.len()) - 1) {
        // A disconnected graph would force cross products; keep the
        // rewrite order.
        return Ok(None);
    }
    let singles = graph.singleton_entries(model);
    let rewrite = graph
        .price_shape(planner, model, &graph.rewrite_shape, &singles)
        .into_iter()
        .map(|e| e.cost)
        .fold(f64::INFINITY, f64::min);
    let best = if graph.leaves.len() <= DP_RELATION_LIMIT {
        graph.enumerate(planner, model, &singles)
    } else {
        graph.greedy(planner, model, &singles)
    };
    let Some(best) = best else {
        return Ok(None);
    };
    if best.cost >= rewrite - 1e-9 {
        // No strict win: fall through so the plan is byte-identical to
        // the `JoinOrder::Off` path.
        return Ok(None);
    }
    planner.order_notes.borrow_mut().push(format!(
        "order={} (est_cost={}, rewrite_cost={})",
        best.desc,
        best.cost.round() as u64,
        rewrite.round() as u64,
    ));
    Ok(Some(best.plan))
}

/// Fresh, collision-free variable names: the translator and rewriter
/// never generate `__jo`-prefixed names.
fn marker(i: usize) -> Name {
    Name::from(format!("__jo{i}"))
}

const JOIN_LVAR: &str = "__jl";
const JOIN_RVAR: &str = "__jr";

impl JoinGraph {
    /// Flattens the inner-join chain rooted at `(lvar, rvar, pred,
    /// left, right)` into a graph. Returns `Ok(None)` whenever any part
    /// of the tree cannot be proven safe to reorder.
    fn extract(
        planner: &Planner<'_>,
        lvar: &Name,
        rvar: &Name,
        pred: &Expr,
        left: &Expr,
        right: &Expr,
    ) -> Result<Option<Self>, PlanError> {
        // Pass 1: collect leaves and the raw per-node predicates.
        let mut leaf_exprs: Vec<Expr> = Vec::new();
        let mut raw: Vec<(Expr, Name, Name, u64, u64)> = Vec::new();
        let shape = match collect(lvar, rvar, pred, left, right, &mut leaf_exprs, &mut raw) {
            Some(s) => s,
            None => return Ok(None),
        };
        if leaf_exprs.len() < 3 || leaf_exprs.len() > 32 {
            return Ok(None);
        }
        // Pass 2: leaf schemas → attribute ownership map.
        let mut owner: FxHashMap<Name, usize> = FxHashMap::default();
        let mut leaves: Vec<Leaf> = Vec::new();
        for (i, e) in leaf_exprs.iter().enumerate() {
            let Ok(t) = oodb_adl::infer_closed(e, planner.db.catalog()) else {
                return Ok(None);
            };
            let Some(attrs) = t.sch() else {
                return Ok(None);
            };
            for a in attrs {
                if owner.insert(a, i).is_some() {
                    // Ambiguous attribute: cannot re-anchor predicates.
                    return Ok(None);
                }
            }
            let plan = planner.lower(e)?;
            let label = match e {
                Expr::Table(n) => n.to_string(),
                _ => plan.op_label(),
            };
            leaves.push(Leaf {
                expr: e.clone(),
                plan,
                marker: marker(i),
                label,
            });
        }
        // Pass 3: rewrite every conjunct onto the leaf markers.
        let mut preds: Vec<GraphPred> = Vec::new();
        let mut single: Vec<Vec<Expr>> = vec![Vec::new(); leaves.len()];
        for (node_pred, nl, nr, lmask, rmask) in &raw {
            for c in conjuncts(node_pred) {
                if matches!(c, Expr::Lit(_)) {
                    // `true` placeholder predicates carry no constraint.
                    continue;
                }
                // Every free variable must be one of the node's join
                // variables (otherwise the conjunct is correlated with
                // an enclosing scope and cannot move).
                if !free_vars(c).iter().all(|v| v == nl || v == nr) {
                    return Ok(None);
                }
                // An inner binder shadowing a join variable would make
                // the occurrence rewrite unsound; bail out.
                if binds_name(c, nl) || binds_name(c, nr) {
                    return Ok(None);
                }
                let mut refs = 0u64;
                let mut ok = true;
                let rewritten =
                    rewrite_conjunct(c, nl, nr, *lmask, *rmask, &owner, &mut refs, &mut ok);
                if !ok {
                    return Ok(None);
                }
                match refs.count_ones() {
                    0 => return Ok(None), // constant conjunct: keep rewrite order
                    1 => single[refs.trailing_zeros() as usize].push(rewritten),
                    _ => preds.push(GraphPred {
                        expr: rewritten,
                        leaves: refs,
                    }),
                }
            }
        }
        // Push single-leaf conjuncts as filters on their leaf plans.
        for (i, parts) in single.into_iter().enumerate() {
            if let Some(p) = build_residual(parts) {
                let input = std::mem::replace(&mut leaves[i].plan, PhysPlan::Scan(Name::from("")));
                leaves[i].plan = PhysPlan::Filter {
                    var: leaves[i].marker.clone(),
                    pred: p,
                    input: Box::new(input),
                };
            }
        }
        Ok(Some(JoinGraph {
            leaves,
            preds,
            rewrite_shape: shape,
        }))
    }

    /// Whether the leaves of `mask` are connected through predicates
    /// whose leaf sets lie entirely inside `mask`.
    fn connected(&self, mask: u64) -> bool {
        if mask == 0 {
            return false;
        }
        let mut reached = 1u64 << mask.trailing_zeros();
        loop {
            let before = reached;
            for p in &self.preds {
                if p.leaves & !mask == 0 && p.leaves & reached != 0 {
                    reached |= p.leaves;
                }
            }
            if reached == before {
                break;
            }
        }
        reached == mask
    }

    /// Pareto entries for every singleton subset.
    fn singleton_entries(&self, model: &CostModel<'_>) -> Vec<Vec<Entry>> {
        self.leaves
            .iter()
            .map(|leaf| {
                let raw = model.estimate(&leaf.plan).cost;
                vec![Entry {
                    plan: leaf.plan.clone(),
                    cost: raw,
                    raw,
                    order: None,
                    desc: leaf.label.clone(),
                }]
            })
            .collect()
    }

    /// The predicates a join of `s1` and `s2` must apply: first covered
    /// by `s1 ∪ s2`, spanning both sides. (Predicates inside either
    /// side were applied when that side was built.)
    fn applicable(&self, s1: u64, s2: u64) -> Vec<&GraphPred> {
        let mask = s1 | s2;
        self.preds
            .iter()
            .filter(|p| p.leaves & !mask == 0 && p.leaves & s1 != 0 && p.leaves & s2 != 0)
            .collect()
    }

    /// All candidate joins of two priced subsets (both hash
    /// orientations, sort-merge with interesting-order reuse, index-NL
    /// against single-table sides, membership hash, nested loops),
    /// pushed through `add` for pareto retention.
    fn join_candidates(
        &self,
        planner_model: (&Planner<'_>, &CostModel<'_>),
        s1: u64,
        s2: u64,
        e1: &Entry,
        e2: &Entry,
        out: &mut Vec<Entry>,
    ) {
        let (planner, model) = planner_model;
        let preds = self.applicable(s1, s2);
        if preds.is_empty() {
            return; // never consider cross products
        }
        let lv = Name::from(JOIN_LVAR);
        let rv = Name::from(JOIN_RVAR);
        // Orientation A ⋈ B and B ⋈ A both matter (build side, probe
        // order, index side); generate candidates for each.
        for &(sa, sb, ea, eb) in &[(s1, s2, e1, e2), (s2, s1, e2, e1)] {
            let parts: Vec<Expr> = preds
                .iter()
                .map(|p| anchor_sides(&p.expr, sa, &lv, &rv))
                .collect();
            let pred = oodb_adl::expr::conjoin(parts);
            let split = split_pred(&pred, &lv, &rv);
            for cand in self.physical_candidates(planner, &lv, &rv, &split, &pred, sb, ea, eb) {
                push_entry(out, self.price(model, cand, ea, eb));
            }
        }
    }

    /// The physical implementations of one oriented join, mirroring the
    /// rewrite-order cost-based path.
    #[allow(clippy::too_many_arguments)]
    fn physical_candidates(
        &self,
        planner: &Planner<'_>,
        lv: &Name,
        rv: &Name,
        split: &SplitPred,
        pred: &Expr,
        sb: u64,
        ea: &Entry,
        eb: &Entry,
    ) -> Vec<PhysPlan> {
        let mut cands: Vec<PhysPlan> = Vec::new();
        if !split.equi.is_empty() {
            let (lkeys, rkeys): (Vec<Expr>, Vec<Expr>) = split.equi.iter().cloned().unzip();
            let residual = build_residual(split.residual.clone());
            cands.push(PhysPlan::HashJoin {
                kind: JoinKind::Inner,
                lvar: lv.clone(),
                rvar: rv.clone(),
                lkeys: lkeys.clone(),
                rkeys: rkeys.clone(),
                residual: residual.clone(),
                right_attrs: Vec::new(),
                left: Box::new(ea.plan.clone()),
                right: Box::new(eb.plan.clone()),
            });
            cands.push(PhysPlan::SortMergeJoin {
                lvar: lv.clone(),
                rvar: rv.clone(),
                lkeys,
                rkeys,
                residual,
                left: Box::new(ea.plan.clone()),
                right: Box::new(eb.plan.clone()),
            });
            // Index nested loop: the inner side must be a bare indexed
            // extent, i.e. an unfiltered single-leaf subset.
            if planner.config.use_indexes && sb.count_ones() == 1 {
                let leaf = &self.leaves[sb.trailing_zeros() as usize];
                if matches!(leaf.plan, PhysPlan::Scan(_)) {
                    if let Some(plan) = planner.index_nl_candidate(
                        JoinKind::Inner,
                        lv,
                        rv,
                        &split.equi,
                        &split.residual,
                        &leaf.expr,
                        ea.plan.clone(),
                        Vec::new(),
                    ) {
                        cands.push(plan);
                    }
                }
            }
        }
        if let Some(shape) = &split.member {
            cands.push(PhysPlan::HashMemberJoin {
                kind: JoinKind::Inner,
                lvar: lv.clone(),
                rvar: rv.clone(),
                shape: shape.clone(),
                residual: build_residual(split.residual.clone()),
                right_attrs: Vec::new(),
                left: Box::new(ea.plan.clone()),
                right: Box::new(eb.plan.clone()),
            });
        }
        cands.push(PhysPlan::NLJoin {
            kind: JoinKind::Inner,
            lvar: lv.clone(),
            rvar: rv.clone(),
            pred: pred.clone(),
            right_attrs: Vec::new(),
            left: Box::new(ea.plan.clone()),
            right: Box::new(eb.plan.clone()),
        });
        cands
    }

    /// Prices one candidate whose children are `ea` (left) and `eb`
    /// (right): the model's local cost on top of the children's
    /// *adjusted* costs, minus any sort term an interesting order pays
    /// for, with the output order a sort-merge join establishes.
    fn price(&self, model: &CostModel<'_>, cand: PhysPlan, ea: &Entry, eb: &Entry) -> Entry {
        let est = model.estimate(&cand);
        let raw = est.cost;
        let mut cost = ea.cost + eb.cost + (raw - ea.raw - eb.raw);
        let mut order = None;
        if let PhysPlan::SortMergeJoin {
            lvar,
            rvar,
            lkeys,
            rkeys,
            ..
        } = &cand
        {
            let lattrs = plain_attrs(lkeys, lvar);
            let rattrs = plain_attrs(rkeys, rvar);
            if let Some(la) = &lattrs {
                if order_matches(&ea.order, la) {
                    cost -= model.smj_sort_term(&ea.plan);
                }
            }
            if let Some(ra) = &rattrs {
                if order_matches(&eb.order, ra) {
                    cost -= model.smj_sort_term(&eb.plan);
                }
            }
            if let (Some(la), Some(ra)) = (lattrs, rattrs) {
                order = Some(
                    la.into_iter()
                        .zip(ra)
                        .map(|(a, b)| {
                            let mut class = vec![a, b];
                            class.sort();
                            class.dedup();
                            class
                        })
                        .collect(),
                );
            }
        }
        Entry {
            plan: cand,
            cost,
            raw,
            order,
            desc: format!("({} ⋈ {})", ea.desc, eb.desc),
        }
    }

    /// DPsize over connected subsets; returns the cheapest entry for
    /// the full leaf set.
    fn enumerate(
        &self,
        planner: &Planner<'_>,
        model: &CostModel<'_>,
        singles: &[Vec<Entry>],
    ) -> Option<Entry> {
        let n = self.leaves.len();
        let full = (1u64 << n) - 1;
        let mut best: Vec<Vec<Entry>> = vec![Vec::new(); (full + 1) as usize];
        for (i, entries) in singles.iter().enumerate() {
            best[1usize << i] = entries.clone();
        }
        for mask in 1..=full {
            if mask.count_ones() < 2 || !self.connected(mask) {
                continue;
            }
            let mut entries: Vec<Entry> = Vec::new();
            // Enumerate unordered partitions: s1 strictly below its
            // complement keeps each pair visited once (both
            // orientations are generated inside `join_candidates`).
            let mut s1 = (mask - 1) & mask;
            while s1 > 0 {
                let s2 = mask & !s1;
                if s1 < s2 {
                    for e1 in &best[s1 as usize] {
                        for e2 in &best[s2 as usize] {
                            self.join_candidates((planner, model), s1, s2, e1, e2, &mut entries);
                        }
                    }
                }
                s1 = (s1 - 1) & mask;
            }
            best[mask as usize] = entries;
        }
        best[full as usize]
            .iter()
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
    }

    /// Greedy fallback above [`DP_RELATION_LIMIT`]: repeatedly combine
    /// the connected pair with the cheapest join candidate.
    fn greedy(
        &self,
        planner: &Planner<'_>,
        model: &CostModel<'_>,
        singles: &[Vec<Entry>],
    ) -> Option<Entry> {
        let mut comps: Vec<(u64, Vec<Entry>)> = singles
            .iter()
            .enumerate()
            .map(|(i, e)| (1u64 << i, e.clone()))
            .collect();
        while comps.len() > 1 {
            let mut pick: Option<(usize, usize, Vec<Entry>)> = None;
            let mut pick_cost = f64::INFINITY;
            for i in 0..comps.len() {
                for j in (i + 1)..comps.len() {
                    let (s1, s2) = (comps[i].0, comps[j].0);
                    let mut entries: Vec<Entry> = Vec::new();
                    for e1 in &comps[i].1 {
                        for e2 in &comps[j].1 {
                            self.join_candidates((planner, model), s1, s2, e1, e2, &mut entries);
                        }
                    }
                    let cheapest = entries.iter().map(|e| e.cost).fold(f64::INFINITY, f64::min);
                    if cheapest < pick_cost {
                        pick_cost = cheapest;
                        pick = Some((i, j, entries));
                    }
                }
            }
            let (i, j, entries) = pick?;
            let merged_mask = comps[i].0 | comps[j].0;
            comps.remove(j);
            comps[i] = (merged_mask, entries);
        }
        comps.pop()?.1.into_iter().min_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Prices one fixed association (the rewrite's) through the same
    /// candidate machinery, so the DP winner is compared apples to
    /// apples.
    fn price_shape(
        &self,
        planner: &Planner<'_>,
        model: &CostModel<'_>,
        shape: &Shape,
        singles: &[Vec<Entry>],
    ) -> Vec<Entry> {
        match shape {
            Shape::Leaf(i) => singles[*i].clone(),
            Shape::Join(l, r) => {
                let le = self.price_shape(planner, model, l, singles);
                let re = self.price_shape(planner, model, r, singles);
                let (s1, s2) = (l.mask(), r.mask());
                let mut entries: Vec<Entry> = Vec::new();
                for e1 in &le {
                    for e2 in &re {
                        self.join_candidates((planner, model), s1, s2, e1, e2, &mut entries);
                    }
                }
                entries
            }
        }
    }
}

/// Whether a subplan's known output order satisfies the wanted sort
/// attributes, position by position.
fn order_matches(order: &Option<Vec<Vec<Name>>>, wanted: &[Name]) -> bool {
    match order {
        Some(classes) => {
            classes.len() == wanted.len()
                && classes
                    .iter()
                    .zip(wanted)
                    .all(|(class, w)| class.contains(w))
        }
        None => false,
    }
}

/// The plain attribute name of every key, if all keys are plain
/// `var.attr` accesses.
fn plain_attrs(keys: &[Expr], var: &Name) -> Option<Vec<Name>> {
    keys.iter()
        .map(|k| match k {
            Expr::Field(b, a) if matches!(b.as_ref(), Expr::Var(v) if v == var) => Some(a.clone()),
            _ => None,
        })
        .collect()
}

/// Pareto insertion: keep an entry unless an existing one is at least
/// as cheap *and* at least as ordered; evict entries the newcomer
/// dominates.
fn push_entry(entries: &mut Vec<Entry>, e: Entry) {
    if entries
        .iter()
        .any(|x| x.cost <= e.cost && (x.order == e.order || e.order.is_none()))
    {
        return;
    }
    entries.retain(|x| !(e.cost <= x.cost && (e.order == x.order || x.order.is_none())));
    entries.push(e);
}

/// Re-anchors a marker-variable conjunct onto one oriented join's
/// variables: markers in `left_mask` become the left variable, the rest
/// the right variable.
fn anchor_sides(e: &Expr, left_mask: u64, lv: &Name, rv: &Name) -> Expr {
    match e {
        Expr::Field(b, a) => {
            if let Expr::Var(v) = b.as_ref() {
                if let Some(i) = marker_index(v) {
                    let side = if left_mask & (1u64 << i) != 0 { lv } else { rv };
                    return Expr::Field(Box::new(Expr::Var(side.clone())), a.clone());
                }
            }
            Expr::Field(Box::new(anchor_sides(b, left_mask, lv, rv)), a.clone())
        }
        other => other
            .clone()
            .map_children(&mut |c| anchor_sides(&c, left_mask, lv, rv)),
    }
}

/// The index of a `__jo{i}` marker variable.
fn marker_index(v: &Name) -> Option<usize> {
    v.as_ref().strip_prefix("__jo")?.parse().ok()
}

/// Whether any node inside `e` *binds* a variable named `n` (which
/// would shadow a join variable and make occurrence rewriting unsound).
fn binds_name(e: &Expr, n: &Name) -> bool {
    let mut found = false;
    fn walk(e: &Expr, n: &Name, found: &mut bool) {
        if *found {
            return;
        }
        let binds = match e {
            Expr::Map { var, .. }
            | Expr::Select { var, .. }
            | Expr::Quant { var, .. }
            | Expr::Let { var, .. } => var == n,
            Expr::Join { lvar, rvar, .. } | Expr::NestJoin { lvar, rvar, .. } => {
                lvar == n || rvar == n
            }
            _ => false,
        };
        if binds {
            *found = true;
            return;
        }
        e.for_each_child(&mut |c| walk(c, n, found));
    }
    walk(e, n, &mut found);
    found
}

/// Rewrites one conjunct of a flattened join node: every `v.attr`
/// access through the node's join variables is re-anchored onto the
/// marker variable of the leaf owning `attr` (recorded in `refs`); any
/// other occurrence of a join variable poisons `ok`.
#[allow(clippy::too_many_arguments)]
fn rewrite_conjunct(
    e: &Expr,
    nl: &Name,
    nr: &Name,
    lmask: u64,
    rmask: u64,
    owner: &FxHashMap<Name, usize>,
    refs: &mut u64,
    ok: &mut bool,
) -> Expr {
    if !*ok {
        return e.clone();
    }
    match e {
        Expr::Field(b, a) => {
            if let Expr::Var(v) = b.as_ref() {
                if v == nl || v == nr {
                    let side = if v == nl { lmask } else { rmask };
                    match owner.get(a) {
                        Some(&i) if side & (1u64 << i) != 0 => {
                            *refs |= 1u64 << i;
                            return Expr::Field(Box::new(Expr::Var(marker(i))), a.clone());
                        }
                        _ => {
                            *ok = false;
                            return e.clone();
                        }
                    }
                }
            }
            Expr::Field(
                Box::new(rewrite_conjunct(b, nl, nr, lmask, rmask, owner, refs, ok)),
                a.clone(),
            )
        }
        Expr::Var(v) if v == nl || v == nr => {
            *ok = false;
            e.clone()
        }
        other => other
            .clone()
            .map_children(&mut |c| rewrite_conjunct(&c, nl, nr, lmask, rmask, owner, refs, ok)),
    }
}

/// Recursive flattening of the inner-join chain: every `Inner`
/// [`Expr::Join`] node contributes its predicate; anything else becomes
/// an opaque leaf. Returns the association [`Shape`] of the original
/// tree, or `None` when a nested node disqualifies the whole chain.
fn collect(
    lvar: &Name,
    rvar: &Name,
    pred: &Expr,
    left: &Expr,
    right: &Expr,
    leaves: &mut Vec<Expr>,
    raw: &mut Vec<(Expr, Name, Name, u64, u64)>,
) -> Option<Shape> {
    let lshape = collect_side(left, leaves, raw)?;
    let rshape = collect_side(right, leaves, raw)?;
    let (lmask, rmask) = (lshape.mask(), rshape.mask());
    raw.push((pred.clone(), lvar.clone(), rvar.clone(), lmask, rmask));
    Some(Shape::Join(Box::new(lshape), Box::new(rshape)))
}

fn collect_side(
    e: &Expr,
    leaves: &mut Vec<Expr>,
    raw: &mut Vec<(Expr, Name, Name, u64, u64)>,
) -> Option<Shape> {
    match e {
        Expr::Join {
            kind: JoinKind::Inner,
            lvar,
            rvar,
            pred,
            left,
            right,
        } => collect(lvar, rvar, pred, left, right, leaves, raw),
        other => {
            if leaves.len() >= 32 {
                return None;
            }
            leaves.push(other.clone());
            Some(Shape::Leaf(leaves.len() - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::plan::{JoinOrder, PlannerConfig};
    use crate::stats::Stats;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_db;
    use oodb_catalog::{AttrStats, CatalogStats, TableStats};

    /// SUPPLIER ⋈ μ_supply(DELIVERY) ⋈ PART, associated left-deep the
    /// way the rewrite pipeline would emit it.
    fn chain_query() -> Expr {
        join(
            "sd",
            "p",
            eq(var("sd").field("part"), var("p").field("pid")),
            join(
                "s",
                "d",
                eq(var("s").field("eid"), var("d").field("supplier")),
                table("SUPPLIER"),
                unnest("supply", table("DELIVERY")),
            ),
            table("PART"),
        )
    }

    /// Statistics skewed so the rewrite's (SUPPLIER ⋈ μ(DELIVERY))
    /// first step is a many-to-many blow-up (only two distinct join
    /// keys) while μ(DELIVERY) ⋈ PART is tiny — DP must start with the
    /// selective pair.
    fn skewed_stats() -> CatalogStats {
        let mut s = CatalogStats::new();
        let mut supplier = TableStats {
            rows: 1000,
            attrs: Default::default(),
            avg_row_bytes: Some(64.0),
        };
        supplier.attrs.insert(
            Name::from("eid"),
            AttrStats {
                distinct: 2,
                avg_set_len: None,
            },
        );
        s.set_table(Name::from("SUPPLIER"), supplier);
        let mut delivery = TableStats {
            rows: 500,
            attrs: Default::default(),
            avg_row_bytes: Some(64.0),
        };
        delivery.attrs.insert(
            Name::from("supplier"),
            AttrStats {
                distinct: 2,
                avg_set_len: None,
            },
        );
        delivery.attrs.insert(
            Name::from("supply"),
            AttrStats {
                distinct: 2000,
                avg_set_len: Some(4.0),
            },
        );
        s.set_table(Name::from("DELIVERY"), delivery);
        let mut part = TableStats {
            rows: 3,
            attrs: Default::default(),
            avg_row_bytes: Some(64.0),
        };
        part.attrs.insert(
            Name::from("pid"),
            AttrStats {
                distinct: 3,
                avg_set_len: None,
            },
        );
        s.set_table(Name::from("PART"), part);
        s
    }

    fn run<'a>(planner: &Planner<'a>, e: &Expr) -> (crate::plan::Plan<'a>, oodb_value::Value) {
        let plan = planner.plan(e).unwrap();
        let mut stats = Stats::new();
        let v = plan.execute(&mut stats).unwrap();
        (plan, v)
    }

    #[test]
    fn dp_flips_join_order_on_skewed_stats() {
        let db = supplier_part_db();
        let e = chain_query();
        // Pin the axis explicitly: the default reads OODB_JOIN_ORDER, and
        // this test must assert enumeration behavior even under the CI
        // kill-switch pass.
        let dp = Planner::with_stats(
            &db,
            PlannerConfig {
                join_order: JoinOrder::Dp,
                ..Default::default()
            },
            skewed_stats(),
        );
        let off = Planner::with_stats(
            &db,
            PlannerConfig {
                join_order: JoinOrder::Off,
                ..Default::default()
            },
            skewed_stats(),
        );
        let (dp_plan, dp_v) = run(&dp, &e);
        let (off_plan, off_v) = run(&off, &e);
        assert_eq!(
            dp_plan.order_notes().len(),
            1,
            "DP should fire exactly once on the chain:\n{}",
            dp_plan.explain()
        );
        let note = &dp_plan.order_notes()[0];
        // The blow-up pair (two distinct join keys over 1000×2000 rows)
        // must never be joined directly — DP starts from the selective
        // Unnest ⋈ PART pair instead.
        assert!(
            !note.contains("(SUPPLIER ⋈ Unnest(supply))")
                && !note.contains("(Unnest(supply) ⋈ SUPPLIER)"),
            "DP must not join the blow-up pair first: {note}"
        );
        assert!(off_plan.order_notes().is_empty());
        assert_ne!(
            dp_plan.phys.explain(),
            off_plan.phys.explain(),
            "skewed stats must actually change the plan"
        );
        // Same answers in any order, and both agree with the reference
        // evaluator.
        assert_eq!(dp_v, off_v);
        let ev = Evaluator::new(&db);
        assert_eq!(dp_v, ev.eval_closed(&e).unwrap());
        // The note's annotation format is load-bearing (EXPLAIN shows it).
        assert!(
            note.contains("est_cost=") && note.contains("rewrite_cost="),
            "{note}"
        );
    }

    #[test]
    fn dp_best_never_costs_more_than_rewrite_association() {
        let db = supplier_part_db();
        let e = chain_query();
        let planner = Planner::with_stats(&db, PlannerConfig::default(), skewed_stats());
        let model = planner.cost.as_ref().unwrap();
        let Expr::Join {
            lvar,
            rvar,
            pred,
            left,
            right,
            ..
        } = &e
        else {
            unreachable!()
        };
        let graph = JoinGraph::extract(&planner, lvar, rvar, pred, left, right)
            .unwrap()
            .expect("chain extracts");
        assert_eq!(graph.leaves.len(), 3);
        let singles = graph.singleton_entries(model);
        let rewrite = graph
            .price_shape(&planner, model, &graph.rewrite_shape, &singles)
            .into_iter()
            .map(|en| en.cost)
            .fold(f64::INFINITY, f64::min);
        let best = graph.enumerate(&planner, model, &singles).unwrap();
        assert!(rewrite.is_finite());
        assert!(
            best.cost <= rewrite + 1e-6,
            "DP best {} must not exceed rewrite order {rewrite}",
            best.cost
        );
    }

    #[test]
    fn ambiguous_attributes_keep_rewrite_order() {
        // A self-join chain: SUPPLIER appears twice, so attribute
        // ownership is ambiguous and extraction must bail.
        let db = supplier_part_db();
        let e = join(
            "xp",
            "y",
            eq(var("xp").field("eid"), var("y").field("eid")),
            join(
                "x",
                "p",
                eq(var("x").field("eid"), var("p").field("pid")),
                table("SUPPLIER"),
                table("PART"),
            ),
            table("SUPPLIER"),
        );
        let planner = Planner::new(&db);
        let plan = planner.plan(&e).unwrap();
        assert!(plan.order_notes().is_empty(), "{}", plan.explain());
        let mut stats = Stats::new();
        let v = plan.execute(&mut stats).unwrap();
        let ev = Evaluator::new(&db);
        assert_eq!(v, ev.eval_closed(&e).unwrap());
    }

    #[test]
    fn two_way_joins_are_left_alone() {
        let db = supplier_part_db();
        let e = join(
            "s",
            "d",
            eq(var("s").field("eid"), var("d").field("supplier")),
            table("SUPPLIER"),
            table("DELIVERY"),
        );
        let planner = Planner::new(&db);
        let plan = planner.plan(&e).unwrap();
        assert!(plan.order_notes().is_empty());
    }

    #[test]
    fn pareto_retains_ordered_entry_alongside_cheaper_unordered() {
        let scan = PhysPlan::Scan(Name::from("T"));
        let entry = |cost: f64, order: Option<Vec<Vec<Name>>>| Entry {
            plan: scan.clone(),
            cost,
            raw: cost,
            order,
            desc: String::from("T"),
        };
        let ord = Some(vec![vec![Name::from("k")]]);
        let mut entries = Vec::new();
        push_entry(&mut entries, entry(10.0, None));
        // More expensive but sorted: survives (its order may pay off
        // upstream).
        push_entry(&mut entries, entry(12.0, ord.clone()));
        assert_eq!(entries.len(), 2);
        // Cheaper *and* sorted: dominates both.
        push_entry(&mut entries, entry(8.0, ord.clone()));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].cost, 8.0);
        // Unordered never dominates an ordered entry, even at equal cost.
        push_entry(&mut entries, entry(8.0, None));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].order, ord);
    }

    #[test]
    fn order_matching_is_positional() {
        let class = |names: &[&str]| names.iter().map(|n| Name::from(*n)).collect::<Vec<_>>();
        let order = Some(vec![class(&["a", "b"]), class(&["c"])]);
        assert!(order_matches(&order, &[Name::from("b"), Name::from("c")]));
        assert!(!order_matches(&order, &[Name::from("c"), Name::from("b")]));
        assert!(!order_matches(&order, &[Name::from("a")]));
        assert!(!order_matches(&None, &[Name::from("a")]));
    }
}

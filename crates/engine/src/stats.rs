//! Operator statistics.
//!
//! Wall-clock alone does not show *why* a plan wins; these counters expose
//! the work profile the paper reasons about — nested-loop iterations
//! versus hash build/probe work, partitioning passes of the PNHL
//! algorithm, and pointer dereferences of the assembly operator.

use std::fmt;

/// Work counters accumulated during evaluation/execution.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Tuples produced by scans of base tables.
    pub rows_scanned: u64,
    /// Inner iterations of nested-loop style operators (the quadratic
    /// term the paper's rewrites eliminate).
    pub loop_iterations: u64,
    /// Predicate / lambda-body evaluations.
    pub predicate_evals: u64,
    /// Tuples inserted into hash tables (build side).
    pub hash_build_rows: u64,
    /// Hash table probes.
    pub hash_probes: u64,
    /// Partitions/segments created (PNHL memory-budget passes).
    pub partitions: u64,
    /// Pointer dereferences through an oid index (materialize/assembly).
    pub oid_lookups: u64,
    /// Secondary-index probes (index nested-loop join).
    pub index_probes: u64,
    /// Batches whose filter predicate evaluated through the compiled
    /// selection-mask layer (either mask tier) instead of the row
    /// interpreter. A throughput indicator for the bench report, **not**
    /// a work term: the mask path charges the same `predicate_evals`
    /// as the row path, so [`Stats::work`] excludes this.
    pub mask_batches: u64,
    /// Bytes written to spill files by the external-memory subsystem
    /// (grace hash partitions, sort runs, PNHL probe partitions). Zero
    /// under an unbounded memory budget.
    pub spill_bytes: u64,
    /// Spill partition files created.
    pub spill_partitions: u64,
    /// Spill passes: one per initial grace partitioning / run
    /// generation, plus one per recursive re-partitioning of a skewed
    /// partition.
    pub spill_passes: u64,
    /// Tuples in the final result (top-level set cardinality).
    pub output_rows: u64,
    /// Times this query's physical plan came out of a serving-layer plan
    /// cache instead of being rewritten + costed from scratch (`1` on a
    /// cache-hit run, `0` otherwise; sessions accumulate). **Not** a work
    /// term — cache hits change planning latency, never execution work,
    /// so [`Stats::work`] excludes it.
    pub plan_cache_hits: u64,
    /// Times a cached (whole-query or hoisted-`let` subplan) result was
    /// served without re-executing its pipeline. Zero unless a serving
    /// layer with result caching enabled ran the query.
    pub result_cache_hits: u64,
    /// Per-operator emission profile of the streaming pipeline (one entry
    /// per physical operator, in close order; empty under the
    /// materialized executor).
    pub operators: Vec<OpStats>,
}

/// Rows and batches one streaming operator emitted.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Operator label, e.g. `HashJoin(Semi)` or `Scan(SUPPLIER)`.
    pub op: String,
    /// Rows the operator emitted downstream.
    pub rows_out: u64,
    /// Batches the operator emitted downstream.
    pub batches: u64,
    /// Input batches a grouped breaker consumed **incrementally**
    /// (streaming ν / streaming `Agg`); zero for per-row operators and
    /// for drain-to-set breakers. Shows in `Stats::operators` that the
    /// group table read its input batch-by-batch instead of buffering
    /// it behind an opaque drain.
    pub in_batches: u64,
    /// Bytes this operator wrote to spill files (see
    /// [`Stats::spill_bytes`]).
    pub spill_bytes: u64,
    /// Spill partitions this operator created.
    pub spill_partitions: u64,
    /// Spill passes this operator performed.
    pub spill_passes: u64,
    /// Wall-clock nanoseconds spent *inside* this operator's
    /// `open`/`next_batch`/`close` calls (inclusive of its children —
    /// a pull-based driver charges the whole subtree to the puller,
    /// like `EXPLAIN ANALYZE` in Postgres). All-zero unless the run
    /// had timing on ([`crate::plan::PlannerConfig::timing`]).
    pub timing: OpTiming,
}

/// Per-operator timing totals. A **measurement**, not a semantic
/// counter: two runs that did identical work at different speeds are
/// the same run as far as every differential suite is concerned, so
/// `PartialEq` here is intentionally always-true — `Stats`/`OpStats`
/// equality stays timing-blind and the dop/layout/budget equivalence
/// tests (and result-cache profile replay) keep comparing exact work,
/// never wall clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpTiming {
    /// Nanoseconds in `open` (usually trivial — blocking work is
    /// deferred to the first `next_batch`).
    pub open_ns: u64,
    /// Nanoseconds across all `next_batch` calls (where pipelines
    /// spend their time).
    pub next_ns: u64,
    /// Nanoseconds in `close`.
    pub close_ns: u64,
}

impl OpTiming {
    /// Total nanoseconds across the operator lifecycle.
    pub fn total_ns(&self) -> u64 {
        self.open_ns + self.next_ns + self.close_ns
    }

    /// Total milliseconds (the `actual_ms` EXPLAIN ANALYZE column).
    pub fn total_ms(&self) -> f64 {
        self.total_ns() as f64 / 1e6
    }

    /// Adds another operator instance's timing (worker folds, label
    /// merges).
    pub fn absorb(&mut self, other: &OpTiming) {
        self.open_ns += other.open_ns;
        self.next_ns += other.next_ns;
        self.close_ns += other.close_ns;
    }
}

impl PartialEq for OpTiming {
    /// Timing never participates in `Stats` equality (see the type
    /// docs): any two timings compare equal.
    fn eq(&self, _: &OpTiming) -> bool {
        true
    }
}

impl Eq for OpTiming {}

impl Stats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds `other` into `self` (merging parallel branches).
    pub fn merge(&mut self, other: &Stats) {
        self.rows_scanned += other.rows_scanned;
        self.loop_iterations += other.loop_iterations;
        self.predicate_evals += other.predicate_evals;
        self.hash_build_rows += other.hash_build_rows;
        self.hash_probes += other.hash_probes;
        self.partitions += other.partitions;
        self.oid_lookups += other.oid_lookups;
        self.index_probes += other.index_probes;
        self.mask_batches += other.mask_batches;
        self.spill_bytes += other.spill_bytes;
        self.spill_partitions += other.spill_partitions;
        self.spill_passes += other.spill_passes;
        self.output_rows += other.output_rows;
        self.plan_cache_hits += other.plan_cache_hits;
        self.result_cache_hits += other.result_cache_hits;
        self.operators.extend(other.operators.iter().cloned());
    }

    /// Adds a parallel worker's counters into `self`, **folding**
    /// per-operator entries with the same label together instead of
    /// appending them. Exchange workers execute clones of the same
    /// operator segment, so their emissions are one logical operator's
    /// work; folding (in worker-id order) keeps `operators` identical in
    /// shape to a serial run of the same plan. Entry order follows the
    /// first worker that reported each label.
    pub fn absorb_worker(&mut self, other: &Stats) {
        self.rows_scanned += other.rows_scanned;
        self.loop_iterations += other.loop_iterations;
        self.predicate_evals += other.predicate_evals;
        self.hash_build_rows += other.hash_build_rows;
        self.hash_probes += other.hash_probes;
        self.partitions += other.partitions;
        self.oid_lookups += other.oid_lookups;
        self.index_probes += other.index_probes;
        self.mask_batches += other.mask_batches;
        self.spill_bytes += other.spill_bytes;
        self.spill_partitions += other.spill_partitions;
        self.spill_passes += other.spill_passes;
        self.output_rows += other.output_rows;
        self.plan_cache_hits += other.plan_cache_hits;
        self.result_cache_hits += other.result_cache_hits;
        for op in &other.operators {
            match self.operators.iter_mut().find(|o| o.op == op.op) {
                Some(mine) => {
                    mine.rows_out += op.rows_out;
                    mine.batches += op.batches;
                    mine.in_batches += op.in_batches;
                    mine.spill_bytes += op.spill_bytes;
                    mine.spill_partitions += op.spill_partitions;
                    mine.spill_passes += op.spill_passes;
                    mine.timing.absorb(&op.timing);
                }
                None => self.operators.push(op.clone()),
            }
        }
    }

    /// The first per-operator entry whose label starts with `prefix`
    /// (convenience for tests and reports).
    pub fn operator(&self, prefix: &str) -> Option<&OpStats> {
        self.operators.iter().find(|o| o.op.starts_with(prefix))
    }

    /// Per-label `rows_out` totals, sorted by label — the canonical
    /// form for comparing operator profiles across runs (serial entries
    /// and parallel workers' folded entries alike). The dop-equivalence
    /// tests assert this is invariant under `parallelism`.
    pub fn operator_rows_by_label(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = Vec::new();
        for op in &self.operators {
            match v.iter_mut().find(|(l, _)| *l == op.op) {
                Some((_, r)) => *r += op.rows_out,
                None => v.push((op.op.clone(), op.rows_out)),
            }
        }
        v.sort();
        v
    }

    /// Total batches emitted across all streaming operators.
    pub fn total_batches(&self) -> u64 {
        self.operators.iter().map(|o| o.batches).sum()
    }

    /// Total "work units": a crude, hardware-independent cost proxy used
    /// by the benchmark report next to wall-clock times.
    pub fn work(&self) -> u64 {
        self.rows_scanned
            + self.loop_iterations
            + self.predicate_evals
            + self.hash_build_rows
            + self.hash_probes
            + self.oid_lookups
            + self.index_probes
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan={} loop={} pred={} build={} probe={} parts={} deref={} idx={} out={}",
            self.rows_scanned,
            self.loop_iterations,
            self.predicate_evals,
            self.hash_build_rows,
            self.hash_probes,
            self.partitions,
            self.oid_lookups,
            self.index_probes,
            self.output_rows
        )?;
        if self.spill_bytes > 0 {
            write!(
                f,
                " spill={}B/{}parts/{}passes",
                self.spill_bytes, self.spill_partitions, self.spill_passes
            )?;
        }
        if self.plan_cache_hits > 0 || self.result_cache_hits > 0 {
            write!(
                f,
                " plan_hits={} result_hits={}",
                self.plan_cache_hits, self.result_cache_hits
            )?;
        }
        if !self.operators.is_empty() {
            write!(
                f,
                " ops={} batches={}",
                self.operators.len(),
                self.total_batches()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = Stats {
            rows_scanned: 1,
            hash_probes: 2,
            ..Stats::default()
        };
        let b = Stats {
            rows_scanned: 10,
            loop_iterations: 5,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 11);
        assert_eq!(a.loop_iterations, 5);
        assert_eq!(a.hash_probes, 2);
    }

    #[test]
    fn work_excludes_output() {
        let s = Stats {
            output_rows: 100,
            rows_scanned: 3,
            ..Stats::default()
        };
        assert_eq!(s.work(), 3);
    }

    #[test]
    fn display_is_compact() {
        let s = Stats::default();
        assert!(s.to_string().starts_with("scan=0"));
    }

    #[test]
    fn timing_is_equality_blind_but_folds() {
        let timed = OpStats {
            op: "Scan(X)".into(),
            rows_out: 5,
            timing: OpTiming {
                open_ns: 1,
                next_ns: 2,
                close_ns: 3,
            },
            ..OpStats::default()
        };
        let untimed = OpStats {
            op: "Scan(X)".into(),
            rows_out: 5,
            ..OpStats::default()
        };
        // identical work at different speeds is the same profile
        assert_eq!(timed, untimed);
        assert_eq!(timed.timing.total_ns(), 6);
        // absorb_worker folds timing alongside the counters
        let mut a = Stats {
            operators: vec![timed.clone()],
            ..Stats::default()
        };
        let b = Stats {
            operators: vec![timed],
            ..Stats::default()
        };
        a.absorb_worker(&b);
        assert_eq!(a.operators.len(), 1);
        assert_eq!(a.operators[0].rows_out, 10);
        assert_eq!(a.operators[0].timing.total_ns(), 12);
    }
}

//! # Execution engine: tuple-oriented baseline + set-oriented operators
//!
//! Two execution paths for ADL expressions (the comparison at the heart of
//! *From Nested-Loop to Join Queries in OODB*):
//!
//! * [`eval::Evaluator`] — the **reference nested-loop interpreter**:
//!   every operator executed from its §3 definition, iterators re-running
//!   their parameter expressions per element. This is the tuple-oriented
//!   baseline the paper argues against.
//! * [`plan::Planner`] + [`physical::PhysPlan`] — **set-oriented
//!   execution**: hash / sort-merge / membership-hash joins, semijoins,
//!   antijoins, the nestjoin `⊣` (§6.1), PNHL (§6.2, \[DeLa92\]) and
//!   pointer-based assembly (§6.2, \[BlMG93\]), with statistics that expose
//!   the work profile ([`stats::Stats`]).
//!
//! Physical operators are property-tested to agree with the reference
//! evaluator on arbitrary inputs — same answers, different asymptotics.

pub mod cost;
pub mod eval;
pub mod joinorder;
pub mod physical;
pub mod plan;
pub mod pool;
pub mod stats;

pub use cost::{CostModel, Estimate};
pub use eval::{Env, EvalError, Evaluator};
// The external-memory subsystem's budget handle, re-exported so callers
// configuring `PlannerConfig::memory_budget` (or running plans under an
// explicit budget) need not depend on `oodb-spill` directly.
pub use oodb_spill::{MemoryBudget, SpillManager, SpillMetrics};
// The batch layout selector, re-exported so callers configuring
// `PlannerConfig::batch_kind` need not depend on `oodb-value` paths.
pub use oodb_value::BatchKind;
pub use physical::operator::{ResultStream, BATCH_SIZE};
pub use physical::{Partitioning, PhysPlan};
pub use plan::{JoinAlgo, JoinOrder, Plan, PlanError, Planner, PlannerConfig};
pub use pool::WorkerPool;
pub use stats::Stats;

//! Sort-merge implementation of the regular equi-join.
//!
//! Listed by the paper (§6) among the implementation choices the optimizer
//! gains by rewriting to joins. Both inputs are sorted by their key
//! vector; matching key groups produce the cross product of their tuples
//! (filtered by the residual predicate).

use crate::eval::{Env, EvalError, Evaluator};
use crate::stats::Stats;
use oodb_adl::expr::Expr;
use oodb_value::{Name, Set, Value};

/// The sort phase of the sort-merge join, holding both sorted runs and
/// the merge cursor. [`SortMergeState::next_chunk`] then emits matches
/// incrementally — the streaming `Operator` pipeline pulls one chunk
/// per batch instead of materializing the whole join result.
pub struct SortMergeState<V = Value> {
    ls: Vec<(Vec<Value>, V)>,
    rs: Vec<(Vec<Value>, V)>,
    i: usize,
    j: usize,
}

impl<V: std::borrow::Borrow<Value>> SortMergeState<V> {
    /// Evaluates and sorts both key runs (the blocking phase). Generic
    /// over row ownership: the streaming pipeline moves owned rows in
    /// (`V = Value`), the materialized entry point borrows its sets
    /// (`V = &Value`, zero copies).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        lvar: &Name,
        rvar: &Name,
        lkeys: &[Expr],
        rkeys: &[Expr],
        left: impl IntoIterator<Item = V>,
        right: impl IntoIterator<Item = V>,
        ev: &Evaluator<'_>,
        env: &mut Env,
        stats: &mut Stats,
    ) -> Result<Self, EvalError> {
        let mut ls = keyed(left, lkeys, lvar, ev, env, stats)?;
        let mut rs = keyed(right, rkeys, rvar, ev, env, stats)?;
        ls.sort_by(|a, b| a.0.cmp(&b.0));
        rs.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(SortMergeState { ls, rs, i: 0, j: 0 })
    }

    /// Advances the merge until at least `min_rows` output rows exist (or
    /// input is exhausted); `None` once fully drained. Equal-key groups
    /// are emitted whole, so a chunk can exceed `min_rows`.
    #[allow(clippy::too_many_arguments)]
    pub fn next_chunk(
        &mut self,
        lvar: &Name,
        rvar: &Name,
        residual: Option<&Expr>,
        min_rows: usize,
        ev: &Evaluator<'_>,
        env: &mut Env,
        stats: &mut Stats,
    ) -> Result<Option<Vec<Value>>, EvalError> {
        if self.i >= self.ls.len() || self.j >= self.rs.len() {
            return Ok(None);
        }
        let mut out = Vec::new();
        while self.i < self.ls.len() && self.j < self.rs.len() {
            match self.ls[self.i].0.cmp(&self.rs[self.j].0) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    // find the extent of the equal-key group on each side
                    let key = &self.ls[self.i].0;
                    let i_end = self.ls[self.i..]
                        .iter()
                        .take_while(|(k, _)| k == key)
                        .count()
                        + self.i;
                    let j_end = self.rs[self.j..]
                        .iter()
                        .take_while(|(k, _)| k == key)
                        .count()
                        + self.j;
                    for li in self.i..i_end {
                        for rj in self.j..j_end {
                            stats.loop_iterations += 1;
                            let x = self.ls[li].1.borrow();
                            let y = self.rs[rj].1.borrow();
                            let keep = match residual {
                                None => true,
                                Some(pred) => {
                                    stats.predicate_evals += 1;
                                    env.push(lvar, x.clone());
                                    env.push(rvar, y.clone());
                                    let r = ev.eval(pred, env, stats);
                                    env.pop();
                                    env.pop();
                                    r?.as_bool()?
                                }
                            };
                            if keep {
                                out.push(Value::Tuple(x.as_tuple()?.concat(y.as_tuple()?)?));
                            }
                        }
                    }
                    self.i = i_end;
                    self.j = j_end;
                    if out.len() >= min_rows {
                        return Ok(Some(out));
                    }
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

/// Sort-merge inner join.
#[allow(clippy::too_many_arguments)]
pub fn sort_merge_join(
    lvar: &Name,
    rvar: &Name,
    lkeys: &[Expr],
    rkeys: &[Expr],
    residual: Option<&Expr>,
    left: &Set,
    right: &Set,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Value, EvalError> {
    let mut state = SortMergeState::build(
        lvar,
        rvar,
        lkeys,
        rkeys,
        left.iter(),
        right.iter(),
        ev,
        env,
        stats,
    )?;
    let mut out = Vec::new();
    while let Some(chunk) = state.next_chunk(lvar, rvar, residual, usize::MAX, ev, env, stats)? {
        out.extend(chunk);
    }
    Ok(Value::Set(Set::from_values(out)))
}

/// Pairs every tuple with its evaluated key vector.
fn keyed<V: std::borrow::Borrow<Value>>(
    s: impl IntoIterator<Item = V>,
    keys: &[Expr],
    var: &Name,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Vec<(Vec<Value>, V)>, EvalError> {
    let mut out = Vec::new();
    for v in s {
        env.push(var, v.borrow().clone());
        let mut key = Vec::with_capacity(keys.len());
        for k in keys {
            match ev.eval(k, env, stats) {
                Ok(kv) => key.push(kv),
                Err(e) => {
                    env.pop();
                    return Err(e);
                }
            }
        }
        env.pop();
        out.push((key, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_adl::expr::JoinKind;
    use oodb_catalog::fixtures::figure3_db;

    #[test]
    fn agrees_with_hash_join() {
        let db = figure3_db();
        let ev = Evaluator::new(&db);
        let x = db.table("X").unwrap().as_set_value().into_set().unwrap();
        let y = db.table("Y").unwrap().as_set_value().into_set().unwrap();
        let lk = [var("x").field("b")];
        let rk = [var("y").field("d")];

        let mut env = Env::new();
        let mut s1 = Stats::new();
        let smj = sort_merge_join(
            &"x".into(),
            &"y".into(),
            &lk,
            &rk,
            None,
            &x,
            &y,
            &ev,
            &mut env,
            &mut s1,
        )
        .unwrap();

        let mut s2 = Stats::new();
        let hj = crate::physical::hashjoin::hash_join(
            JoinKind::Inner,
            &"x".into(),
            &"y".into(),
            &lk,
            &rk,
            None,
            &[],
            &x,
            &y,
            &ev,
            &mut env,
            &mut s2,
        )
        .unwrap();
        assert_eq!(smj, hj);
        assert_eq!(smj.as_set().unwrap().len(), 4);
    }

    #[test]
    fn residual_applies_within_groups() {
        let db = figure3_db();
        let ev = Evaluator::new(&db);
        let x = db.table("X").unwrap().as_set_value().into_set().unwrap();
        let y = db.table("Y").unwrap().as_set_value().into_set().unwrap();
        let mut env = Env::new();
        let mut st = Stats::new();
        let v = sort_merge_join(
            &"x".into(),
            &"y".into(),
            &[var("x").field("b")],
            &[var("y").field("d")],
            Some(&lt(var("x").field("a"), var("y").field("c"))),
            &x,
            &y,
            &ev,
            &mut env,
            &mut st,
        )
        .unwrap();
        // matches on b=d=1: pairs (x1,y1),(x1,y2),(x2,y1),(x2,y2) — keep a<c:
        // (1,2) only... x1=(a=1) with y(c=2): 1<2 ✓; x1 with y(c=1): ✗;
        // x2=(a=2): 2<1 ✗, 2<2 ✗ → exactly 1 row
        assert_eq!(v.as_set().unwrap().len(), 1);
    }
}

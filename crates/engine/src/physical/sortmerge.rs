//! Sort-merge implementation of the regular equi-join.
//!
//! Listed by the paper (§6) among the implementation choices the optimizer
//! gains by rewriting to joins. Both inputs are sorted by their key
//! vector; matching key groups produce the cross product of their tuples
//! (filtered by the residual predicate).

use crate::eval::{Env, EvalError, Evaluator};
use crate::stats::Stats;
use oodb_adl::expr::Expr;
use oodb_value::{Name, Set, Value};

/// Sort-merge inner join.
#[allow(clippy::too_many_arguments)]
pub fn sort_merge_join(
    lvar: &Name,
    rvar: &Name,
    lkeys: &[Expr],
    rkeys: &[Expr],
    residual: Option<&Expr>,
    left: &Set,
    right: &Set,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Value, EvalError> {
    let mut ls = keyed(left, lkeys, lvar, ev, env, stats)?;
    let mut rs = keyed(right, rkeys, rvar, ev, env, stats)?;
    ls.sort_by(|a, b| a.0.cmp(&b.0));
    rs.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ls.len() && j < rs.len() {
        match ls[i].0.cmp(&rs[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // find the extent of the equal-key group on each side
                let key = &ls[i].0;
                let i_end = ls[i..].iter().take_while(|(k, _)| k == key).count() + i;
                let j_end = rs[j..].iter().take_while(|(k, _)| k == key).count() + j;
                for (_, x) in &ls[i..i_end] {
                    for (_, y) in &rs[j..j_end] {
                        stats.loop_iterations += 1;
                        let keep = match residual {
                            None => true,
                            Some(pred) => {
                                stats.predicate_evals += 1;
                                env.push(lvar, (*x).clone());
                                env.push(rvar, (*y).clone());
                                let r = ev.eval(pred, env, stats);
                                env.pop();
                                env.pop();
                                r?.as_bool()?
                            }
                        };
                        if keep {
                            out.push(Value::Tuple(
                                x.as_tuple()?.concat(y.as_tuple()?)?,
                            ));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(Value::Set(Set::from_values(out)))
}

/// Pairs every tuple with its evaluated key vector.
fn keyed<'s>(
    s: &'s Set,
    keys: &[Expr],
    var: &Name,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Vec<(Vec<Value>, &'s Value)>, EvalError> {
    let mut out = Vec::with_capacity(s.len());
    for v in s.iter() {
        env.push(var, v.clone());
        let mut key = Vec::with_capacity(keys.len());
        for k in keys {
            match ev.eval(k, env, stats) {
                Ok(kv) => key.push(kv),
                Err(e) => {
                    env.pop();
                    return Err(e);
                }
            }
        }
        env.pop();
        out.push((key, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_adl::expr::JoinKind;
    use oodb_catalog::fixtures::figure3_db;

    #[test]
    fn agrees_with_hash_join() {
        let db = figure3_db();
        let ev = Evaluator::new(&db);
        let x = db.table("X").unwrap().as_set_value().into_set().unwrap();
        let y = db.table("Y").unwrap().as_set_value().into_set().unwrap();
        let lk = [var("x").field("b")];
        let rk = [var("y").field("d")];

        let mut env = Env::new();
        let mut s1 = Stats::new();
        let smj = sort_merge_join(
            &"x".into(),
            &"y".into(),
            &lk,
            &rk,
            None,
            &x,
            &y,
            &ev,
            &mut env,
            &mut s1,
        )
        .unwrap();

        let mut s2 = Stats::new();
        let hj = crate::physical::hashjoin::hash_join(
            JoinKind::Inner,
            &"x".into(),
            &"y".into(),
            &lk,
            &rk,
            None,
            &[],
            &x,
            &y,
            &ev,
            &mut env,
            &mut s2,
        )
        .unwrap();
        assert_eq!(smj, hj);
        assert_eq!(smj.as_set().unwrap().len(), 4);
    }

    #[test]
    fn residual_applies_within_groups() {
        let db = figure3_db();
        let ev = Evaluator::new(&db);
        let x = db.table("X").unwrap().as_set_value().into_set().unwrap();
        let y = db.table("Y").unwrap().as_set_value().into_set().unwrap();
        let mut env = Env::new();
        let mut st = Stats::new();
        let v = sort_merge_join(
            &"x".into(),
            &"y".into(),
            &[var("x").field("b")],
            &[var("y").field("d")],
            Some(&lt(var("x").field("a"), var("y").field("c"))),
            &x,
            &y,
            &ev,
            &mut env,
            &mut st,
        )
        .unwrap();
        // matches on b=d=1: pairs (x1,y1),(x1,y2),(x2,y1),(x2,y2) — keep a<c:
        // (1,2) only... x1=(a=1) with y(c=2): 1<2 ✓; x1 with y(c=1): ✗;
        // x2=(a=2): 2<1 ✗, 2<2 ✗ → exactly 1 row
        assert_eq!(v.as_set().unwrap().len(), 1);
    }
}

//! Exchange operators: intra-query parallelism over batch boundaries.
//!
//! The streaming pipeline of [`super::operator`] pulls batches through a
//! single thread. This module adds the morsel-driven parallel execution
//! the ROADMAP calls for, in the shape practical engines use (cf.
//! risinglight's exchange executors): plans are split at **pipeline
//! breaker boundaries** — hash/member build sides, sort runs, PNHL
//! operands, aggregate drains — and the per-row segments between them
//! fan out to a fixed worker pool.
//!
//! Two partitioning strategies (see [`Partitioning`]):
//!
//! * **Round-robin** ([`ExchangeOp`]): each worker executes a clone of
//!   the same per-row segment (filters, maps, projections, unnests,
//!   assembly over one base scan), with the scan strided so each
//!   [`BATCH_SIZE`](super::operator::BATCH_SIZE)-aligned morsel belongs to exactly one worker. The
//!   exchange gathers worker outputs in worker order — a blocking
//!   boundary, like the breaker it feeds.
//! * **Hash** ([`ParallelHashJoinOp`]): hash-partitioned parallel build
//!   *and* probe for the hash join family. Build keys are evaluated in
//!   parallel, rows are routed by [`hashjoin::key_hash`] to per-worker
//!   partition tables built concurrently, and probe rows are split
//!   across workers, each probe key consulting exactly its owning
//!   partition — the same lookups a serial probe performs.
//!
//! **Determinism.** Results are canonical-set identical to serial
//! execution at every degree of parallelism (each row is scanned,
//! transformed and probed exactly once; only the transient row order
//! changes, which every canonical [`Set`] boundary erases), and worker
//! statistics are merged in worker-id order with per-operator entries
//! folded by label ([`Stats::absorb_worker`]), so `Stats::operators`
//! row totals match a serial run of the same plan.

use super::hashjoin::{self, JoinHashTable, MemberHashTable, MemberShape};
use super::operator::{
    drain_rows, drain_to_set, Batch, BoxOp, Buffered, ExecCtx, HashMode, InstrState, Operator,
};
use super::{spill_exec, Partitioning, PhysPlan};
use crate::eval::{Env, EvalError, Evaluator};
use crate::pool::WorkerPool;
use crate::stats::Stats;
use oodb_adl::expr::{Expr, JoinKind};
use oodb_catalog::Database;
#[cfg(test)]
use oodb_spill::MemoryBudget;
use oodb_spill::SpillMetrics;
use oodb_value::{BatchKind, Name, Value};

/// Compiles an `Exchange` node into its streaming operator. Called from
/// [`PhysPlan::compile`]'s node dispatch.
pub(crate) fn compile_exchange(partitioning: Partitioning, dop: usize, input: &PhysPlan) -> BoxOp {
    match partitioning {
        Partitioning::RoundRobin => {
            // A round-robin exchange is only valid over a per-row
            // segment (the planner guarantees this); anything else
            // degrades to one worker, which is plain serial execution.
            let dop = if segment_scan(input).is_some() {
                dop
            } else {
                1
            };
            Box::new(ExchangeOp {
                plan: input.clone(),
                dop: dop.max(1),
                buf: None,
                state: InstrState::Created,
            })
        }
        Partitioning::Hash => match ParallelHashJoinOp::from_plan(input, dop.max(1)) {
            Some(op) => Box::new(op),
            // Not a hash-family join: degrade to the input's own
            // serial compilation (unreachable through the planner).
            None => input.compile_rows(0, 1),
        },
    }
}

/// The base scan a round-robin segment strides over, if `plan` is a
/// valid segment: a chain of per-row operators (`σ α π ρ μ ⋃`,
/// assembly) over exactly one [`PhysPlan::Scan`] leaf. The planner and
/// [`compile_exchange`] share this definition, so an exchange can never
/// stride a plan whose semantics depend on seeing all rows.
pub(crate) fn segment_scan(plan: &PhysPlan) -> Option<&Name> {
    match plan {
        PhysPlan::Scan(n) => Some(n),
        PhysPlan::Filter { input, .. }
        | PhysPlan::MapOp { input, .. }
        | PhysPlan::ProjectOp { input, .. }
        | PhysPlan::RenameOp { input, .. }
        | PhysPlan::UnnestOp { input, .. }
        | PhysPlan::FlattenOp { input }
        | PhysPlan::Assemble { input, .. } => segment_scan(input),
        _ => None,
    }
}

/// Splits `rows` into `n` contiguous chunks (first chunks one longer
/// when the split is uneven) — the deterministic work assignment for
/// build-key evaluation and probe phases.
fn split_chunks(mut rows: Vec<Value>, n: usize) -> Vec<Vec<Value>> {
    let total = rows.len();
    let mut out = Vec::with_capacity(n);
    let base = total / n;
    let extra = total % n;
    // Split from the back so each `split_off` is O(chunk).
    let mut sizes: Vec<usize> = (0..n).map(|i| base + usize::from(i < extra)).collect();
    while let Some(size) = sizes.pop() {
        let at = rows.len() - size;
        out.push(rows.split_off(at));
    }
    out.reverse();
    out
}

/// Joins worker results in worker-id order: outputs are concatenated,
/// statistics folded via [`Stats::absorb_worker`], and the first error
/// (by worker id, for determinism) wins.
fn gather<T>(
    results: Vec<Result<(Vec<T>, Stats), EvalError>>,
    folded: &mut Stats,
) -> Result<Vec<Vec<T>>, EvalError> {
    let mut out = Vec::with_capacity(results.len());
    let mut first_err = None;
    for r in results {
        match r {
            Ok((rows, stats)) => {
                folded.absorb_worker(&stats);
                out.push(rows);
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// One exchange worker's closure: produces its output slice plus its
/// private [`Stats`], or the first error it hit.
type WorkerTask<'env, T> = Box<dyn FnOnce() -> Result<(Vec<T>, Stats), EvalError> + Send + 'env>;

/// Runs `tasks` on the [shared worker pool](crate::pool), mapping
/// per-task panics to the same error the scoped-thread implementation
/// produced. Results come back in task-submission order — the
/// (query, worker) key [`gather`]'s deterministic fold depends on —
/// regardless of which pool threads (or the submitting thread itself)
/// executed the morsels.
fn pool_run<'env, T: Send + 'env>(
    tasks: Vec<WorkerTask<'env, T>>,
) -> Vec<Result<(Vec<T>, Stats), EvalError>> {
    WorkerPool::global()
        .scope_run(tasks)
        .into_iter()
        .map(|r| r.unwrap_or(Err(EvalError::OperatorProtocol("parallel worker panicked"))))
        .collect()
}

// ---------------------------------------------------------------------
// Round-robin exchange.

/// Gathers a per-row segment executed by `dop` strided workers; see the
/// module docs. Blocking on its first pull, then emits the gathered
/// rows in [`BATCH_SIZE`](super::operator::BATCH_SIZE) chunks.
struct ExchangeOp {
    plan: PhysPlan,
    dop: usize,
    buf: Option<Buffered>,
    /// Round-robin exchanges skip the [`Instrument`] shim (their
    /// workers report instead), so they enforce the
    /// `open → next_batch* → close` protocol themselves — pulling a
    /// created or closed exchange must error, not silently re-run the
    /// whole worker fan-out.
    ///
    /// [`Instrument`]: super::operator
    state: InstrState,
}

impl ExchangeOp {
    fn run_workers(&self, ctx: &mut ExecCtx<'_, '_>) -> Result<Vec<Value>, EvalError> {
        let db: &Database = ctx.ev.db();
        let env = &ctx.env;
        let plan = &self.plan;
        let dop = self.dop;
        // Each worker's pipeline state gets an equal share of the
        // memory budget, so the whole exchange stays within it.
        let budget = ctx.budget.share(dop);
        let batch_kind = ctx.batch_kind;
        let vectorize = ctx.vectorize;
        let timing = ctx.timing;
        let tasks: Vec<WorkerTask<'_, Value>> = (0..dop)
            .map(|w| {
                let env = env.clone();
                let budget = budget.clone();
                Box::new(move || {
                    let mut stats = Stats::new();
                    let mut wctx = ExecCtx {
                        ev: Evaluator::new(db),
                        env,
                        stats: &mut stats,
                        budget,
                        batch_kind,
                        vectorize,
                        timing,
                    };
                    let mut op = plan.compile_stride(w, dop);
                    op.open(&mut wctx)?;
                    let rows = drain_rows(&mut op, &mut wctx);
                    op.close(&mut wctx);
                    rows.map(|r| (r, stats))
                }) as WorkerTask<'_, Value>
            })
            .collect();
        let results = pool_run(tasks);
        let mut folded = Stats::new();
        let gathered = gather(results, &mut folded);
        ctx.stats.merge(&folded);
        Ok(gathered?.into_iter().flatten().collect())
    }
}

impl Operator for ExchangeOp {
    fn open(&mut self, _ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        self.state = InstrState::Open;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        match self.state {
            InstrState::Open | InstrState::Exhausted => {}
            InstrState::Created => {
                return Err(EvalError::OperatorProtocol("next_batch before open"))
            }
            InstrState::Closed => {
                return Err(EvalError::OperatorProtocol("next_batch after close"))
            }
        }
        if self.buf.is_none() {
            let rows = self.run_workers(ctx)?;
            self.buf = Some(Buffered::new(rows));
        }
        let chunk = self
            .buf
            .as_mut()
            .expect("gathered above")
            .next_chunk(ctx.batch_kind);
        if chunk.is_none() {
            self.state = InstrState::Exhausted;
        }
        Ok(chunk)
    }

    fn close(&mut self, _ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
        self.state = InstrState::Closed;
    }
}

// ---------------------------------------------------------------------
// Hash-partitioned parallel join.

/// Which key machinery the join family uses.
enum JoinFamily {
    /// Equi-keyed (`HashJoin` / `HashNestJoin`).
    Equi { lkeys: Vec<Expr>, rkeys: Vec<Expr> },
    /// Membership-keyed (`HashMemberJoin` / `MemberNestJoin`).
    Member { shape: MemberShape },
}

/// Whether the join emits join rows or nestjoin groups (mirrors the
/// serial operators' `HashMode`).
enum OutputMode {
    Join {
        kind: JoinKind,
        right_attrs: Vec<Name>,
    },
    Nest {
        rfunc: Option<Expr>,
        as_attr: Name,
    },
}

/// One partition's pre-keyed build entries: the route keys (one
/// composite key for equi joins; the partition's subset of membership
/// keys) and the row.
type Keyed = (Vec<Value>, Value);

/// Hash-partitioned parallel build + probe for the hash join family.
///
/// Replaces the serial `HashJoinOp`/`MemberJoinOp` when the planner
/// wraps a join in `Exchange { partitioning: Hash }`: both sides are
/// drained (the build side through the usual canonical-set breaker),
/// build keys are evaluated in parallel and rows routed by key hash to
/// `dop` partition tables built concurrently, then probe rows are split
/// across `dop` workers probing the shared partition tables.
struct ParallelHashJoinOp {
    family: JoinFamily,
    mode: OutputMode,
    lvar: Name,
    rvar: Name,
    residual: Option<Expr>,
    dop: usize,
    left: BoxOp,
    right: BoxOp,
    buf: Option<Buffered>,
    spill: SpillMetrics,
}

impl ParallelHashJoinOp {
    /// Builds the operator from a hash-family join node; `None` for any
    /// other plan shape.
    fn from_plan(plan: &PhysPlan, dop: usize) -> Option<Self> {
        let (family, mode, lvar, rvar, residual, left, right) = match plan {
            PhysPlan::HashJoin {
                kind,
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                right_attrs,
                left,
                right,
            } => (
                JoinFamily::Equi {
                    lkeys: lkeys.clone(),
                    rkeys: rkeys.clone(),
                },
                OutputMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar,
                rvar,
                residual,
                left,
                right,
            ),
            PhysPlan::HashNestJoin {
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => (
                JoinFamily::Equi {
                    lkeys: lkeys.clone(),
                    rkeys: rkeys.clone(),
                },
                OutputMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar,
                rvar,
                residual,
                left,
                right,
            ),
            PhysPlan::HashMemberJoin {
                kind,
                lvar,
                rvar,
                shape,
                residual,
                right_attrs,
                left,
                right,
            } => (
                JoinFamily::Member {
                    shape: shape.clone(),
                },
                OutputMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar,
                rvar,
                residual,
                left,
                right,
            ),
            PhysPlan::MemberNestJoin {
                lvar,
                rvar,
                shape,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => (
                JoinFamily::Member {
                    shape: shape.clone(),
                },
                OutputMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar,
                rvar,
                residual,
                left,
                right,
            ),
            _ => return None,
        };
        Some(ParallelHashJoinOp {
            family,
            mode,
            lvar: lvar.clone(),
            rvar: rvar.clone(),
            residual: residual.clone(),
            dop,
            left: left.compile_rows(0, 1),
            right: right.compile_rows(0, 1),
            buf: None,
            spill: SpillMetrics::default(),
        })
    }

    /// The serial [`HashMode`] equivalent of this operator's output mode
    /// (what the grace fallback executes partition-by-partition).
    fn hash_mode(&self) -> HashMode {
        match &self.mode {
            OutputMode::Join { kind, right_attrs } => HashMode::Join {
                kind: *kind,
                right_attrs: right_attrs.clone(),
            },
            OutputMode::Nest { rfunc, as_attr } => HashMode::Nest {
                rfunc: rfunc.clone(),
                as_attr: as_attr.clone(),
            },
        }
    }

    /// Phase 1: evaluate every build row's route keys in parallel.
    /// Equi joins route each row under its single composite key;
    /// membership joins route under `rkey(y)` (`RightInLeftSet`) or
    /// every element of `rset(y)` (`LeftInRightSet`).
    fn eval_build_keys(
        &self,
        db: &Database,
        env: &Env,
        build: Vec<Value>,
        folded: &mut Stats,
    ) -> Result<Vec<Keyed>, EvalError> {
        let chunks = split_chunks(build, self.dop);
        let family = &self.family;
        let rvar = &self.rvar;
        let tasks: Vec<WorkerTask<'_, Keyed>> = chunks
            .into_iter()
            .map(|chunk| {
                let env = env.clone();
                Box::new(move || {
                    let ev = Evaluator::new(db);
                    let mut env = env;
                    let mut stats = Stats::new();
                    let mut out = Vec::with_capacity(chunk.len());
                    for y in chunk {
                        let keys = match family {
                            JoinFamily::Equi { rkeys, .. } => {
                                hashjoin::eval_keys(rkeys, rvar, &y, &ev, &mut env, &mut stats)?
                            }
                            JoinFamily::Member { shape } => match shape {
                                MemberShape::RightInLeftSet { rkey, .. } => {
                                    vec![hashjoin::eval_under(
                                        rkey, rvar, &y, &ev, &mut env, &mut stats,
                                    )?]
                                }
                                MemberShape::LeftInRightSet { rset, .. } => {
                                    let s = hashjoin::eval_under(
                                        rset, rvar, &y, &ev, &mut env, &mut stats,
                                    )?;
                                    s.as_set()?.iter().cloned().collect()
                                }
                            },
                        };
                        out.push((keys, y));
                    }
                    Ok((out, stats))
                }) as WorkerTask<'_, Keyed>
            })
            .collect();
        let results = pool_run(tasks);
        Ok(gather(results, folded)?.into_iter().flatten().collect())
    }

    /// Phase 2: route keyed rows to their partitions. For equi joins
    /// the whole key vector hashes as a unit; for membership joins each
    /// key routes separately, and a row reachable from several
    /// partitions is replicated into each, indexed only under that
    /// partition's keys (a keyless row — empty `rset` — indexes
    /// nowhere, exactly as in the serial build).
    fn partition_buckets(&self, keyed: Vec<Keyed>) -> Vec<Vec<Keyed>> {
        let dop = self.dop as u64;
        let mut buckets: Vec<Vec<Keyed>> = (0..self.dop).map(|_| Vec::new()).collect();
        match &self.family {
            JoinFamily::Equi { .. } => {
                for (key, row) in keyed {
                    let p = (hashjoin::key_hash(&key) % dop) as usize;
                    buckets[p].push((key, row));
                }
            }
            JoinFamily::Member { .. } => {
                for (keys, row) in keyed {
                    let mut per_part: Vec<(usize, Vec<Value>)> = Vec::new();
                    for k in keys {
                        let p = (hashjoin::value_hash(&k) % dop) as usize;
                        match per_part.iter_mut().find(|(q, _)| *q == p) {
                            Some((_, ks)) => ks.push(k),
                            None => per_part.push((p, vec![k])),
                        }
                    }
                    let replicas = per_part.len();
                    let mut row = Some(row);
                    for (i, (p, ks)) in per_part.into_iter().enumerate() {
                        let r = if i + 1 == replicas {
                            row.take().expect("moved into the last replica only")
                        } else {
                            row.as_ref().expect("not yet moved").clone()
                        };
                        buckets[p].push((ks, r));
                    }
                }
            }
        }
        buckets
    }

    /// Runs build and probe to completion, returning the joined rows.
    fn execute(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Vec<Value>, EvalError> {
        // The build side drains up front through the usual canonical-set
        // breaker.
        let build = drain_to_set(&mut self.right, &mut self.spill, ctx)?.into_values();
        let db: &Database = ctx.ev.db();
        let env = ctx.env.clone();

        // Phase 1: parallel build-key evaluation — bounded or not, the
        // keys are needed either way (for routing, or for the grace
        // partition files), so the budget never serializes this phase.
        let keyed = {
            let mut folded = Stats::new();
            let r = self.eval_build_keys(db, &env, build, &mut folded);
            ctx.stats.merge(&folded);
            r?
        };

        // An oversized build side falls back to the grace hash join,
        // which partitions both sides through the SpillManager
        // (partition-at-a-time, within the budget at any dop); the
        // probe side is still undrained, so grace streams it straight
        // into partition files.
        if ctx.budget.is_bounded() {
            let bytes: usize = keyed
                .iter()
                .map(|(ks, row)| spill_exec::entry_bytes(ks, row))
                .sum();
            if ctx.budget.exceeded_by(bytes) {
                let mode = self.hash_mode();
                let budget = ctx.budget.clone();
                return match &self.family {
                    JoinFamily::Equi { lkeys, .. } => spill_exec::grace_equi_join(
                        &mode,
                        &self.lvar,
                        &self.rvar,
                        lkeys,
                        self.residual.as_ref(),
                        keyed,
                        &mut self.left,
                        &budget,
                        &mut self.spill,
                        ctx,
                    ),
                    JoinFamily::Member { shape } => spill_exec::grace_member_join(
                        &mode,
                        &self.lvar,
                        &self.rvar,
                        shape,
                        self.residual.as_ref(),
                        keyed,
                        &mut self.left,
                        &budget,
                        &mut self.spill,
                        ctx,
                    ),
                };
            }
        }

        // The probe side drains as a raw row stream (the serial probe
        // does not deduplicate either). Phase 2: routing.
        let probe = drain_rows(&mut self.left, ctx)?;
        let mut folded = Stats::new();
        let buckets = self.partition_buckets(keyed);

        // Phase 3: build the partition tables concurrently.
        let build_tasks: Vec<WorkerTask<'_, Tables>> = buckets
            .into_iter()
            .map(|bucket| {
                let member = matches!(self.family, JoinFamily::Member { .. });
                Box::new(move || {
                    let mut stats = Stats::new();
                    let table = if member {
                        Tables::Member(MemberHashTable::from_keyed(bucket, &mut stats))
                    } else {
                        Tables::Equi(JoinHashTable::from_keyed(bucket, &mut stats))
                    };
                    Ok((vec![table], stats))
                }) as WorkerTask<'_, Tables>
            })
            .collect();
        let build_results = pool_run(build_tasks);
        let tables: Vec<Tables> = match gather(build_results, &mut folded) {
            Ok(ts) => ts.into_iter().flatten().collect(),
            Err(e) => {
                ctx.stats.merge(&folded);
                return Err(e);
            }
        };
        let (equi_tables, member_tables) = split_tables(tables);

        // Phase 4: parallel probe over the shared partition tables.
        let chunks = split_chunks(probe, self.dop);
        let (family, mode, lvar, rvar, residual) = (
            &self.family,
            &self.mode,
            &self.lvar,
            &self.rvar,
            &self.residual,
        );
        let (equi_tables, member_tables) = (&equi_tables, &member_tables);
        let probe_tasks: Vec<WorkerTask<'_, Value>> = chunks
            .into_iter()
            .map(|chunk| {
                let env = env.clone();
                Box::new(move || {
                    let ev = Evaluator::new(db);
                    let mut env = env;
                    let mut stats = Stats::new();
                    let out = match (family, mode) {
                        (
                            JoinFamily::Equi { lkeys, .. },
                            OutputMode::Join { kind, right_attrs },
                        ) => JoinHashTable::probe_batch(
                            equi_tables,
                            *kind,
                            lvar,
                            rvar,
                            lkeys,
                            residual.as_ref(),
                            right_attrs,
                            (&chunk).into(),
                            &ev,
                            &mut env,
                            &mut stats,
                        )?,
                        (JoinFamily::Equi { lkeys, .. }, OutputMode::Nest { rfunc, as_attr }) => {
                            JoinHashTable::probe_nest_batch(
                                equi_tables,
                                lvar,
                                rvar,
                                lkeys,
                                residual.as_ref(),
                                rfunc.as_ref(),
                                as_attr,
                                (&chunk).into(),
                                &ev,
                                &mut env,
                                &mut stats,
                            )?
                        }
                        (JoinFamily::Member { shape }, OutputMode::Join { kind, right_attrs }) => {
                            MemberHashTable::probe_batch(
                                member_tables,
                                *kind,
                                lvar,
                                rvar,
                                shape,
                                residual.as_ref(),
                                right_attrs,
                                (&chunk).into(),
                                &ev,
                                &mut env,
                                &mut stats,
                            )?
                        }
                        (JoinFamily::Member { shape }, OutputMode::Nest { rfunc, as_attr }) => {
                            MemberHashTable::probe_nest_batch(
                                member_tables,
                                lvar,
                                rvar,
                                shape,
                                residual.as_ref(),
                                rfunc.as_ref(),
                                as_attr,
                                (&chunk).into(),
                                &ev,
                                &mut env,
                                &mut stats,
                            )?
                        }
                    };
                    Ok((out, stats))
                }) as WorkerTask<'_, Value>
            })
            .collect();
        let probe_results = pool_run(probe_tasks);
        let gathered = gather(probe_results, &mut folded);
        ctx.stats.merge(&folded);
        Ok(gathered?.into_iter().flatten().collect())
    }
}

/// A built partition table of either join family.
enum Tables {
    Equi(JoinHashTable),
    Member(MemberHashTable),
}

/// Splits the heterogeneous partition list into the two homogeneous
/// slices the probe entry points take (exactly one of them is
/// non-empty).
fn split_tables(tables: Vec<Tables>) -> (Vec<JoinHashTable>, Vec<MemberHashTable>) {
    let mut equi = Vec::new();
    let mut member = Vec::new();
    for t in tables {
        match t {
            Tables::Equi(t) => equi.push(t),
            Tables::Member(t) => member.push(t),
        }
    }
    (equi, member)
}

impl Operator for ParallelHashJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.buf.is_none() {
            let rows = self.execute(ctx)?;
            self.buf = Some(Buffered::new(rows));
        }
        Ok(self
            .buf
            .as_mut()
            .expect("joined above")
            .next_chunk(BatchKind::Row))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::operator::BATCH_SIZE;
    use crate::plan::{Planner, PlannerConfig};
    use oodb_adl::dsl::*;
    use oodb_adl::expr::JoinKind;
    use oodb_catalog::fixtures::{supplier_part_catalog, supplier_part_db};
    use oodb_catalog::Database;
    use oodb_value::{Oid, Tuple};

    /// A PART extent big enough to span many batches.
    fn big_part_db(n: usize) -> Database {
        let mut db = Database::new(supplier_part_catalog()).unwrap();
        for i in 0..n {
            db.insert(
                "PART",
                Tuple::from_pairs([
                    ("pid", Value::Oid(Oid(1_000_000 + i as u64))),
                    ("pname", Value::str(&format!("part-{i}"))),
                    ("price", Value::Int((i % 97) as i64)),
                    ("color", Value::str(if i % 3 == 0 { "red" } else { "blue" })),
                ]),
            )
            .unwrap();
        }
        db
    }

    fn config(dop: usize) -> PlannerConfig {
        PlannerConfig {
            parallelism: dop,
            parallel_threshold: 0,
            ..Default::default()
        }
    }

    #[test]
    fn segment_scan_recognizes_per_row_chains() {
        let seg = PhysPlan::Filter {
            var: "p".into(),
            pred: lt(var("p").field("price"), int(50)),
            input: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["pid".into(), "price".into()],
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        assert_eq!(segment_scan(&seg).map(|n| n.as_ref()), Some("PART"));
        // a join is not a segment
        let join = PhysPlan::ProductOp {
            left: Box::new(PhysPlan::Scan("PART".into())),
            right: Box::new(PhysPlan::Scan("SUPPLIER".into())),
        };
        assert!(segment_scan(&join).is_none());
    }

    #[test]
    fn round_robin_exchange_matches_serial_rows_and_stats() {
        let n = 3 * BATCH_SIZE + 17;
        let db = big_part_db(n);
        let e = select("p", lt(var("p").field("price"), int(50)), table("PART"));

        let serial_plan = Planner::with_config(&db, config(1)).plan(&e).unwrap();
        let mut serial = Stats::new();
        let want = serial_plan.execute_streaming(&mut serial).unwrap();

        for dop in [2usize, 3, 4, 7] {
            let plan = Planner::with_config(&db, config(dop)).plan(&e).unwrap();
            assert!(
                matches!(plan.phys, PhysPlan::Exchange { .. }),
                "dop {dop} plan not exchanged:\n{}",
                plan.explain()
            );
            let mut stats = Stats::new();
            let got = plan.execute_streaming(&mut stats).unwrap();
            assert_eq!(got, want, "dop {dop}");
            assert_eq!(stats.rows_scanned, serial.rows_scanned, "dop {dop}");
            assert_eq!(stats.predicate_evals, serial.predicate_evals, "dop {dop}");
            assert_eq!(
                stats.operator_rows_by_label(),
                serial.operator_rows_by_label(),
                "dop {dop} operator profile diverged"
            );
        }
    }

    #[test]
    fn more_workers_than_batches_leaves_idle_workers_harmless() {
        let db = big_part_db(10); // a single batch
        let e = select("p", lt(var("p").field("price"), int(5)), table("PART"));
        let plan = Planner::with_config(&db, config(8)).plan(&e).unwrap();
        let mut stats = Stats::new();
        let got = plan.execute_streaming(&mut stats).unwrap();
        assert_eq!(got.as_set().unwrap().len(), 5);
        assert_eq!(stats.rows_scanned, 10);
    }

    #[test]
    fn exchange_enforces_the_operator_protocol() {
        // Round-robin exchanges skip the instrumentation shim, so they
        // must enforce open → next_batch* → close themselves: a created
        // or closed exchange errors instead of silently re-running the
        // whole worker fan-out (and re-counting its work).
        let db = big_part_db(2 * BATCH_SIZE);
        let e = select("p", lt(var("p").field("price"), int(50)), table("PART"));
        let plan = Planner::with_config(&db, config(4)).plan(&e).unwrap();
        assert!(matches!(plan.phys, PhysPlan::Exchange { .. }));
        let mut stats = Stats::new();
        let mut ctx = ExecCtx {
            ev: Evaluator::new(&db),
            env: Env::new(),
            stats: &mut stats,
            budget: MemoryBudget::unbounded(),
            batch_kind: BatchKind::from_env(),
            vectorize: true,
            timing: true,
        };
        let mut op = plan.phys.compile();
        assert!(matches!(
            op.next_batch(&mut ctx),
            Err(EvalError::OperatorProtocol(_))
        ));
        op.open(&mut ctx).unwrap();
        let mut rows = 0usize;
        while let Some(b) = op.next_batch(&mut ctx).unwrap() {
            rows += b.len();
        }
        assert!(rows > 0);
        let scanned = ctx.stats.rows_scanned;
        // exhausted streams are fused — no re-execution, no re-counting
        assert!(op.next_batch(&mut ctx).unwrap().is_none());
        assert_eq!(ctx.stats.rows_scanned, scanned);
        op.close(&mut ctx);
        assert!(matches!(
            op.next_batch(&mut ctx),
            Err(EvalError::OperatorProtocol(_))
        ));
        assert_eq!(
            ctx.stats.rows_scanned, scanned,
            "close misuse re-ran workers"
        );
    }

    #[test]
    fn parallel_hash_join_matches_serial_for_every_kind() {
        let db = supplier_part_db();
        for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti] {
            let e = Expr::Join {
                kind,
                lvar: "s".into(),
                rvar: "d".into(),
                pred: Box::new(eq(var("s").field("eid"), var("d").field("supplier"))),
                left: Box::new(project(&["eid", "sname"], table("SUPPLIER"))),
                right: Box::new(project(&["did", "supplier"], table("DELIVERY"))),
            };
            let serial_plan = Planner::with_config(&db, config(1)).plan(&e).unwrap();
            let mut serial = Stats::new();
            let want = serial_plan.execute_streaming(&mut serial).unwrap();
            let plan = Planner::with_config(&db, config(4)).plan(&e).unwrap();
            let mut stats = Stats::new();
            let got = plan.execute_streaming(&mut stats).unwrap();
            assert_eq!(got, want, "kind {kind:?}");
            assert_eq!(
                stats.hash_build_rows, serial.hash_build_rows,
                "kind {kind:?}"
            );
            assert_eq!(stats.hash_probes, serial.hash_probes, "kind {kind:?}");
            assert_eq!(
                stats.operator_rows_by_label(),
                serial.operator_rows_by_label(),
                "kind {kind:?}"
            );
        }
    }

    #[test]
    fn parallel_member_join_and_nestjoins_match_serial() {
        let db = supplier_part_db();
        let queries = vec![
            // membership semijoin (Query 5 shape)
            semijoin(
                "s",
                "p",
                and(
                    member(var("p").field("pid"), var("s").field("parts")),
                    eq(var("p").field("color"), str_lit("red")),
                ),
                table("SUPPLIER"),
                table("PART"),
            ),
            // membership antijoin
            antijoin(
                "s",
                "p",
                member(var("p").field("pid"), var("s").field("parts")),
                table("SUPPLIER"),
                table("PART"),
            ),
            // LeftInRightSet membership
            semijoin(
                "p",
                "s",
                member(var("p").field("pid"), var("s").field("parts")),
                table("PART"),
                table("SUPPLIER"),
            ),
            // membership nestjoin (Query 6 shape)
            nestjoin_with(
                "s",
                "p",
                member(var("p").field("pid"), var("s").field("parts")),
                var("p").field("pname"),
                "pnames",
                table("SUPPLIER"),
                table("PART"),
            ),
            // equi nestjoin
            nestjoin(
                "s",
                "d",
                eq(var("s").field("eid"), var("d").field("supplier")),
                "ds",
                table("SUPPLIER"),
                table("DELIVERY"),
            ),
        ];
        for e in queries {
            let mut serial = Stats::new();
            let want = Planner::with_config(&db, config(1))
                .plan(&e)
                .unwrap()
                .execute_streaming(&mut serial)
                .unwrap();
            for dop in [2usize, 4, 7] {
                let plan = Planner::with_config(&db, config(dop)).plan(&e).unwrap();
                let mut stats = Stats::new();
                let got = plan.execute_streaming(&mut stats).unwrap();
                assert_eq!(got, want, "dop {dop}: {e}");
                assert_eq!(stats.hash_build_rows, serial.hash_build_rows, "{e}");
                assert_eq!(stats.hash_probes, serial.hash_probes, "{e}");
            }
        }
    }

    #[test]
    fn worker_errors_surface_deterministically() {
        // a predicate that errors on some rows: field access on an int
        let n = 2 * BATCH_SIZE;
        let db = big_part_db(n);
        let e = select(
            "p",
            lt(var("p").field("price").field("oops"), int(50)),
            table("PART"),
        );
        let serial_err = Planner::with_config(&db, config(1))
            .plan(&e)
            .unwrap()
            .execute_streaming(&mut Stats::new())
            .unwrap_err();
        let parallel_err = Planner::with_config(&db, config(4))
            .plan(&e)
            .unwrap()
            .execute_streaming(&mut Stats::new())
            .unwrap_err();
        // both fail with the same value-level error (no panic, no hang)
        assert_eq!(
            std::mem::discriminant(&serial_err),
            std::mem::discriminant(&parallel_err),
            "serial {serial_err} vs parallel {parallel_err}"
        );
    }

    #[test]
    fn split_chunks_is_exhaustive_and_contiguous() {
        let rows: Vec<Value> = (0..10).map(Value::Int).collect();
        let chunks = split_chunks(rows.clone(), 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4); // 4, 3, 3
        let flat: Vec<Value> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, rows);
        // more workers than rows
        let chunks = split_chunks((0..2).map(Value::Int).collect(), 5);
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 2);
    }
}

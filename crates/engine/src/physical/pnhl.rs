//! The Partitioned Nested-Hashed-Loops algorithm (\[DeLa92\], paper §6.2).
//!
//! Materializes a set-valued attribute by joining its elements with a flat
//! build table under a memory budget:
//!
//! > "The algorithm builds a hash table for those segments of operand
//! > PART that fit into main memory and then probes operand SUPPLIER
//! > against each segment of the hash table, thus building partial
//! > results. Partial results are merged in the second phase of the
//! > algorithm. […] in the PNHL algorithm, only the flat table can be the
//! > build table."
//!
//! The memory budget is modeled as a maximum number of build rows per
//! segment; each segment incurs a full probe pass over the outer operand,
//! exactly like the disk-constrained original. Compared with the
//! unnest–join–nest method it avoids duplicating the outer tuples'
//! remaining attributes and the final restructuring.

use super::MatchKeys;
use crate::eval::{Env, EvalError, Evaluator};
use crate::stats::Stats;
use oodb_value::fxhash::FxHashMap;
use oodb_value::{Name, Set, Tuple, Value};

/// Runs PNHL: for every outer tuple `x`, replaces `x.set_attr` by the set
/// of inner tuples `y` with `ikey(y) = ekey(e)` for some `e ∈ x.set_attr`.
#[allow(clippy::too_many_arguments)]
pub fn pnhl_materialize(
    outer: &Set,
    set_attr: &Name,
    inner: &Set,
    keys: &MatchKeys,
    budget: usize,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Value, EvalError> {
    Ok(Value::Set(Set::from_values(pnhl_rows(
        outer, set_attr, inner, keys, budget, ev, env, stats,
    )?)))
}

/// [`pnhl_materialize`] returning the output rows unwrapped, so the
/// streaming pipeline can emit them in batches after the (inherently
/// blocking) partitioned probe phases.
#[allow(clippy::too_many_arguments)]
pub fn pnhl_rows(
    outer: &Set,
    set_attr: &Name,
    inner: &Set,
    keys: &MatchKeys,
    budget: usize,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Vec<Value>, EvalError> {
    assert!(budget > 0, "PNHL budget must be positive");
    let inner_rows: Vec<&Value> = inner.iter().collect();

    // Phase 1: per segment of the (flat) build table, probe ALL outer
    // tuples and accumulate partial results indexed by outer position.
    let mut partial: Vec<Vec<Value>> = vec![Vec::new(); outer.len()];
    for segment in inner_rows.chunks(budget) {
        stats.partitions += 1;
        let mut table: FxHashMap<Value, Vec<&Value>> = FxHashMap::default();
        for y in segment {
            env.push(&keys.inner_var, (*y).clone());
            let k = ev.eval(&keys.inner_key, env, stats);
            env.pop();
            stats.hash_build_rows += 1;
            table.entry(k?).or_default().push(*y);
        }
        for (xi, x) in outer.iter().enumerate() {
            let elems = x.as_tuple()?.field(set_attr)?.as_set()?.clone();
            for e in elems.iter() {
                env.push(&keys.elem_var, e.clone());
                let k = ev.eval(&keys.elem_key, env, stats);
                env.pop();
                stats.hash_probes += 1;
                if let Some(matches) = table.get(&k?) {
                    partial[xi].extend(matches.iter().map(|y| (*y).clone()));
                }
            }
        }
    }

    // Phase 2: merge partial results per outer tuple.
    let mut out = Vec::with_capacity(outer.len());
    for (xi, x) in outer.iter().enumerate() {
        let merged = Set::from_values(std::mem::take(&mut partial[xi]));
        let t = x
            .as_tuple()?
            .except(&[(set_attr.clone(), Value::Set(merged))])
            .map_err(EvalError::Value)?;
        out.push(Value::Tuple(t));
    }
    Ok(out)
}

/// The unnest–join–nest alternative PNHL is measured against (§6.2):
/// conceptually `ν(μ(outer) ⋈ inner)`; implemented here directly for the
/// benchmark comparison. Note its structural defect: outer tuples whose
/// set is empty are *lost* by the unnest (and a nest cannot restore them),
/// so this helper additionally re-attaches them — the bookkeeping PNHL
/// never needs.
///
/// Unlike PNHL it ignores the memory budget: the whole flat table is
/// built at once, every outer element probes exactly one table, and the
/// unnest duplicates the outer tuple per element (the `loop_iterations`
/// it pays that PNHL does not). The cost-based planner picks it when a
/// tight budget would force PNHL through 3+ probe passes.
#[allow(clippy::too_many_arguments)]
pub fn unnest_join_nest(
    outer: &Set,
    set_attr: &Name,
    inner: &Set,
    keys: &MatchKeys,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Value, EvalError> {
    Ok(Value::Set(Set::from_values(unnest_join_rows(
        outer, set_attr, inner, keys, ev, env, stats,
    )?)))
}

/// [`unnest_join_nest`] returning the output rows unwrapped (streaming
/// pipeline entry point, mirroring [`pnhl_rows`]).
#[allow(clippy::too_many_arguments)]
pub fn unnest_join_rows(
    outer: &Set,
    set_attr: &Name,
    inner: &Set,
    keys: &MatchKeys,
    ev: &Evaluator<'_>,
    env: &mut Env,
    stats: &mut Stats,
) -> Result<Vec<Value>, EvalError> {
    // Build once (no memory budget — the comparison point).
    let mut table: FxHashMap<Value, Vec<&Value>> = FxHashMap::default();
    for y in inner.iter() {
        env.push(&keys.inner_var, y.clone());
        let k = ev.eval(&keys.inner_key, env, stats);
        env.pop();
        stats.hash_build_rows += 1;
        table.entry(k?).or_default().push(y);
    }
    // Unnest: one flat record per (outer, element) — this duplicates every
    // other outer attribute, which is PNHL's claimed saving.
    let mut out = Vec::with_capacity(outer.len());
    for x in outer.iter() {
        let xt = x.as_tuple()?;
        let elems = xt.field(set_attr)?.as_set()?.clone();
        let mut group: Vec<Value> = Vec::new();
        for e in elems.iter() {
            // the flattened record (materialized to model unnest cost)
            let _flat: Tuple = xt.without(set_attr);
            stats.loop_iterations += 1;
            env.push(&keys.elem_var, e.clone());
            let k = ev.eval(&keys.elem_key, env, stats);
            env.pop();
            stats.hash_probes += 1;
            if let Some(matches) = table.get(&k?) {
                group.extend(matches.iter().map(|y| (*y).clone()));
            }
        }
        // Nest phase (group-by on all non-set attributes).
        let t = xt
            .except(&[(set_attr.clone(), Value::Set(Set::from_values(group)))])
            .map_err(EvalError::Value)?;
        out.push(Value::Tuple(t));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_db;

    fn keys() -> MatchKeys {
        MatchKeys {
            elem_var: "e".into(),
            elem_key: var("e"),
            inner_var: "p".into(),
            inner_key: var("p").field("pid"),
        }
    }

    fn materialized_parts(v: &Value, sname: &str) -> Set {
        v.as_set()
            .unwrap()
            .iter()
            .find(|r| r.as_tuple().unwrap().get("sname") == Some(&Value::str(sname)))
            .unwrap()
            .as_tuple()
            .unwrap()
            .get("parts")
            .unwrap()
            .as_set()
            .unwrap()
            .clone()
    }

    #[test]
    fn pnhl_materializes_part_tuples() {
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let outer = db
            .table("SUPPLIER")
            .unwrap()
            .as_set_value()
            .into_set()
            .unwrap();
        let inner = db.table("PART").unwrap().as_set_value().into_set().unwrap();
        let mut env = Env::new();
        let mut stats = Stats::new();
        let v = pnhl_materialize(
            &outer,
            &"parts".into(),
            &inner,
            &keys(),
            100,
            &ev,
            &mut env,
            &mut stats,
        )
        .unwrap();
        // s1 gets its three part OBJECTS
        let s1_parts = materialized_parts(&v, "s1");
        assert_eq!(s1_parts.len(), 3);
        assert!(s1_parts
            .iter()
            .all(|p| p.as_tuple().unwrap().get("pname").is_some()));
        // s4 keeps an empty set; s5's dangling pointer just finds nothing
        assert!(materialized_parts(&v, "s4").is_empty());
        assert_eq!(materialized_parts(&v, "s5").len(), 1);
        assert_eq!(stats.partitions, 1);
    }

    #[test]
    fn smaller_budget_means_more_segments_same_answer() {
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let outer = db
            .table("SUPPLIER")
            .unwrap()
            .as_set_value()
            .into_set()
            .unwrap();
        let inner = db.table("PART").unwrap().as_set_value().into_set().unwrap();
        let mut env = Env::new();

        let mut wide = Stats::new();
        let v_wide = pnhl_materialize(
            &outer,
            &"parts".into(),
            &inner,
            &keys(),
            100,
            &ev,
            &mut env,
            &mut wide,
        )
        .unwrap();
        let mut tight = Stats::new();
        let v_tight = pnhl_materialize(
            &outer,
            &"parts".into(),
            &inner,
            &keys(),
            2,
            &ev,
            &mut env,
            &mut tight,
        )
        .unwrap();
        assert_eq!(v_wide, v_tight);
        assert_eq!(wide.partitions, 1);
        assert_eq!(tight.partitions, 4); // ⌈7 / 2⌉
        assert!(tight.hash_probes > wide.hash_probes);
    }

    #[test]
    fn unnest_join_nest_agrees_with_pnhl() {
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let outer = db
            .table("SUPPLIER")
            .unwrap()
            .as_set_value()
            .into_set()
            .unwrap();
        let inner = db.table("PART").unwrap().as_set_value().into_set().unwrap();
        let mut env = Env::new();
        let mut s1 = Stats::new();
        let a = pnhl_materialize(
            &outer,
            &"parts".into(),
            &inner,
            &keys(),
            64,
            &ev,
            &mut env,
            &mut s1,
        )
        .unwrap();
        let mut s2 = Stats::new();
        let b = unnest_join_nest(
            &outer,
            &"parts".into(),
            &inner,
            &keys(),
            &ev,
            &mut env,
            &mut s2,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let outer = db
            .table("SUPPLIER")
            .unwrap()
            .as_set_value()
            .into_set()
            .unwrap();
        let inner = db.table("PART").unwrap().as_set_value().into_set().unwrap();
        let mut env = Env::new();
        let mut stats = Stats::new();
        let _ = pnhl_materialize(
            &outer,
            &"parts".into(),
            &inner,
            &keys(),
            0,
            &ev,
            &mut env,
            &mut stats,
        );
    }
}

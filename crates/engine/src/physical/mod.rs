//! Set-oriented physical operators.
//!
//! "It is better to transform nested queries into join queries, because
//! join queries can be implemented in many different ways (set-oriented
//! query processing)" — paper §7. This module provides those many ways:
//!
//! * [`hashjoin`] — hash implementations of `⋈`, `⋉`, `▷`, `⟕`, the
//!   nestjoin `⊣`, and membership variants for predicates like
//!   `p.pid ∈ s.parts`;
//! * [`sortmerge`] — sort-merge join;
//! * [`pnhl`] — the Partitioned Nested-Hashed-Loops algorithm of \[DeLa92\]
//!   for materializing set-valued attributes under a memory budget (§6.2);
//! * [`assembly`] — the pointer-based materialize operator of \[BlMG93\]
//!   (§6.2), using the catalog's oid indexes;
//! * nested-loop fallbacks for non-equi predicates.
//!
//! [`PhysPlan`] is the operator tree; [`PhysPlan::execute_on`] runs it.

pub mod assembly;
pub mod columnar;
pub mod exchange;
pub mod hashjoin;
pub mod operator;
pub mod pnhl;
pub mod sortmerge;
pub(crate) mod spill_exec;

use crate::eval::{aggregate, nest_set, unnest_set, Env, EvalError, Evaluator};
use crate::stats::Stats;
use oodb_adl::expr::{AggOp, Expr, JoinKind, SetOp};
use oodb_catalog::Database;
use oodb_value::{Name, Set, Value};

/// How an [`PhysPlan::Exchange`] distributes its input across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Each worker executes a clone of the input segment with every base
    /// scan strided round-robin over batch boundaries; each input batch
    /// is processed by exactly one worker (morsel-driven parallelism for
    /// per-row pipelines: filters, maps, projections, unnests,
    /// assembly).
    RoundRobin,
    /// Hash-partitioned parallel build **and** probe for the hash join
    /// family: build rows are routed by join-key hash to per-worker
    /// partition tables (built concurrently), and probe rows are split
    /// across workers, each probe key consulting exactly its owning
    /// partition. The exchange's input must be a
    /// `HashJoin`/`HashNestJoin`/`HashMemberJoin`/`MemberNestJoin` node.
    Hash,
}

/// How a materialization operator matches set elements to inner tuples.
#[derive(Debug, Clone)]
pub struct MatchKeys {
    /// Variable bound to one element of the set-valued attribute.
    pub elem_var: Name,
    /// Key over the element (`ekey(e)`).
    pub elem_key: Expr,
    /// Variable bound to an inner (build) tuple.
    pub inner_var: Name,
    /// Key over the inner tuple (`ikey(y)`).
    pub inner_key: Expr,
}

/// A physical operator tree.
///
/// Operators own the ADL sub-expressions they evaluate per tuple
/// (predicates, keys, map bodies); those are interpreted by the reference
/// [`Evaluator`] under the operator's variable bindings, so arbitrarily
/// complex (even nested) parameters work inside any physical operator.
#[derive(Debug, Clone)]
pub enum PhysPlan {
    /// Base table scan.
    Scan(Name),
    /// A constant.
    Literal(Value),
    /// Fallback: interpret an expression with the reference evaluator.
    Eval(Expr),
    /// `σ` — per-tuple predicate filter.
    Filter {
        /// Bound variable.
        var: Name,
        /// Predicate.
        pred: Expr,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `α` — per-tuple function application.
    MapOp {
        /// Bound variable.
        var: Name,
        /// Body.
        body: Expr,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `π`.
    ProjectOp {
        /// Retained attributes.
        attrs: Vec<Name>,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `ρ`.
    RenameOp {
        /// `(old, new)` pairs.
        pairs: Vec<(Name, Name)>,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `μ`.
    UnnestOp {
        /// Attribute to unnest.
        attr: Name,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `ν`.
    NestOp {
        /// Collected attributes.
        attrs: Vec<Name>,
        /// New set-valued attribute.
        as_attr: Name,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `⋃`.
    FlattenOp {
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `∪ ∩ −`.
    SetOpNode {
        /// Operator.
        op: SetOp,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Aggregate.
    AggNode {
        /// Aggregate function.
        op: AggOp,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// `let` — uncorrelated subquery hoisting: `value` runs once.
    LetOp {
        /// Bound variable.
        var: Name,
        /// Value plan.
        value: Box<PhysPlan>,
        /// Body plan (may reference `var`).
        body: Box<PhysPlan>,
    },
    /// Extended Cartesian product (block nested loop).
    ProductOp {
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Hash join on extracted equi-keys.
    HashJoin {
        /// Join kind (`⋈`, `⋉`, `▷`, `⟕`).
        kind: JoinKind,
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// Left key expressions (conjunctive equi-keys).
        lkeys: Vec<Expr>,
        /// Right key expressions.
        rkeys: Vec<Expr>,
        /// Residual predicate checked after key match.
        residual: Option<Expr>,
        /// Right-hand attribute names (outer-join padding schema).
        right_attrs: Vec<Name>,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Hash join for membership predicates `rkey(y) ∈ lset(x)` (e.g.
    /// `p.pid ∈ s.parts` of Example Query 5) or `lkey(x) ∈ rset(y)`.
    HashMemberJoin {
        /// Join kind.
        kind: JoinKind,
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// The membership shape.
        shape: hashjoin::MemberShape,
        /// Residual predicate.
        residual: Option<Expr>,
        /// Right-hand attribute names (outer-join padding schema).
        right_attrs: Vec<Name>,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Index nested-loop join: the right operand is an indexed extent;
    /// each left tuple probes the secondary hash index (§6's "index
    /// nested-loop join").
    IndexNLJoin {
        /// Join kind.
        kind: JoinKind,
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// Key expression over the left variable.
        lkey: Expr,
        /// Indexed attribute of the right extent.
        attr: Name,
        /// The right extent name.
        extent: Name,
        /// Residual predicate.
        residual: Option<Expr>,
        /// Right-hand attribute names (outer-join padding schema).
        right_attrs: Vec<Name>,
        /// Left plan.
        left: Box<PhysPlan>,
    },
    /// Nested-loop join (fallback for arbitrary predicates).
    NLJoin {
        /// Join kind.
        kind: JoinKind,
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// Full predicate.
        pred: Expr,
        /// Right-hand attribute names (outer-join padding schema).
        right_attrs: Vec<Name>,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Sort-merge implementation of the regular equi-join.
    SortMergeJoin {
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// Left key.
        lkeys: Vec<Expr>,
        /// Right key.
        rkeys: Vec<Expr>,
        /// Residual predicate.
        residual: Option<Expr>,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Hash nestjoin `⊣` — grouping during join (paper §6.1); dangling
    /// left tuples keep an empty group.
    HashNestJoin {
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// Left keys.
        lkeys: Vec<Expr>,
        /// Right keys.
        rkeys: Vec<Expr>,
        /// Residual predicate.
        residual: Option<Expr>,
        /// Function over matching right tuples (`None` = identity).
        rfunc: Option<Expr>,
        /// New set-valued attribute.
        as_attr: Name,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Membership-keyed nestjoin (e.g. Example Query 6's
    /// `p.pid ∈ s.parts`).
    MemberNestJoin {
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// The membership shape.
        shape: hashjoin::MemberShape,
        /// Residual predicate.
        residual: Option<Expr>,
        /// Function over matching right tuples.
        rfunc: Option<Expr>,
        /// New set-valued attribute.
        as_attr: Name,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// Nested-loop nestjoin (fallback).
    NLNestJoin {
        /// Left variable.
        lvar: Name,
        /// Right variable.
        rvar: Name,
        /// Predicate.
        pred: Expr,
        /// Function over matching right tuples.
        rfunc: Option<Expr>,
        /// New set-valued attribute.
        as_attr: Name,
        /// Left plan.
        left: Box<PhysPlan>,
        /// Right plan.
        right: Box<PhysPlan>,
    },
    /// PNHL (\[DeLa92\]): materialize a set-valued attribute by joining its
    /// elements with a flat build table under a memory budget.
    Pnhl {
        /// Outer plan (complex tuples with the set-valued attribute).
        outer: Box<PhysPlan>,
        /// The set-valued attribute being materialized.
        set_attr: Name,
        /// Inner (flat, build-side) plan.
        inner: Box<PhysPlan>,
        /// Element/inner key pair.
        keys: MatchKeys,
        /// Maximum build-table rows per segment — "segments of the operand
        /// that fit into main memory".
        budget: usize,
    },
    /// Unnest–join–nest materialization (§6.2's third strategy): builds
    /// the whole flat table once and probes every set element against it,
    /// paying tuple duplication instead of PNHL's per-segment passes.
    /// The cost-based planner picks it when the memory budget would force
    /// PNHL through many probe passes.
    UnnestJoin {
        /// Outer plan (complex tuples with the set-valued attribute).
        outer: Box<PhysPlan>,
        /// The set-valued attribute being materialized.
        set_attr: Name,
        /// Inner (flat, build-side) plan.
        inner: Box<PhysPlan>,
        /// Element/inner key pair.
        keys: MatchKeys,
    },
    /// Assembly (\[BlMG93\]): pointer-based materialization of oid-valued
    /// (or set-of-oid-valued) attributes through the extent's oid index.
    Assemble {
        /// Input plan.
        input: Box<PhysPlan>,
        /// The oid-carrying attribute.
        attr: Name,
        /// Referenced class.
        class: Name,
        /// Whether `attr` is a single oid or a set of oids.
        set_valued: bool,
    },
    /// Exchange: evaluates `input` with `dop` workers under the given
    /// [`Partitioning`] (see [`exchange`]). Semantically the identity —
    /// the materialized executor runs the input serially, and the
    /// streaming pipeline guarantees canonical-set-identical results at
    /// every degree of parallelism.
    Exchange {
        /// Work distribution strategy.
        partitioning: Partitioning,
        /// Degree of parallelism (worker count).
        dop: usize,
        /// The parallelized input plan.
        input: Box<PhysPlan>,
    },
}

impl PhysPlan {
    /// Executes the plan against `db` through the streaming
    /// [`operator`] pipeline (the default execution path): rows flow in
    /// batches, only pipeline breakers materialize, and
    /// [`Stats::operators`] records per-operator rows/batches.
    pub fn execute_streaming_on(
        &self,
        db: &Database,
        stats: &mut Stats,
    ) -> Result<Value, EvalError> {
        operator::run(self, db, stats)
    }

    /// [`PhysPlan::execute_streaming_on`] under an explicit
    /// [`MemoryBudget`](oodb_spill::MemoryBudget) instead of the
    /// process default.
    pub fn execute_streaming_budgeted(
        &self,
        db: &Database,
        stats: &mut Stats,
        budget: oodb_spill::MemoryBudget,
    ) -> Result<Value, EvalError> {
        operator::run_budgeted(self, db, stats, budget)
    }

    /// [`PhysPlan::execute_streaming_budgeted`] with the batch layout
    /// pinned as well — how [`crate::plan::Plan`] threads
    /// `PlannerConfig::batch_kind` into execution.
    pub fn execute_streaming_configured(
        &self,
        db: &Database,
        stats: &mut Stats,
        budget: oodb_spill::MemoryBudget,
        batch_kind: oodb_value::BatchKind,
    ) -> Result<Value, EvalError> {
        operator::run_configured(self, db, stats, budget, batch_kind)
    }

    /// [`PhysPlan::execute_streaming_configured`] with the
    /// vectorization switch pinned as well (instead of read from
    /// `OODB_VECTORIZE`) — how [`crate::plan::Plan`] threads
    /// `PlannerConfig::vectorize` into execution.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_streaming_full(
        &self,
        db: &Database,
        stats: &mut Stats,
        budget: oodb_spill::MemoryBudget,
        batch_kind: oodb_value::BatchKind,
        vectorize: bool,
    ) -> Result<Value, EvalError> {
        operator::run_full(self, db, stats, budget, batch_kind, vectorize)
    }

    /// [`PhysPlan::execute_streaming_full`] with the per-operator
    /// timing switch pinned as well (instead of read from
    /// `OODB_TIMING`) — how [`crate::plan::Plan`] threads
    /// `PlannerConfig::timing` into execution.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_streaming_traced(
        &self,
        db: &Database,
        stats: &mut Stats,
        budget: oodb_spill::MemoryBudget,
        batch_kind: oodb_value::BatchKind,
        vectorize: bool,
        timing: bool,
    ) -> Result<Value, EvalError> {
        operator::run_traced(self, db, stats, budget, batch_kind, vectorize, timing)
    }

    /// Executes the plan against `db` with whole-set materialization at
    /// every operator boundary (the reference set-at-a-time semantics
    /// the streaming pipeline is checked against).
    pub fn execute_on(&self, db: &Database, stats: &mut Stats) -> Result<Value, EvalError> {
        let ev = Evaluator::new(db);
        let mut env = Env::new();
        let v = self.exec(&ev, &mut env, stats)?;
        if let Value::Set(s) = &v {
            stats.output_rows += s.len() as u64;
        }
        Ok(v)
    }

    /// Executes under an environment (used by `LetOp` bodies and tests).
    pub fn exec(
        &self,
        ev: &Evaluator<'_>,
        env: &mut Env,
        stats: &mut Stats,
    ) -> Result<Value, EvalError> {
        match self {
            PhysPlan::Scan(name) => {
                let t = ev
                    .db()
                    .table(name)
                    .ok_or_else(|| EvalError::UnknownTable(name.clone()))?;
                stats.rows_scanned += t.len() as u64;
                Ok(t.as_set_value())
            }
            PhysPlan::Literal(v) => Ok(v.clone()),
            PhysPlan::Eval(e) => ev.eval(e, env, stats),
            PhysPlan::Filter { var, pred, input } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                let mut out = Vec::with_capacity(s.len());
                for elem in s {
                    stats.predicate_evals += 1;
                    env.push(var, elem.clone());
                    let keep = ev.eval(pred, env, stats);
                    env.pop();
                    if keep?.as_bool()? {
                        out.push(elem);
                    }
                }
                Ok(Value::Set(Set::from_values(out)))
            }
            PhysPlan::MapOp { var, body, input } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                let mut out = Vec::with_capacity(s.len());
                for elem in s {
                    stats.predicate_evals += 1;
                    env.push(var, elem);
                    let r = ev.eval(body, env, stats);
                    env.pop();
                    out.push(r?);
                }
                Ok(Value::Set(Set::from_values(out)))
            }
            PhysPlan::ProjectOp { attrs, input } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                let mut out = Vec::with_capacity(s.len());
                for elem in s.iter() {
                    out.push(Value::Tuple(elem.as_tuple()?.subscript(attrs)?));
                }
                Ok(Value::Set(Set::from_values(out)))
            }
            PhysPlan::RenameOp { pairs, input } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                let mut out = Vec::with_capacity(s.len());
                for elem in s.iter() {
                    let mut t = elem.as_tuple()?.clone();
                    for (old, new) in pairs {
                        t = t.rename(old, new)?;
                    }
                    out.push(Value::Tuple(t));
                }
                Ok(Value::Set(Set::from_values(out)))
            }
            PhysPlan::UnnestOp { attr, input } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                unnest_set(&s, attr)
            }
            PhysPlan::NestOp {
                attrs,
                as_attr,
                input,
            } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                nest_set(&s, attrs, as_attr)
            }
            PhysPlan::FlattenOp { input } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                Ok(Value::Set(s.flatten()?))
            }
            PhysPlan::SetOpNode { op, left, right } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                Ok(Value::Set(match op {
                    SetOp::Union => l.union(&r),
                    SetOp::Intersect => l.intersect(&r),
                    SetOp::Difference => l.difference(&r),
                }))
            }
            PhysPlan::AggNode { op, input } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                aggregate(*op, &s)
            }
            PhysPlan::LetOp { var, value, body } => {
                let v = value.exec(ev, env, stats)?;
                env.push(var, v);
                let r = body.exec(ev, env, stats);
                env.pop();
                r
            }
            PhysPlan::ProductOp { left, right } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                let mut out = Vec::with_capacity(l.len() * r.len());
                for x in l.iter() {
                    for y in r.iter() {
                        stats.loop_iterations += 1;
                        out.push(Value::Tuple(x.as_tuple()?.concat(y.as_tuple()?)?));
                    }
                }
                Ok(Value::Set(Set::from_values(out)))
            }
            PhysPlan::HashJoin {
                kind,
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                right_attrs,
                left,
                right,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                hashjoin::hash_join(
                    *kind,
                    lvar,
                    rvar,
                    lkeys,
                    rkeys,
                    residual.as_ref(),
                    right_attrs,
                    &l,
                    &r,
                    ev,
                    env,
                    stats,
                )
            }
            PhysPlan::HashMemberJoin {
                kind,
                lvar,
                rvar,
                shape,
                residual,
                right_attrs,
                left,
                right,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                hashjoin::member_join(
                    *kind,
                    lvar,
                    rvar,
                    shape,
                    residual.as_ref(),
                    right_attrs,
                    &l,
                    &r,
                    ev,
                    env,
                    stats,
                )
            }
            PhysPlan::IndexNLJoin {
                kind,
                lvar,
                rvar,
                lkey,
                attr,
                extent,
                residual,
                right_attrs,
                left,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                hashjoin::index_nl_join(
                    *kind,
                    lvar,
                    rvar,
                    lkey,
                    attr,
                    extent,
                    residual.as_ref(),
                    right_attrs,
                    &l,
                    ev,
                    env,
                    stats,
                )
            }
            PhysPlan::NLJoin {
                kind,
                lvar,
                rvar,
                pred,
                right_attrs,
                left,
                right,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                hashjoin::nl_join(*kind, lvar, rvar, pred, right_attrs, &l, &r, ev, env, stats)
            }
            PhysPlan::SortMergeJoin {
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                left,
                right,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                sortmerge::sort_merge_join(
                    lvar,
                    rvar,
                    lkeys,
                    rkeys,
                    residual.as_ref(),
                    &l,
                    &r,
                    ev,
                    env,
                    stats,
                )
            }
            PhysPlan::HashNestJoin {
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                hashjoin::hash_nestjoin(
                    lvar,
                    rvar,
                    lkeys,
                    rkeys,
                    residual.as_ref(),
                    rfunc.as_ref(),
                    as_attr,
                    &l,
                    &r,
                    ev,
                    env,
                    stats,
                )
            }
            PhysPlan::MemberNestJoin {
                lvar,
                rvar,
                shape,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                hashjoin::member_nestjoin(
                    lvar,
                    rvar,
                    shape,
                    residual.as_ref(),
                    rfunc.as_ref(),
                    as_attr,
                    &l,
                    &r,
                    ev,
                    env,
                    stats,
                )
            }
            PhysPlan::NLNestJoin {
                lvar,
                rvar,
                pred,
                rfunc,
                as_attr,
                left,
                right,
            } => {
                let l = left.exec(ev, env, stats)?.into_set()?;
                let r = right.exec(ev, env, stats)?.into_set()?;
                hashjoin::nl_nestjoin(
                    lvar,
                    rvar,
                    pred,
                    rfunc.as_ref(),
                    as_attr,
                    &l,
                    &r,
                    ev,
                    env,
                    stats,
                )
            }
            PhysPlan::Pnhl {
                outer,
                set_attr,
                inner,
                keys,
                budget,
            } => {
                let o = outer.exec(ev, env, stats)?.into_set()?;
                let i = inner.exec(ev, env, stats)?.into_set()?;
                pnhl::pnhl_materialize(&o, set_attr, &i, keys, *budget, ev, env, stats)
            }
            PhysPlan::UnnestJoin {
                outer,
                set_attr,
                inner,
                keys,
            } => {
                let o = outer.exec(ev, env, stats)?.into_set()?;
                let i = inner.exec(ev, env, stats)?.into_set()?;
                pnhl::unnest_join_nest(&o, set_attr, &i, keys, ev, env, stats)
            }
            PhysPlan::Assemble {
                input,
                attr,
                class,
                set_valued,
            } => {
                let s = input.exec(ev, env, stats)?.into_set()?;
                assembly::assemble(&s, attr, class, *set_valued, ev.db(), stats)
            }
            // The exchange is semantically the identity; the materialized
            // reference path evaluates its input serially.
            PhysPlan::Exchange { input, .. } => input.exec(ev, env, stats),
        }
    }

    /// A short operator-tree rendering for EXPLAIN-style output.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let line = self.node_line();
        let _ = writeln!(out, "{pad}{line}");
        for child in self.children() {
            child.explain_into(depth + 1, out);
        }
    }

    /// The one-line EXPLAIN rendering of this operator (no children).
    pub fn node_line(&self) -> String {
        match self {
            PhysPlan::Scan(n) => format!("Scan {n}"),
            PhysPlan::Literal(_) => "Literal".into(),
            PhysPlan::Eval(e) => format!("Eval {e}"),
            PhysPlan::Filter { pred, .. } => format!("Filter [{pred}]"),
            PhysPlan::MapOp { body, .. } => format!("Map [{body}]"),
            PhysPlan::ProjectOp { attrs, .. } => format!(
                "Project [{}]",
                attrs
                    .iter()
                    .map(|a| a.as_ref())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            PhysPlan::RenameOp { .. } => "Rename".into(),
            PhysPlan::UnnestOp { attr, .. } => format!("Unnest μ_{attr}"),
            PhysPlan::NestOp { as_attr, .. } => format!("Nest ν→{as_attr}"),
            PhysPlan::FlattenOp { .. } => "Flatten".into(),
            PhysPlan::SetOpNode { op, .. } => format!("SetOp {}", op.symbol()),
            PhysPlan::AggNode { op, .. } => format!("Agg {}", op.name()),
            PhysPlan::LetOp { var, .. } => format!("Let {var}"),
            PhysPlan::ProductOp { .. } => "Product".into(),
            PhysPlan::HashJoin { kind, .. } => format!("HashJoin {kind:?}"),
            PhysPlan::HashMemberJoin { kind, .. } => {
                format!("HashMemberJoin {kind:?}")
            }
            PhysPlan::IndexNLJoin {
                kind, extent, attr, ..
            } => {
                format!("IndexNLJoin {kind:?} on {extent}.{attr}")
            }
            PhysPlan::NLJoin { kind, .. } => format!("NLJoin {kind:?}"),
            PhysPlan::SortMergeJoin { .. } => "SortMergeJoin".into(),
            PhysPlan::HashNestJoin { as_attr, .. } => {
                format!("HashNestJoin ⊣→{as_attr}")
            }
            PhysPlan::MemberNestJoin { as_attr, .. } => {
                format!("MemberNestJoin ⊣→{as_attr}")
            }
            PhysPlan::NLNestJoin { as_attr, .. } => format!("NLNestJoin ⊣→{as_attr}"),
            PhysPlan::Pnhl {
                set_attr, budget, ..
            } => {
                format!("PNHL μ⋈ {set_attr} (budget {budget})")
            }
            PhysPlan::UnnestJoin { set_attr, .. } => {
                format!("UnnestJoin μ⋈ν {set_attr}")
            }
            PhysPlan::Assemble {
                attr,
                class,
                set_valued,
                ..
            } => {
                format!(
                    "Assemble {attr}→{class}{}",
                    if *set_valued { " (set)" } else { "" }
                )
            }
            PhysPlan::Exchange {
                partitioning, dop, ..
            } => {
                let how = match partitioning {
                    Partitioning::RoundRobin => "round-robin",
                    Partitioning::Hash => "hash",
                };
                format!("Exchange {how} dop={dop}")
            }
        }
    }

    /// The operator's direct children, in explain order.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match self {
            PhysPlan::Scan(_) | PhysPlan::Literal(_) | PhysPlan::Eval(_) => vec![],
            PhysPlan::Filter { input, .. }
            | PhysPlan::MapOp { input, .. }
            | PhysPlan::ProjectOp { input, .. }
            | PhysPlan::RenameOp { input, .. }
            | PhysPlan::UnnestOp { input, .. }
            | PhysPlan::NestOp { input, .. }
            | PhysPlan::FlattenOp { input }
            | PhysPlan::AggNode { input, .. }
            | PhysPlan::Assemble { input, .. }
            | PhysPlan::Exchange { input, .. }
            | PhysPlan::IndexNLJoin { left: input, .. } => vec![input],
            PhysPlan::SetOpNode { left, right, .. }
            | PhysPlan::ProductOp { left, right }
            | PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::HashMemberJoin { left, right, .. }
            | PhysPlan::NLJoin { left, right, .. }
            | PhysPlan::SortMergeJoin { left, right, .. }
            | PhysPlan::HashNestJoin { left, right, .. }
            | PhysPlan::MemberNestJoin { left, right, .. }
            | PhysPlan::NLNestJoin { left, right, .. } => vec![left, right],
            PhysPlan::LetOp { value, body, .. } => vec![value, body],
            PhysPlan::Pnhl { outer, inner, .. } | PhysPlan::UnnestJoin { outer, inner, .. } => {
                vec![outer, inner]
            }
        }
    }
}

#[cfg(test)]
mod plan_node_tests {
    use super::*;
    use crate::eval::Env;
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::supplier_part_db;
    use oodb_value::Value;

    fn run(plan: &PhysPlan) -> (Value, Stats) {
        let db = supplier_part_db();
        let mut stats = Stats::new();
        let v = plan.execute_on(&db, &mut stats).unwrap();
        (v, stats)
    }

    fn scan(t: &str) -> Box<PhysPlan> {
        Box::new(PhysPlan::Scan(t.into()))
    }

    #[test]
    fn filter_and_map_nodes() {
        let plan = PhysPlan::MapOp {
            var: "p".into(),
            body: var("p").field("pname"),
            input: Box::new(PhysPlan::Filter {
                var: "p".into(),
                pred: eq(var("p").field("color"), str_lit("red")),
                input: scan("PART"),
            }),
        };
        let (v, stats) = run(&plan);
        assert_eq!(v.as_set().unwrap().len(), 3);
        assert_eq!(stats.rows_scanned, 7);
        assert!(stats.predicate_evals >= 7);
    }

    #[test]
    fn project_rename_nodes() {
        let plan = PhysPlan::RenameOp {
            pairs: vec![("pname".into(), "name".into())],
            input: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["pid".into(), "pname".into()],
                input: scan("PART"),
            }),
        };
        let (v, _) = run(&plan);
        let first = v.as_set().unwrap().iter().next().unwrap();
        let t = first.as_tuple().unwrap();
        assert!(t.get("name").is_some());
        assert!(t.get("pname").is_none());
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn unnest_nest_flatten_nodes() {
        let unnested = PhysPlan::UnnestOp {
            attr: "supply".into(),
            input: scan("DELIVERY"),
        };
        let (v, _) = run(&unnested);
        assert_eq!(v.as_set().unwrap().len(), 5); // 2 + 1 + 2 supply lines
        let renested = PhysPlan::NestOp {
            attrs: vec!["part".into(), "quantity".into()],
            as_attr: "supply".into(),
            input: Box::new(unnested),
        };
        let (v2, _) = run(&renested);
        assert_eq!(v2.as_set().unwrap().len(), 3);
        let flat = PhysPlan::FlattenOp {
            input: Box::new(PhysPlan::MapOp {
                var: "s".into(),
                body: var("s").field("parts"),
                input: scan("SUPPLIER"),
            }),
        };
        let (v3, _) = run(&flat);
        // distinct referenced part oids: 11,12,13,14,17,999
        assert_eq!(v3.as_set().unwrap().len(), 6);
    }

    #[test]
    fn setop_agg_let_product_nodes() {
        let reds = PhysPlan::Filter {
            var: "p".into(),
            pred: eq(var("p").field("color"), str_lit("red")),
            input: scan("PART"),
        };
        let cheaps = PhysPlan::Filter {
            var: "p".into(),
            pred: lt(var("p").field("price"), int(8)),
            input: scan("PART"),
        };
        let inter = PhysPlan::SetOpNode {
            op: oodb_adl::SetOp::Intersect,
            left: Box::new(reds),
            right: Box::new(cheaps),
        };
        let (v, _) = run(&inter);
        assert_eq!(v.as_set().unwrap().len(), 1); // screw (red, 7)
        let count_node = PhysPlan::AggNode {
            op: AggOp::Count,
            input: scan("PART"),
        };
        assert_eq!(run(&count_node).0, Value::Int(7));
        let let_node = PhysPlan::LetOp {
            var: "n".into(),
            value: Box::new(count_node),
            body: Box::new(PhysPlan::Eval(arith(
                oodb_value::ArithOp::Add,
                var("n"),
                int(1),
            ))),
        };
        assert_eq!(run(&let_node).0, Value::Int(8));
        let prod = PhysPlan::ProductOp {
            left: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["eid".into()],
                input: scan("SUPPLIER"),
            }),
            right: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["pid".into()],
                input: scan("PART"),
            }),
        };
        assert_eq!(run(&prod).0.as_set().unwrap().len(), 35);
    }

    #[test]
    fn literal_and_eval_nodes_with_env() {
        let db = supplier_part_db();
        let ev = Evaluator::new(&db);
        let mut env = Env::new();
        env.push(&"x".into(), Value::Int(41));
        let mut stats = Stats::new();
        let plan = PhysPlan::Eval(arith(oodb_value::ArithOp::Add, var("x"), int(1)));
        let v = plan.exec(&ev, &mut env, &mut stats).unwrap();
        assert_eq!(v, Value::Int(42));
        let lit = PhysPlan::Literal(Value::str("hello"));
        assert_eq!(
            lit.exec(&ev, &mut env, &mut stats).unwrap(),
            Value::str("hello")
        );
    }

    #[test]
    fn explain_covers_every_simple_node() {
        let plan = PhysPlan::LetOp {
            var: "v".into(),
            value: Box::new(PhysPlan::AggNode {
                op: AggOp::Count,
                input: scan("PART"),
            }),
            body: Box::new(PhysPlan::FlattenOp {
                input: Box::new(PhysPlan::MapOp {
                    var: "s".into(),
                    body: var("s").field("parts"),
                    input: Box::new(PhysPlan::NestOp {
                        attrs: vec!["sname".into()],
                        as_attr: "g".into(),
                        input: Box::new(PhysPlan::UnnestOp {
                            attr: "supply".into(),
                            input: scan("DELIVERY"),
                        }),
                    }),
                }),
            }),
        };
        let text = plan.explain();
        for needle in [
            "Let v",
            "Agg count",
            "Flatten",
            "Map",
            "Nest ν→g",
            "Unnest μ_supply",
            "Scan DELIVERY",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}

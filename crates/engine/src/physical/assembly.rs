//! The materialize / assembly operator (\[BlMG93\], paper §6.2).
//!
//! "Object identifiers can be implemented either as physical or as
//! logical pointers. Implementing object identifiers as physical pointers
//! opens the way to new join implementation methods (pointer-based
//! joins). […] path expressions are represented by the operator
//! materialize […] implemented by an access algorithm called assembly, a
//! generalization of the concept of a pointer-based join."
//!
//! Our oids are physical in the relevant sense: every extent keeps an
//! oid → row index, so materializing a reference costs one hash lookup
//! instead of a join against the whole extent.

use crate::eval::EvalError;
use crate::stats::Stats;
use oodb_catalog::Database;
use oodb_value::{Name, Set, Value};

/// Replaces the oid-carrying attribute `attr` of every tuple in `s` with
/// the referenced object(s) of `class`.
///
/// * `set_valued = false`: `attr` holds one oid → it is replaced by the
///   referenced tuple. Dangling pointers raise
///   [`EvalError::DanglingPointer`].
/// * `set_valued = true`: `attr` holds a set of oids → it is replaced by
///   the set of referenced tuples; dangling pointers are silently dropped
///   (matching the semijoin semantics of element materialization, and the
///   behaviour of PNHL on the same input).
pub fn assemble(
    s: &Set,
    attr: &Name,
    class: &Name,
    set_valued: bool,
    db: &Database,
    stats: &mut Stats,
) -> Result<Value, EvalError> {
    db.catalog()
        .class(class)
        .ok_or_else(|| EvalError::UnknownClass(class.clone()))?;
    Ok(Value::Set(Set::from_values(assemble_batch(
        s.as_slice(),
        attr,
        class,
        set_valued,
        db,
        stats,
    )?)))
}

/// [`assemble`] over one batch of rows: pointer dereferencing is
/// per-tuple work, so the streaming pipeline maps batches through this
/// without materializing its input. The caller is responsible for
/// checking that `class` exists.
pub fn assemble_batch(
    batch: &[Value],
    attr: &Name,
    class: &Name,
    set_valued: bool,
    db: &Database,
    stats: &mut Stats,
) -> Result<Vec<Value>, EvalError> {
    let mut out = Vec::with_capacity(batch.len());
    for x in batch {
        let t = x.as_tuple()?;
        let v = t.field(attr)?;
        let new_val = if set_valued {
            let oids = v.as_set()?;
            let mut objs = Vec::with_capacity(oids.len());
            for o in oids.iter() {
                let oid = o.as_oid()?;
                stats.oid_lookups += 1;
                if let Some(obj) = db.deref(class, oid) {
                    objs.push(Value::Tuple(obj.clone()));
                }
            }
            Value::Set(Set::from_values(objs))
        } else {
            let oid = v.as_oid()?;
            stats.oid_lookups += 1;
            match db.deref(class, oid) {
                Some(obj) => Value::Tuple(obj.clone()),
                None => {
                    return Err(EvalError::DanglingPointer {
                        class: class.clone(),
                        oid,
                    })
                }
            }
        };
        out.push(Value::Tuple(
            t.except(&[(attr.clone(), new_val)])
                .map_err(EvalError::Value)?,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_catalog::fixtures::supplier_part_db;

    #[test]
    fn assembles_single_references() {
        let db = supplier_part_db();
        let deliveries = db
            .table("DELIVERY")
            .unwrap()
            .as_set_value()
            .into_set()
            .unwrap();
        let mut stats = Stats::new();
        let v = assemble(
            &deliveries,
            &"supplier".into(),
            &"Supplier".into(),
            false,
            &db,
            &mut stats,
        )
        .unwrap();
        for row in v.as_set().unwrap().iter() {
            let sup = row.as_tuple().unwrap().get("supplier").unwrap();
            assert!(sup.as_tuple().unwrap().get("sname").is_some());
        }
        assert_eq!(stats.oid_lookups, 3);
    }

    #[test]
    fn assembles_set_references_dropping_dangling() {
        let db = supplier_part_db();
        let suppliers = db
            .table("SUPPLIER")
            .unwrap()
            .as_set_value()
            .into_set()
            .unwrap();
        let mut stats = Stats::new();
        let v = assemble(
            &suppliers,
            &"parts".into(),
            &"Part".into(),
            true,
            &db,
            &mut stats,
        )
        .unwrap();
        let s5 = v
            .as_set()
            .unwrap()
            .iter()
            .find(|r| r.as_tuple().unwrap().get("sname") == Some(&Value::str("s5")))
            .unwrap();
        // s5 referenced {@17, @999}: the dangling @999 is dropped
        let parts = s5
            .as_tuple()
            .unwrap()
            .get("parts")
            .unwrap()
            .as_set()
            .unwrap();
        assert_eq!(parts.len(), 1);
        // 2+2+4+0+2 pointers +? s1{3} s2{2} s3{4} s4{0} s5{2} = 11
        assert_eq!(stats.oid_lookups, 11);
    }

    #[test]
    fn dangling_single_reference_errors() {
        let db = supplier_part_db();
        let fake = Set::from_values(vec![Value::tuple([
            ("supplier", Value::Oid(oodb_value::Oid(4040))),
            ("k", Value::Int(1)),
        ])]);
        let mut stats = Stats::new();
        let err = assemble(
            &fake,
            &"supplier".into(),
            &"Supplier".into(),
            false,
            &db,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::DanglingPointer { .. }));
    }

    #[test]
    fn unknown_class_errors() {
        let db = supplier_part_db();
        let mut stats = Stats::new();
        let err = assemble(
            &Set::empty(),
            &"x".into(),
            &"Nope".into(),
            false,
            &db,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::UnknownClass(_)));
    }
}

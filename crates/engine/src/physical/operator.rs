//! The streaming operator pipeline: `open` / `next_batch` / `close`.
//!
//! The materialized executor ([`PhysPlan::exec`]) builds a full
//! [`Value::Set`] at every operator boundary — faithful to the algebra,
//! but every selection, map and probe side pays an extra clone of its
//! whole input. This module is the set-oriented engine the paper argues
//! *for*, restructured as a pull-based (Volcano-with-batches) pipeline in
//! the style of risinglight's executor layer:
//!
//! * every physical operator implements [`Operator`] — `open` prepares
//!   children, `next_batch` yields up to [`BATCH_SIZE`] rows, `close`
//!   flushes per-operator statistics;
//! * **pipeline breakers are explicit**: hash-join build sides, sort
//!   runs, `ν`/aggregate/set-operation inputs and PNHL operands are
//!   drained into canonical [`Set`]s (preserving the algebra's
//!   deduplicating semantics), while selections, maps, projections,
//!   unnests, assembly and every join **probe side stream** batch by
//!   batch;
//! * each operator is wrapped in an [`Instrument`] shim recording
//!   rows/batches emitted into [`Stats::operators`].
//!
//! Entry point: [`PhysPlan::execute_streaming_on`] (in
//! [`crate::physical`]), or [`crate::plan::Plan::execute_streaming`].

use super::columnar::{simple_attr, MaskExpr, ProbeInput};
use super::hashjoin::{self, IndexedBuild, JoinHashTable, MemberHashTable, MemberShape};
use super::sortmerge::SortMergeState;
use super::{pnhl, spill_exec, MatchKeys, PhysPlan};
use crate::eval::{aggregate, nest_set, unnest_value, Env, EvalError, Evaluator};
use crate::stats::{OpStats, OpTiming, Stats};
use oodb_adl::expr::{AggOp, Expr, JoinKind, SetOp};
use oodb_catalog::Database;
use oodb_spill::{MemoryBudget, SpillMetrics};
use oodb_value::fxhash::FxHashSet;
use oodb_value::{BatchKind, Name, Set, Value};
use std::time::Instant;

/// Rows per batch. Batches are soft-bounded: operators that expand rows
/// (unnest, inner joins) may exceed it rather than split mid-tuple-group.
pub const BATCH_SIZE: usize = 1024;

/// One batch of rows flowing between operators — columnar by default,
/// legacy `Vec<Value>` rows under `BatchKind::Row` (see
/// [`oodb_value::batch`]).
pub use oodb_value::Batch;

/// A boxed operator node.
pub type BoxOp = Box<dyn Operator>;

/// Everything an operator needs at runtime: the expression interpreter
/// (for predicates, keys and map bodies), the variable environment, and
/// the shared statistics sink.
pub struct ExecCtx<'db, 's> {
    /// Interpreter over the bound database.
    pub ev: Evaluator<'db>,
    /// Lexically scoped variable bindings.
    pub env: Env,
    /// Work counters shared by the whole pipeline.
    pub stats: &'s mut Stats,
    /// The memory budget pipeline state (hash tables, sort runs, PNHL
    /// segments) is held to; unbounded by default, shared across the
    /// pipeline, divided into per-worker shares by the exchanges.
    pub budget: MemoryBudget,
    /// Which layout batch *sources* (scans, scalar-set streams,
    /// round-robin exchange gathers, spilled canonical-set runs) build
    /// their batches in — [`BatchKind::Columnar`] by default;
    /// `OODB_BATCH_KIND=row` preserves the legacy boxed-row batches for
    /// differential testing, exactly like `OODB_PARALLELISM=1`
    /// preserves the serial pipeline. Layout-preserving transforms keep
    /// columnar batches columnar; operators that construct fresh rows
    /// (join outputs, blocking drains) emit row batches.
    pub batch_kind: BatchKind,
    /// Master switch for the vectorized fast paths: compiled selection
    /// masks, column-at-a-time transforms, columnar hash-join outputs
    /// and the streaming ν/`Agg` group tables. `true` by default;
    /// `OODB_VECTORIZE=off` (or `PlannerConfig::vectorize`) forces every
    /// operator onto the row-interpreter / drain-to-set reference paths
    /// for differential testing. Results and the classic work counters
    /// are identical either way — the switch only selects the machinery.
    pub vectorize: bool,
    /// Capture per-operator wall-clock timings (`OpStats::timing`) in
    /// the instrumentation shim. `true` by default; `OODB_TIMING=off`
    /// (or `PlannerConfig::timing`) skips the monotonic-clock reads on
    /// the hot path. Results and every counter are bit-identical either
    /// way — only the nanosecond totals stay zero when disabled.
    pub timing: bool,
}

/// A pull-based physical operator.
pub trait Operator {
    /// Prepares this operator and (recursively) its children. Blocking
    /// work (hash build, sorting) is deferred to the first
    /// [`Operator::next_batch`] so `open` stays cheap.
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError>;

    /// The next batch of rows; `None` once exhausted.
    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError>;

    /// Releases state and flushes instrumentation (idempotent).
    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>);

    /// True when this operator produces exactly one (possibly non-set)
    /// value instead of a stream of set elements.
    fn scalar(&self) -> bool {
        false
    }

    /// Spill I/O this operator performed (bytes written, partitions
    /// created, partitioning passes). Zero for operators that never
    /// touch the external-memory subsystem; the instrumentation shim
    /// copies it into the operator's [`OpStats`] entry.
    fn spill_metrics(&self) -> SpillMetrics {
        SpillMetrics::default()
    }

    /// Input batches a grouped breaker consumed **incrementally**
    /// (streaming ν / streaming `Agg`); zero for everything else. The
    /// instrumentation shim copies it into the operator's [`OpStats`]
    /// entry so EXPLAIN shows the streaming group table instead of an
    /// opaque drain.
    fn in_batches(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------
// Draining helpers (the explicit pipeline breakers).

pub(crate) fn drain_rows(
    op: &mut BoxOp,
    ctx: &mut ExecCtx<'_, '_>,
) -> Result<Vec<Value>, EvalError> {
    let mut rows = Vec::new();
    while let Some(b) = op.next_batch(ctx)? {
        rows.extend(b.into_values());
    }
    Ok(rows)
}

fn drain_scalar(op: &mut BoxOp, ctx: &mut ExecCtx<'_, '_>) -> Result<Value, EvalError> {
    debug_assert!(op.scalar());
    let mut rows = drain_rows(op, ctx)?;
    // A scalar operator emits exactly one value. Zero means the child
    // was already exhausted (a retry after an error, or a state-machine
    // misuse); more than one means a non-scalar child was miswired.
    // Both used to panic here — return a defined error instead so the
    // pipeline can be closed and the failure reported.
    match rows.len() {
        1 => Ok(rows.pop().expect("len checked")),
        0 => Err(EvalError::OperatorProtocol(
            "scalar operator emitted no value (drained twice?)",
        )),
        _ => Err(EvalError::OperatorProtocol(
            "scalar operator emitted more than one value",
        )),
    }
}

/// Materializes a child as a canonical set — the deduplicating boundary
/// every blocking input goes through, mirroring `into_set()` on the
/// materialized path (including its error on non-set scalars). Under a
/// bounded memory budget the canonicalization runs as an external merge
/// sort: budget-sized runs are deduplicated, spilled, and k-way merged
/// (spill volume charged to `local`, i.e. the draining operator).
pub(crate) fn drain_to_set(
    op: &mut BoxOp,
    local: &mut SpillMetrics,
    ctx: &mut ExecCtx<'_, '_>,
) -> Result<Set, EvalError> {
    if op.scalar() {
        let v = drain_scalar(op, ctx)?;
        Ok(v.into_set()?)
    } else if ctx.budget.is_bounded() {
        spill_exec::budgeted_canonical_set(op, local, ctx)
    } else {
        Ok(Set::from_values(drain_rows(op, ctx)?))
    }
}

/// Materializes a child as raw (possibly duplicate-bearing) rows for a
/// consumer that performs its own set dedupe — the keyed external merge
/// sort. Scalar children keep the set/error contract of
/// [`drain_to_set`]; their single set value is already canonical.
fn drain_raw(op: &mut BoxOp, ctx: &mut ExecCtx<'_, '_>) -> Result<Vec<Value>, EvalError> {
    if op.scalar() {
        Ok(drain_scalar(op, ctx)?.into_set()?.into_values())
    } else {
        drain_rows(op, ctx)
    }
}

/// Materializes a child as a single value (sets stay sets).
fn drain_value(op: &mut BoxOp, ctx: &mut ExecCtx<'_, '_>) -> Result<Value, EvalError> {
    if op.scalar() {
        drain_scalar(op, ctx)
    } else {
        Ok(Value::Set(Set::from_values(drain_rows(op, ctx)?)))
    }
}

/// Buffered rows emitted in [`BATCH_SIZE`] chunks (blocking operators'
/// output side).
#[derive(Debug, Default)]
pub(crate) struct Buffered {
    rows: Vec<Value>,
    pos: usize,
}

impl Buffered {
    pub(crate) fn new(rows: Vec<Value>) -> Self {
        Buffered { rows, pos: 0 }
    }

    pub(crate) fn next_chunk(&mut self, kind: BatchKind) -> Option<Batch> {
        if self.pos >= self.rows.len() {
            return None;
        }
        let end = (self.pos + BATCH_SIZE).min(self.rows.len());
        // Move rows out (leaving cheap `Null`s) — each buffered row is
        // emitted exactly once, so no deep clone is needed.
        let chunk: Vec<Value> = self.rows[self.pos..end]
            .iter_mut()
            .map(|v| std::mem::replace(v, Value::Null))
            .collect();
        self.pos = end;
        Some(Batch::of(kind, chunk))
    }
}

// ---------------------------------------------------------------------
// Instrumentation.

/// Lifecycle of an instrumented operator. The shim enforces the
/// `open → next_batch* → close` protocol at one chokepoint so the inner
/// state machines (`expect("built above")`, `expect("drained above")`)
/// can never be reached through a misuse path: pulling before `open` or
/// after `close` returns [`EvalError::OperatorProtocol`] instead of
/// re-running (or panicking in) stale inner state, and an exhausted
/// stream is fused — further pulls yield `None` without polling the
/// inner operator again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InstrState {
    /// Compiled, `open` not yet called.
    Created,
    /// Open and streaming.
    Open,
    /// Inner stream returned `None`; fused.
    Exhausted,
    /// Closed; only `open` may revive it.
    Closed,
}

/// Wraps every compiled operator, counting rows/batches emitted and
/// reporting them into [`Stats::operators`] when the stream ends.
struct Instrument {
    label: String,
    inner: BoxOp,
    rows_out: u64,
    batches: u64,
    reported: bool,
    state: InstrState,
    /// Wall-clock accumulators (see [`OpTiming`]): inclusive of the
    /// whole subtree below this shim, Postgres-style, because the clock
    /// brackets the inner call which recursively pulls its children.
    /// Stay zero unless `ExecCtx::timing`.
    timing: OpTiming,
    /// Index of the [`OpStats`] entry `report` pushed, so `close` can
    /// fold its own duration into an entry that was already published
    /// at exhaustion (entries are append-only during a run, so the
    /// index stays valid).
    pushed: Option<usize>,
}

impl Instrument {
    fn new(label: String, inner: BoxOp) -> Self {
        Instrument {
            label,
            inner,
            rows_out: 0,
            batches: 0,
            reported: false,
            state: InstrState::Created,
            timing: OpTiming::default(),
            pushed: None,
        }
    }

    fn report(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        if !self.reported {
            self.reported = true;
            let spill = self.inner.spill_metrics();
            self.pushed = Some(ctx.stats.operators.len());
            ctx.stats.operators.push(OpStats {
                op: self.label.clone(),
                rows_out: self.rows_out,
                batches: self.batches,
                in_batches: self.inner.in_batches(),
                spill_bytes: spill.bytes,
                spill_partitions: spill.partitions,
                spill_passes: spill.passes,
                timing: self.timing,
            });
        }
    }
}

impl Operator for Instrument {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.rows_out = 0;
        self.batches = 0;
        self.reported = false;
        self.state = InstrState::Open;
        self.timing = OpTiming::default();
        self.pushed = None;
        if ctx.timing {
            let t0 = Instant::now();
            let r = self.inner.open(ctx);
            self.timing.open_ns += t0.elapsed().as_nanos() as u64;
            r
        } else {
            self.inner.open(ctx)
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        match self.state {
            InstrState::Open => {}
            InstrState::Exhausted => return Ok(None),
            InstrState::Created => {
                return Err(EvalError::OperatorProtocol("next_batch before open"))
            }
            InstrState::Closed => {
                return Err(EvalError::OperatorProtocol("next_batch after close"))
            }
        }
        let next = if ctx.timing {
            let t0 = Instant::now();
            let r = self.inner.next_batch(ctx);
            self.timing.next_ns += t0.elapsed().as_nanos() as u64;
            r
        } else {
            self.inner.next_batch(ctx)
        };
        match next? {
            Some(b) => {
                self.rows_out += b.len() as u64;
                self.batches += 1;
                Ok(Some(b))
            }
            None => {
                self.state = InstrState::Exhausted;
                self.report(ctx);
                Ok(None)
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.state = InstrState::Closed;
        // Report first (spill metrics are read before the inner state is
        // released), then fold the close duration back into the entry.
        self.report(ctx);
        if ctx.timing {
            let t0 = Instant::now();
            self.inner.close(ctx);
            self.timing.close_ns += t0.elapsed().as_nanos() as u64;
            if let Some(entry) = self.pushed.and_then(|i| ctx.stats.operators.get_mut(i)) {
                entry.timing = self.timing;
            }
        } else {
            self.inner.close(ctx);
        }
    }

    fn scalar(&self) -> bool {
        self.inner.scalar()
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.inner.spill_metrics()
    }

    fn in_batches(&self) -> u64 {
        self.inner.in_batches()
    }
}

// ---------------------------------------------------------------------
// Leaf operators.

/// Base-table scan, emitted in batches.
///
/// `(part, parts)` is the morsel stride: worker `part` of a round-robin
/// exchange takes exactly the [`BATCH_SIZE`]-aligned batches whose index
/// is ≡ `part` (mod `parts`), so every row is scanned by exactly one
/// worker and per-worker `rows_scanned` sums to the serial count.
/// `(0, 1)` is the ordinary serial scan.
struct ScanOp {
    table: Name,
    part: usize,
    parts: usize,
    buf: Option<Buffered>,
}

impl Operator for ScanOp {
    fn open(&mut self, _ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.buf.is_none() {
            let t = ctx
                .ev
                .db()
                .table(&self.table)
                .ok_or_else(|| EvalError::UnknownTable(self.table.clone()))?;
            let all = t.as_set_value().into_set()?.into_values();
            let rows = if self.parts <= 1 {
                all
            } else {
                all.into_iter()
                    .enumerate()
                    .filter(|(i, _)| (i / BATCH_SIZE) % self.parts == self.part)
                    .map(|(_, v)| v)
                    .collect()
            };
            ctx.stats.rows_scanned += rows.len() as u64;
            self.buf = Some(Buffered::new(rows));
        }
        // scans build columnar batches directly from the extent rows —
        // the layout every operator above inherits
        Ok(self
            .buf
            .as_mut()
            .expect("buffered above")
            .next_chunk(ctx.batch_kind))
    }

    fn close(&mut self, _ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
    }
}

/// What a scalar leaf computes.
enum ScalarKind {
    /// A constant.
    Literal(Value),
    /// An arbitrary expression handed to the reference evaluator.
    Eval(Expr),
    /// An aggregate over a drained child.
    Agg { op: AggOp, child: BoxOp },
}

/// Single-value producer (`Literal`, `Eval`, aggregates).
struct ScalarOp {
    kind: ScalarKind,
    done: bool,
    spill: SpillMetrics,
    in_batches: u64,
}

impl Operator for ScalarOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.done = false;
        self.in_batches = 0;
        if let ScalarKind::Agg { child, .. } = &mut self.kind {
            child.open(ctx)?;
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let v = match &mut self.kind {
            ScalarKind::Literal(v) => v.clone(),
            ScalarKind::Eval(e) => ctx.ev.eval(e, &mut ctx.env, ctx.stats)?,
            ScalarKind::Agg { op, child } => {
                if ctx.vectorize {
                    streaming_aggregate(*op, child, &mut self.in_batches, &mut self.spill, ctx)?
                } else {
                    let s = drain_to_set(child, &mut self.spill, ctx)?;
                    aggregate(*op, &s)?
                }
            }
        };
        Ok(Some(Batch::from_rows(vec![v])))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        if let ScalarKind::Agg { child, .. } = &mut self.kind {
            child.close(ctx);
        }
    }

    fn scalar(&self) -> bool {
        true
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }

    fn in_batches(&self) -> u64 {
        self.in_batches
    }
}

/// Streaming aggregation: consumes the child batch by batch instead of
/// draining it into a canonical set first.
///
/// * `min`/`max` keep a running extreme under **any** budget: the
///   extreme of the raw stream equals the extreme of its deduplicated
///   set, and the canonical `Set` order makes the reference `min`/`max`
///   exactly the `Value`-order extremes.
/// * `count`/`sum`/`avg` need the **distinct** values (sets
///   deduplicate). Under an unbounded budget they stream into an
///   incremental distinct table; `sum`/`avg` then finish through the
///   reference [`aggregate`] on the canonicalized distinct values,
///   preserving its fold order (float addition is order-sensitive) and
///   its exact error behavior. Under a bounded budget the distinct
///   table would be unbounded state, so they keep the spill-aware
///   canonical drain.
fn streaming_aggregate(
    op: AggOp,
    child: &mut BoxOp,
    in_batches: &mut u64,
    spill: &mut SpillMetrics,
    ctx: &mut ExecCtx<'_, '_>,
) -> Result<Value, EvalError> {
    if child.scalar() {
        // a scalar child is one set value, not a row stream; the drain
        // keeps its set/error contract
        return aggregate(op, &drain_to_set(child, spill, ctx)?);
    }
    match op {
        AggOp::Min | AggOp::Max => {
            let mut best: Option<Value> = None;
            while let Some(b) = child.next_batch(ctx)? {
                *in_batches += 1;
                for v in b.into_values() {
                    let better = match &best {
                        None => true,
                        Some(cur) if matches!(op, AggOp::Min) => v < *cur,
                        Some(cur) => v > *cur,
                    };
                    if better {
                        best = Some(v);
                    }
                }
            }
            best.ok_or(EvalError::Value(oodb_value::ValueError::EmptyAggregate(
                if matches!(op, AggOp::Min) {
                    "min"
                } else {
                    "max"
                },
            )))
        }
        AggOp::Count | AggOp::Sum | AggOp::Avg if !ctx.budget.is_bounded() => {
            let mut distinct: FxHashSet<Value> = FxHashSet::default();
            while let Some(b) = child.next_batch(ctx)? {
                *in_batches += 1;
                for v in b.into_values() {
                    distinct.insert(v);
                }
            }
            if matches!(op, AggOp::Count) {
                return Ok(Value::Int(distinct.len() as i64));
            }
            aggregate(op, &Set::from_values(distinct.into_iter().collect()))
        }
        _ => aggregate(op, &drain_to_set(child, spill, ctx)?),
    }
}

/// Adapts a scalar child for a row-consuming parent: the single value
/// must be a set, whose elements become the stream.
struct ScalarRows {
    child: BoxOp,
    buf: Option<Buffered>,
}

impl Operator for ScalarRows {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        self.child.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.buf.is_none() {
            let v = drain_scalar(&mut self.child, ctx)?;
            self.buf = Some(Buffered::new(v.into_set()?.into_values()));
        }
        Ok(self
            .buf
            .as_mut()
            .expect("buffered above")
            .next_chunk(ctx.batch_kind))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
        self.child.close(ctx);
    }
}

// ---------------------------------------------------------------------
// Streaming one-child transforms.

/// The per-row transforms that never block the pipeline.
enum RowTransform {
    /// `σ` — predicate filter. `mask` is the compiled selection-mask
    /// tree when the predicate is an `AND`/`OR`/`NOT` composition of
    /// simple conjuncts (`var.attr ⟨cmp⟩ literal`, `var.a ⟨cmp⟩ var.b`).
    Filter {
        var: Name,
        pred: Expr,
        mask: Option<MaskExpr>,
    },
    /// `α` — function application. `simple` names the attribute when the
    /// body is exactly `var.attr` (a column extraction).
    Map {
        var: Name,
        body: Expr,
        simple: Option<Name>,
    },
    /// `π`.
    Project { attrs: Vec<Name> },
    /// `ρ`.
    Rename { pairs: Vec<(Name, Name)> },
    /// `μ`.
    Unnest { attr: Name },
    /// `⋃` — every input row must itself be a set.
    Flatten,
}

/// Applies a [`RowTransform`] to each input batch as it streams past.
///
/// Columnar batches run column-at-a-time where the expression is a
/// simple attribute shape (filter on `x.a ⟨cmp⟩ lit`, map to `x.a`,
/// project, rename); anything else — or any irregularity the column
/// fast path cannot express (missing attributes, name collisions) —
/// falls back to the row view, which reproduces the reference
/// semantics and error messages exactly.
struct TransformOp {
    t: RowTransform,
    child: BoxOp,
}

impl TransformOp {
    /// The columnar fast path for this batch, if the transform shape and
    /// the batch layout both allow one. `None` falls through to
    /// [`TransformOp::apply_rows`].
    fn apply_columns(
        &self,
        batch: &Batch,
        ctx: &mut ExecCtx<'_, '_>,
    ) -> Result<Option<Batch>, EvalError> {
        if !ctx.vectorize {
            return Ok(None); // kill-switch: every batch takes the row view
        }
        let Batch::Columnar(cb) = batch else {
            return Ok(None);
        };
        match &self.t {
            RowTransform::Filter {
                mask: Some(mask), ..
            } => match mask.eval_batch(cb, ctx.stats) {
                // unbound column: row view reports the NoSuchField
                None => Ok(None),
                Some(keep) => Ok(Some(Batch::Columnar(cb.filter(&keep?)))),
            },
            RowTransform::Map {
                simple: Some(attr), ..
            } => {
                let Some(col) = cb.column(attr) else {
                    return Ok(None);
                };
                ctx.stats.predicate_evals += cb.len() as u64;
                let out: Vec<Value> = (0..cb.len()).map(|i| col.value_at(i)).collect();
                Ok(Some(Batch::from_rows(out)))
            }
            RowTransform::Project { attrs } => Ok(cb.project(attrs).map(Batch::Columnar)),
            RowTransform::Rename { pairs } => Ok(cb.rename(pairs).map(Batch::Columnar)),
            _ => Ok(None),
        }
    }

    fn apply_rows(&self, batch: Vec<Value>, ctx: &mut ExecCtx<'_, '_>) -> Result<Batch, EvalError> {
        let mut out = Vec::with_capacity(batch.len());
        match &self.t {
            RowTransform::Filter { var, pred, .. } => {
                for elem in batch {
                    ctx.stats.predicate_evals += 1;
                    ctx.env.push(var, elem.clone());
                    let keep = ctx.ev.eval(pred, &mut ctx.env, ctx.stats);
                    ctx.env.pop();
                    if keep?.as_bool()? {
                        out.push(elem);
                    }
                }
            }
            RowTransform::Map { var, body, .. } => {
                for elem in batch {
                    ctx.stats.predicate_evals += 1;
                    ctx.env.push(var, elem);
                    let r = ctx.ev.eval(body, &mut ctx.env, ctx.stats);
                    ctx.env.pop();
                    out.push(r?);
                }
            }
            RowTransform::Project { attrs } => {
                for elem in &batch {
                    out.push(Value::Tuple(elem.as_tuple()?.subscript(attrs)?));
                }
            }
            RowTransform::Rename { pairs } => {
                for elem in &batch {
                    let mut t = elem.as_tuple()?.clone();
                    for (old, new) in pairs {
                        t = t.rename(old, new)?;
                    }
                    out.push(Value::Tuple(t));
                }
            }
            RowTransform::Unnest { attr } => {
                for elem in &batch {
                    unnest_value(elem, attr, &mut out)?;
                }
            }
            RowTransform::Flatten => {
                for elem in batch {
                    match elem {
                        Value::Set(s) => out.extend(s.into_values()),
                        other => {
                            return Err(EvalError::Value(oodb_value::ValueError::NotASet(
                                other.to_string(),
                            )))
                        }
                    }
                }
            }
        }
        Ok(Batch::from_rows(out))
    }

    fn apply(&self, batch: Batch, ctx: &mut ExecCtx<'_, '_>) -> Result<Batch, EvalError> {
        if let Some(out) = self.apply_columns(&batch, ctx)? {
            return Ok(out);
        }
        self.apply_rows(batch.into_values(), ctx)
    }
}

impl Operator for TransformOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.child.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        loop {
            let Some(batch) = self.child.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = self.apply(batch, ctx)?;
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.child.close(ctx);
    }
}

/// Assembly (\[BlMG93\]): pointer dereferencing is per-tuple work, so the
/// operator streams its input through [`hashjoin`]-independent
/// [`super::assembly::assemble_batch`] calls.
struct AssembleOp {
    attr: Name,
    class: Name,
    set_valued: bool,
    checked: bool,
    child: BoxOp,
}

impl Operator for AssembleOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.checked = false;
        self.child.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if !self.checked {
            ctx.ev
                .db()
                .catalog()
                .class(&self.class)
                .ok_or_else(|| EvalError::UnknownClass(self.class.clone()))?;
            self.checked = true;
        }
        loop {
            let Some(batch) = self.child.next_batch(ctx)? else {
                return Ok(None);
            };
            let rows = batch.into_values();
            let out = super::assembly::assemble_batch(
                &rows,
                &self.attr,
                &self.class,
                self.set_valued,
                ctx.ev.db(),
                ctx.stats,
            )?;
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.child.close(ctx);
    }
}

// ---------------------------------------------------------------------
// Blocking one/two-child operators.

/// What a blocking (fully materializing) operator computes.
enum BlockingKind {
    /// `ν` — grouping needs the whole input.
    Nest {
        attrs: Vec<Name>,
        as_attr: Name,
        child: BoxOp,
    },
    /// `∪ ∩ −` over two drained sets.
    SetOp {
        op: SetOp,
        left: BoxOp,
        right: BoxOp,
    },
    /// PNHL — both operands drained, output emitted in batches.
    Pnhl {
        outer: BoxOp,
        set_attr: Name,
        inner: BoxOp,
        keys: Box<MatchKeys>,
        budget: usize,
    },
    /// Unnest–join–nest materialization — both operands drained, output
    /// emitted in batches.
    UnnestJoin {
        outer: BoxOp,
        set_attr: Name,
        inner: BoxOp,
        keys: Box<MatchKeys>,
    },
}

/// Drains its input(s), computes, then emits the result in batches.
struct BlockingOp {
    kind: BlockingKind,
    buf: Option<Buffered>,
    spill: SpillMetrics,
    in_batches: u64,
}

impl Operator for BlockingOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        self.in_batches = 0;
        match &mut self.kind {
            BlockingKind::Nest { child, .. } => child.open(ctx),
            BlockingKind::SetOp { left, right, .. } => {
                left.open(ctx)?;
                right.open(ctx)
            }
            BlockingKind::Pnhl { outer, inner, .. }
            | BlockingKind::UnnestJoin { outer, inner, .. } => {
                outer.open(ctx)?;
                inner.open(ctx)
            }
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.buf.is_none() {
            let spill = &mut self.spill;
            let in_batches = &mut self.in_batches;
            let rows = match &mut self.kind {
                BlockingKind::Nest {
                    attrs,
                    as_attr,
                    child,
                } => {
                    if ctx.vectorize && !child.scalar() {
                        // streaming ν: the group table reads the child
                        // batch by batch — no canonical-set drain. The
                        // final Set::from_values canonicalizes exactly
                        // like the reference nest_set output.
                        let budget = ctx.budget.clone();
                        let mut nest = spill_exec::StreamingNest::new(as_attr, &budget);
                        while let Some(b) = child.next_batch(ctx)? {
                            *in_batches += 1;
                            for row in b.into_values() {
                                nest.push(&row, attrs)?;
                            }
                        }
                        let grouped = nest.finish(spill, ctx.stats)?;
                        Set::from_values(grouped).into_values()
                    } else {
                        let s = drain_to_set(child, spill, ctx)?;
                        nest_set(&s, attrs, as_attr)?.into_set()?.into_values()
                    }
                }
                BlockingKind::SetOp { op, left, right } => {
                    let l = drain_to_set(left, spill, ctx)?;
                    let r = drain_to_set(right, spill, ctx)?;
                    let out = match op {
                        SetOp::Union => l.union(&r),
                        SetOp::Intersect => l.intersect(&r),
                        SetOp::Difference => l.difference(&r),
                    };
                    out.into_values()
                }
                BlockingKind::Pnhl {
                    outer,
                    set_attr,
                    inner,
                    keys,
                    budget,
                } => {
                    let o = drain_to_set(outer, spill, ctx)?;
                    let i = drain_to_set(inner, spill, ctx)?;
                    if ctx.budget.is_bounded() {
                        // spill-backed PNHL: probe partitions persist
                        // through the SpillManager instead of
                        // re-scanning every outer element per segment
                        let budget = ctx.budget.clone();
                        spill_exec::pnhl_spill_rows(&o, set_attr, &i, keys, &budget, spill, ctx)?
                    } else {
                        pnhl::pnhl_rows(
                            &o,
                            set_attr,
                            &i,
                            keys,
                            *budget,
                            &ctx.ev,
                            &mut ctx.env,
                            ctx.stats,
                        )?
                    }
                }
                BlockingKind::UnnestJoin {
                    outer,
                    set_attr,
                    inner,
                    keys,
                } => {
                    let o = drain_to_set(outer, spill, ctx)?;
                    let i = drain_to_set(inner, spill, ctx)?;
                    pnhl::unnest_join_rows(
                        &o,
                        set_attr,
                        &i,
                        keys,
                        &ctx.ev,
                        &mut ctx.env,
                        ctx.stats,
                    )?
                }
            };
            self.buf = Some(Buffered::new(rows));
        }
        Ok(self
            .buf
            .as_mut()
            .expect("buffered above")
            .next_chunk(BatchKind::Row))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
        match &mut self.kind {
            BlockingKind::Nest { child, .. } => child.close(ctx),
            BlockingKind::SetOp { left, right, .. } => {
                left.close(ctx);
                right.close(ctx);
            }
            BlockingKind::Pnhl { outer, inner, .. }
            | BlockingKind::UnnestJoin { outer, inner, .. } => {
                outer.close(ctx);
                inner.close(ctx);
            }
        }
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }

    fn in_batches(&self) -> u64 {
        self.in_batches
    }
}

/// `let` — runs the value subplan once, then streams the body with the
/// binding pushed around each pull (strict scoping: the binding never
/// leaks into sibling subtrees between pulls).
struct LetOp {
    var: Name,
    value: BoxOp,
    body: BoxOp,
    bound: Option<Value>,
}

impl Operator for LetOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.bound = None;
        self.value.open(ctx)?;
        self.body.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.bound.is_none() {
            self.bound = Some(drain_value(&mut self.value, ctx)?);
        }
        // Move the binding in for the pull and take it back afterwards,
        // so the body streams with no buffering and no per-pull deep
        // clone. The restore must not trust the body to have left the
        // stack balanced: an operator failing mid-batch (e.g. a probe
        // side erroring) may leak frames, and a panic here would tear
        // down the whole pipeline. Instead, remember the depth of our
        // own frame and unwind back to it.
        let v = match self.bound.take() {
            Some(v) => v,
            // A previous pull failed while draining the value subplan
            // and the caller retried: surface a defined error.
            None => {
                return Err(EvalError::OperatorProtocol(
                    "let binding unavailable after a failed pull",
                ))
            }
        };
        let base = ctx.env.depth();
        ctx.env.push(&self.var, v);
        let r = self.body.next_batch(ctx);
        // Pop any frames the body leaked above ours…
        while ctx.env.depth() > base + 1 {
            ctx.env.pop();
        }
        // …then reclaim our binding — but only if our frame is still
        // there. An underflow (the body popped *through* our binding)
        // must not steal an enclosing scope's frame; report it instead,
        // preferring the body's own error.
        if ctx.env.depth() == base + 1 {
            if let Some((name, v)) = ctx.env.pop_binding() {
                if name == self.var {
                    self.bound = Some(v);
                    return r;
                }
            }
        }
        r.and(Err(EvalError::OperatorProtocol(
            "let body consumed the binding frame",
        )))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.bound = None;
        self.value.close(ctx);
        self.body.close(ctx);
    }

    fn scalar(&self) -> bool {
        self.body.scalar()
    }
}

// ---------------------------------------------------------------------
// Joins: build once, stream the probe side.

/// Extended Cartesian product: right side drained, left side streamed.
struct ProductOp {
    left: BoxOp,
    right: BoxOp,
    right_set: Option<Set>,
    spill: SpillMetrics,
}

impl Operator for ProductOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.right_set = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.right_set.is_none() {
            self.right_set = Some(drain_to_set(&mut self.right, &mut self.spill, ctx)?);
        }
        let r = self.right_set.as_ref().expect("drained above");
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            // every row is concatenated |r| times: materialize the rows
            // once up front
            let rows = batch.into_values();
            let mut out = Vec::with_capacity(rows.len() * r.len());
            for x in &rows {
                for y in r.iter() {
                    ctx.stats.loop_iterations += 1;
                    out.push(Value::Tuple(x.as_tuple()?.concat(y.as_tuple()?)?));
                }
            }
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.right_set = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }
}

/// Whether a hash-family operator produces join rows or nestjoin groups.
pub(crate) enum HashMode {
    /// `⋈ ⋉ ▷ ⟕` on equi-keys.
    Join {
        kind: JoinKind,
        right_attrs: Vec<Name>,
    },
    /// `⊣` — one output row per probe row, carrying its group.
    Nest { rfunc: Option<Expr>, as_attr: Name },
}

/// Build-phase outcome of a budget-aware hash-family join: the build
/// side fit in memory (stream the probe side as before), or it spilled
/// and the whole join already ran partition-wise (emit the buffered
/// output).
enum HashJoinState<T> {
    /// Build side not yet drained.
    Pending,
    /// In-memory table; probe batches stream against it.
    InMem(T),
    /// The build side exceeded the budget: grace join ran to completion
    /// (draining the probe side into partition files), output buffered.
    Spilled(Buffered),
}

/// Hash join family on extracted equi-keys: build on the right (a
/// pipeline breaker), then probe batches as the left side streams.
/// Under a bounded memory budget an oversized build side switches the
/// operator to a grace hash join (see [`spill_exec::grace_equi_join`]).
struct HashJoinOp {
    mode: HashMode,
    lvar: Name,
    rvar: Name,
    lkeys: Vec<Expr>,
    rkeys: Vec<Expr>,
    residual: Option<Expr>,
    left: BoxOp,
    right: BoxOp,
    state: HashJoinState<JoinHashTable>,
    /// Columnar re-materialization of the in-memory build table, built
    /// once per open when the vectorized probe applies (residual-free
    /// inner/semi/anti join, batchable build rows, `ctx.vectorize`).
    indexed: Option<IndexedBuild>,
    spill: SpillMetrics,
}

impl Operator for HashJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.state = HashJoinState::Pending;
        self.indexed = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if matches!(self.state, HashJoinState::Pending) {
            let build = drain_to_set(&mut self.right, &mut self.spill, ctx)?;
            self.state = if !ctx.budget.is_bounded() {
                HashJoinState::InMem(JoinHashTable::build(
                    &self.rkeys,
                    &self.rvar,
                    build.into_values(),
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?)
            } else {
                let (keyed, bytes) = spill_exec::keyed_equi_build(
                    build.into_values(),
                    &self.rkeys,
                    &self.rvar,
                    ctx,
                )?;
                if !ctx.budget.exceeded_by(bytes) {
                    HashJoinState::InMem(JoinHashTable::from_keyed(keyed, ctx.stats))
                } else {
                    let budget = ctx.budget.clone();
                    let rows = spill_exec::grace_equi_join(
                        &self.mode,
                        &self.lvar,
                        &self.rvar,
                        &self.lkeys,
                        self.residual.as_ref(),
                        keyed,
                        &mut self.left,
                        &budget,
                        &mut self.spill,
                        ctx,
                    )?;
                    HashJoinState::Spilled(Buffered::new(rows))
                }
            };
            if let HashJoinState::InMem(table) = &self.state {
                if ctx.vectorize
                    && self.residual.is_none()
                    && matches!(
                        self.mode,
                        HashMode::Join {
                            kind: JoinKind::Inner | JoinKind::Semi | JoinKind::Anti,
                            ..
                        }
                    )
                {
                    self.indexed = table.indexed();
                }
            }
        }
        let table = match &mut self.state {
            HashJoinState::Spilled(buf) => return Ok(buf.next_chunk(BatchKind::Row)),
            HashJoinState::InMem(table) => table,
            HashJoinState::Pending => unreachable!("resolved above"),
        };
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            // columnar fast path: a residual-free equi-join over a
            // columnar probe batch whose keys read straight off the key
            // columns emits columnar output via gather, never building
            // boxed rows. `None` (unsupported shape, schema collision)
            // falls through to the row probe below, which reports the
            // reference error and charges the counters itself.
            if let (Some(ib), HashMode::Join { kind, .. }) = (&self.indexed, &self.mode) {
                if let Batch::Columnar(cb) = &batch {
                    let probe = ProbeInput::from(&batch);
                    if let Some(cols) = probe.key_columns(&self.lkeys, &self.lvar) {
                        if let Some(out) = ib.probe_columnar(*kind, &cols, cb, ctx.stats) {
                            if out.is_empty() {
                                continue;
                            }
                            return Ok(Some(out));
                        }
                    }
                }
            }
            let out = match &self.mode {
                HashMode::Join { kind, right_attrs } => JoinHashTable::probe_batch(
                    std::slice::from_ref(table),
                    *kind,
                    &self.lvar,
                    &self.rvar,
                    &self.lkeys,
                    self.residual.as_ref(),
                    right_attrs,
                    (&batch).into(),
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
                HashMode::Nest { rfunc, as_attr } => JoinHashTable::probe_nest_batch(
                    std::slice::from_ref(table),
                    &self.lvar,
                    &self.rvar,
                    &self.lkeys,
                    self.residual.as_ref(),
                    rfunc.as_ref(),
                    as_attr,
                    (&batch).into(),
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
            };
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.state = HashJoinState::Pending;
        self.indexed = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }
}

/// Membership-keyed hash join family (`p.pid ∈ s.parts` shapes). Under
/// a bounded budget an oversized build side switches to the membership
/// grace join (see [`spill_exec::grace_member_join`]).
struct MemberJoinOp {
    mode: HashMode,
    lvar: Name,
    rvar: Name,
    shape: MemberShape,
    residual: Option<Expr>,
    left: BoxOp,
    right: BoxOp,
    state: HashJoinState<MemberHashTable>,
    spill: SpillMetrics,
}

impl Operator for MemberJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.state = HashJoinState::Pending;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if matches!(self.state, HashJoinState::Pending) {
            let build = drain_to_set(&mut self.right, &mut self.spill, ctx)?;
            self.state = if !ctx.budget.is_bounded() {
                HashJoinState::InMem(MemberHashTable::build(
                    &self.shape,
                    &self.rvar,
                    build.into_values(),
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?)
            } else {
                let (keyed, bytes) = spill_exec::keyed_member_build(
                    build.into_values(),
                    &self.shape,
                    &self.rvar,
                    ctx,
                )?;
                if !ctx.budget.exceeded_by(bytes) {
                    HashJoinState::InMem(MemberHashTable::from_keyed(keyed, ctx.stats))
                } else {
                    let budget = ctx.budget.clone();
                    let rows = spill_exec::grace_member_join(
                        &self.mode,
                        &self.lvar,
                        &self.rvar,
                        &self.shape,
                        self.residual.as_ref(),
                        keyed,
                        &mut self.left,
                        &budget,
                        &mut self.spill,
                        ctx,
                    )?;
                    HashJoinState::Spilled(Buffered::new(rows))
                }
            };
        }
        let table = match &mut self.state {
            HashJoinState::Spilled(buf) => return Ok(buf.next_chunk(BatchKind::Row)),
            HashJoinState::InMem(table) => table,
            HashJoinState::Pending => unreachable!("resolved above"),
        };
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = match &self.mode {
                HashMode::Join { kind, right_attrs } => MemberHashTable::probe_batch(
                    std::slice::from_ref(table),
                    *kind,
                    &self.lvar,
                    &self.rvar,
                    &self.shape,
                    self.residual.as_ref(),
                    right_attrs,
                    (&batch).into(),
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
                HashMode::Nest { rfunc, as_attr } => MemberHashTable::probe_nest_batch(
                    std::slice::from_ref(table),
                    &self.lvar,
                    &self.rvar,
                    &self.shape,
                    self.residual.as_ref(),
                    rfunc.as_ref(),
                    as_attr,
                    (&batch).into(),
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
            };
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.state = HashJoinState::Pending;
        self.left.close(ctx);
        self.right.close(ctx);
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }
}

/// Index nested-loop join: the left side streams, each row probing the
/// right extent's secondary hash index.
struct IndexNLJoinOp {
    kind: JoinKind,
    lvar: Name,
    rvar: Name,
    lkey: Expr,
    attr: Name,
    extent: Name,
    residual: Option<Expr>,
    right_attrs: Vec<Name>,
    checked: bool,
    left: BoxOp,
}

impl Operator for IndexNLJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.checked = false;
        self.left.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if !self.checked {
            // Resolve the extent before the first pull so an unknown
            // table errors even when the probe side is empty, exactly
            // like the materialized path.
            ctx.ev
                .db()
                .table(&self.extent)
                .ok_or_else(|| EvalError::UnknownTable(self.extent.clone()))?;
            self.checked = true;
        }
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = hashjoin::index_nl_join_batch(
                self.kind,
                &self.lvar,
                &self.rvar,
                &self.lkey,
                &self.attr,
                &self.extent,
                self.residual.as_ref(),
                &self.right_attrs,
                (&batch).into(),
                &ctx.ev,
                &mut ctx.env,
                ctx.stats,
            )?;
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.left.close(ctx);
    }
}

/// Nested-loop fallback (join and nestjoin): the right side is drained
/// once, the left side streams against it.
struct NLJoinOp {
    mode: HashMode,
    lvar: Name,
    rvar: Name,
    pred: Expr,
    left: BoxOp,
    right: BoxOp,
    right_set: Option<Set>,
    spill: SpillMetrics,
}

impl Operator for NLJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.right_set = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.right_set.is_none() {
            self.right_set = Some(drain_to_set(&mut self.right, &mut self.spill, ctx)?);
        }
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let r = self.right_set.as_ref().expect("drained above");
            let out = match &self.mode {
                HashMode::Join { kind, right_attrs } => hashjoin::nl_join_batch(
                    *kind,
                    &self.lvar,
                    &self.rvar,
                    &self.pred,
                    right_attrs,
                    (&batch).into(),
                    r,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
                HashMode::Nest { rfunc, as_attr } => hashjoin::nl_nestjoin_batch(
                    &self.lvar,
                    &self.rvar,
                    &self.pred,
                    rfunc.as_ref(),
                    as_attr,
                    (&batch).into(),
                    r,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
            };
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.right_set = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }
}

/// How a sort-merge join holds its sorted inputs.
enum SmjState {
    /// Inputs not yet drained.
    Pending,
    /// Fully in-memory sorted runs with an incremental merge cursor
    /// (the unbounded path).
    InMem(SortMergeState),
    /// External merge sort ran under the budget; output buffered.
    External(Buffered),
}

/// Sort-merge join: both runs sorted up front (the blocking phase), then
/// match groups are emitted chunk by chunk from the merge cursor. Under
/// a bounded memory budget each side sorts in budget-sized spilled runs
/// that are k-way merged (see [`spill_exec::external_sort_merge_join`]).
struct SortMergeJoinOp {
    lvar: Name,
    rvar: Name,
    lkeys: Vec<Expr>,
    rkeys: Vec<Expr>,
    residual: Option<Expr>,
    left: BoxOp,
    right: BoxOp,
    state: SmjState,
    spill: SpillMetrics,
}

impl Operator for SortMergeJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.state = SmjState::Pending;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if matches!(self.state, SmjState::Pending) {
            self.state = if ctx.budget.is_bounded() {
                // raw drains: the canonical-set dedupe is folded into
                // the keyed external merge (runs deduplicate before
                // each spill, the group cursor drops cross-run
                // duplicates), so each side spills once instead of
                // paying a separate canonicalize-and-spill pass first
                let l = drain_raw(&mut self.left, ctx)?;
                let r = drain_raw(&mut self.right, ctx)?;
                let budget = ctx.budget.clone();
                let rows = spill_exec::external_sort_merge_join(
                    &self.lvar,
                    &self.rvar,
                    &self.lkeys,
                    &self.rkeys,
                    self.residual.as_ref(),
                    l,
                    r,
                    &budget,
                    &mut self.spill,
                    ctx,
                )?;
                SmjState::External(Buffered::new(rows))
            } else {
                let l = drain_to_set(&mut self.left, &mut self.spill, ctx)?;
                let r = drain_to_set(&mut self.right, &mut self.spill, ctx)?;
                SmjState::InMem(SortMergeState::build(
                    &self.lvar,
                    &self.rvar,
                    &self.lkeys,
                    &self.rkeys,
                    l.into_values(),
                    r.into_values(),
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?)
            };
        }
        match &mut self.state {
            SmjState::External(buf) => Ok(buf.next_chunk(BatchKind::Row)),
            SmjState::InMem(state) => {
                let rows = state.next_chunk(
                    &self.lvar,
                    &self.rvar,
                    self.residual.as_ref(),
                    BATCH_SIZE,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?;
                Ok(rows.map(Batch::from_rows))
            }
            SmjState::Pending => unreachable!("resolved above"),
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.state = SmjState::Pending;
        self.left.close(ctx);
        self.right.close(ctx);
    }

    fn spill_metrics(&self) -> SpillMetrics {
        self.spill
    }
}

// ---------------------------------------------------------------------
// Compilation.

impl PhysPlan {
    /// Compiles this plan into a streaming operator tree. Every node is
    /// wrapped in an instrumentation shim that records rows/batches
    /// emitted into [`Stats::operators`].
    pub fn compile(&self) -> BoxOp {
        self.compile_stride(0, 1)
    }

    /// Compiles with a morsel stride: base scans in per-row segments
    /// emit only the batches worker `part` of `parts` owns (see
    /// [`ScanOp`]). The round-robin exchange compiles one clone of its
    /// segment per worker through this entry point; `(0, 1)` is the
    /// ordinary serial compilation.
    pub(crate) fn compile_stride(&self, part: usize, parts: usize) -> BoxOp {
        match self {
            // A round-robin exchange runs its own instrumented workers
            // and merges their reports by label; wrapping the exchange
            // itself would double-count every segment operator.
            PhysPlan::Exchange {
                partitioning: super::Partitioning::RoundRobin,
                ..
            } => self.compile_node(part, parts),
            // A hash exchange *replaces* the join node it wraps, so it
            // reports under the join's own label — serial and parallel
            // plans keep identical per-operator profiles.
            PhysPlan::Exchange {
                partitioning: super::Partitioning::Hash,
                input,
                ..
            } => Box::new(Instrument::new(
                input.op_label(),
                self.compile_node(part, parts),
            )),
            // A literal contributes no work of its own; leaving it
            // uninstrumented keeps profiles identical whether a value
            // was computed inline or substituted from a memo (the
            // server's let-spine memoization relies on this).
            PhysPlan::Literal(_) => self.compile_node(part, parts),
            _ => Box::new(Instrument::new(
                self.op_label(),
                self.compile_node(part, parts),
            )),
        }
    }

    /// Compiles a child whose parent consumes rows: scalar-shaped nodes
    /// are adapted so their single set value streams as elements.
    pub(crate) fn compile_rows(&self, part: usize, parts: usize) -> BoxOp {
        let op = self.compile_stride(part, parts);
        if op.scalar() {
            Box::new(ScalarRows {
                child: op,
                buf: None,
            })
        } else {
            op
        }
    }

    /// Compiles one node. The stride propagates only through the
    /// operators a round-robin segment may contain (per-row transforms,
    /// assembly, scans); everything else — joins, blocking operators,
    /// `let`, scalars — compiles its children serially, so a stride can
    /// never split the two sides of a join inconsistently.
    fn compile_node(&self, part: usize, parts: usize) -> BoxOp {
        match self {
            PhysPlan::Scan(name) => Box::new(ScanOp {
                table: name.clone(),
                part,
                parts,
                buf: None,
            }),
            PhysPlan::Literal(v) => Box::new(ScalarOp {
                kind: ScalarKind::Literal(v.clone()),
                done: false,
                spill: SpillMetrics::default(),
                in_batches: 0,
            }),
            PhysPlan::Eval(e) => Box::new(ScalarOp {
                kind: ScalarKind::Eval(e.clone()),
                done: false,
                spill: SpillMetrics::default(),
                in_batches: 0,
            }),
            PhysPlan::AggNode { op, input } => Box::new(ScalarOp {
                kind: ScalarKind::Agg {
                    op: *op,
                    child: input.compile_rows(0, 1),
                },
                done: false,
                spill: SpillMetrics::default(),
                in_batches: 0,
            }),
            PhysPlan::Filter { var, pred, input } => Box::new(TransformOp {
                t: RowTransform::Filter {
                    var: var.clone(),
                    pred: pred.clone(),
                    mask: MaskExpr::compile(var, pred),
                },
                child: input.compile_rows(part, parts),
            }),
            PhysPlan::MapOp { var, body, input } => Box::new(TransformOp {
                t: RowTransform::Map {
                    var: var.clone(),
                    body: body.clone(),
                    simple: simple_attr(body, var).cloned(),
                },
                child: input.compile_rows(part, parts),
            }),
            PhysPlan::ProjectOp { attrs, input } => Box::new(TransformOp {
                t: RowTransform::Project {
                    attrs: attrs.clone(),
                },
                child: input.compile_rows(part, parts),
            }),
            PhysPlan::RenameOp { pairs, input } => Box::new(TransformOp {
                t: RowTransform::Rename {
                    pairs: pairs.clone(),
                },
                child: input.compile_rows(part, parts),
            }),
            PhysPlan::UnnestOp { attr, input } => Box::new(TransformOp {
                t: RowTransform::Unnest { attr: attr.clone() },
                child: input.compile_rows(part, parts),
            }),
            PhysPlan::FlattenOp { input } => Box::new(TransformOp {
                t: RowTransform::Flatten,
                child: input.compile_rows(part, parts),
            }),
            PhysPlan::NestOp {
                attrs,
                as_attr,
                input,
            } => Box::new(BlockingOp {
                kind: BlockingKind::Nest {
                    attrs: attrs.clone(),
                    as_attr: as_attr.clone(),
                    child: input.compile_rows(0, 1),
                },
                buf: None,
                spill: SpillMetrics::default(),
                in_batches: 0,
            }),
            PhysPlan::SetOpNode { op, left, right } => Box::new(BlockingOp {
                kind: BlockingKind::SetOp {
                    op: *op,
                    left: left.compile_rows(0, 1),
                    right: right.compile_rows(0, 1),
                },
                buf: None,
                spill: SpillMetrics::default(),
                in_batches: 0,
            }),
            PhysPlan::Pnhl {
                outer,
                set_attr,
                inner,
                keys,
                budget,
            } => Box::new(BlockingOp {
                kind: BlockingKind::Pnhl {
                    outer: outer.compile_rows(0, 1),
                    set_attr: set_attr.clone(),
                    inner: inner.compile_rows(0, 1),
                    keys: Box::new(keys.clone()),
                    budget: *budget,
                },
                buf: None,
                spill: SpillMetrics::default(),
                in_batches: 0,
            }),
            PhysPlan::UnnestJoin {
                outer,
                set_attr,
                inner,
                keys,
            } => Box::new(BlockingOp {
                kind: BlockingKind::UnnestJoin {
                    outer: outer.compile_rows(0, 1),
                    set_attr: set_attr.clone(),
                    inner: inner.compile_rows(0, 1),
                    keys: Box::new(keys.clone()),
                },
                buf: None,
                spill: SpillMetrics::default(),
                in_batches: 0,
            }),
            PhysPlan::LetOp { var, value, body } => Box::new(LetOp {
                var: var.clone(),
                value: value.compile(),
                body: body.compile(),
                bound: None,
            }),
            PhysPlan::ProductOp { left, right } => Box::new(ProductOp {
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                right_set: None,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::HashJoin {
                kind,
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                right_attrs,
                left,
                right,
            } => Box::new(HashJoinOp {
                mode: HashMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkeys: lkeys.clone(),
                rkeys: rkeys.clone(),
                residual: residual.clone(),
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                state: HashJoinState::Pending,
                indexed: None,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::HashNestJoin {
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => Box::new(HashJoinOp {
                mode: HashMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkeys: lkeys.clone(),
                rkeys: rkeys.clone(),
                residual: residual.clone(),
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                state: HashJoinState::Pending,
                indexed: None,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::HashMemberJoin {
                kind,
                lvar,
                rvar,
                shape,
                residual,
                right_attrs,
                left,
                right,
            } => Box::new(MemberJoinOp {
                mode: HashMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                shape: shape.clone(),
                residual: residual.clone(),
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                state: HashJoinState::Pending,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::MemberNestJoin {
                lvar,
                rvar,
                shape,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => Box::new(MemberJoinOp {
                mode: HashMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                shape: shape.clone(),
                residual: residual.clone(),
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                state: HashJoinState::Pending,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::IndexNLJoin {
                kind,
                lvar,
                rvar,
                lkey,
                attr,
                extent,
                residual,
                right_attrs,
                left,
            } => Box::new(IndexNLJoinOp {
                kind: *kind,
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkey: lkey.clone(),
                attr: attr.clone(),
                extent: extent.clone(),
                residual: residual.clone(),
                right_attrs: right_attrs.clone(),
                checked: false,
                left: left.compile_rows(0, 1),
            }),
            PhysPlan::NLJoin {
                kind,
                lvar,
                rvar,
                pred,
                right_attrs,
                left,
                right,
            } => Box::new(NLJoinOp {
                mode: HashMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                pred: pred.clone(),
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                right_set: None,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::NLNestJoin {
                lvar,
                rvar,
                pred,
                rfunc,
                as_attr,
                left,
                right,
            } => Box::new(NLJoinOp {
                mode: HashMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                pred: pred.clone(),
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                right_set: None,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::SortMergeJoin {
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                left,
                right,
            } => Box::new(SortMergeJoinOp {
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkeys: lkeys.clone(),
                rkeys: rkeys.clone(),
                residual: residual.clone(),
                left: left.compile_rows(0, 1),
                right: right.compile_rows(0, 1),
                state: SmjState::Pending,
                spill: SpillMetrics::default(),
            }),
            PhysPlan::Assemble {
                input,
                attr,
                class,
                set_valued,
            } => Box::new(AssembleOp {
                attr: attr.clone(),
                class: class.clone(),
                set_valued: *set_valued,
                checked: false,
                child: input.compile_rows(part, parts),
            }),
            PhysPlan::Exchange {
                partitioning,
                dop,
                input,
            } => super::exchange::compile_exchange(*partitioning, *dop, input),
        }
    }

    /// Short operator label used by the per-operator statistics.
    pub fn op_label(&self) -> String {
        match self {
            PhysPlan::Scan(n) => format!("Scan({n})"),
            PhysPlan::Literal(_) => "Literal".into(),
            PhysPlan::Eval(_) => "Eval".into(),
            PhysPlan::Filter { .. } => "Filter".into(),
            PhysPlan::MapOp { .. } => "Map".into(),
            PhysPlan::ProjectOp { .. } => "Project".into(),
            PhysPlan::RenameOp { .. } => "Rename".into(),
            PhysPlan::UnnestOp { attr, .. } => format!("Unnest({attr})"),
            PhysPlan::NestOp { as_attr, .. } => format!("Nest({as_attr})"),
            PhysPlan::FlattenOp { .. } => "Flatten".into(),
            PhysPlan::SetOpNode { op, .. } => format!("SetOp({})", op.symbol()),
            PhysPlan::AggNode { op, .. } => format!("Agg({})", op.name()),
            PhysPlan::LetOp { var, .. } => format!("Let({var})"),
            PhysPlan::ProductOp { .. } => "Product".into(),
            PhysPlan::HashJoin { kind, .. } => format!("HashJoin({kind:?})"),
            PhysPlan::HashMemberJoin { kind, .. } => format!("HashMemberJoin({kind:?})"),
            PhysPlan::IndexNLJoin { kind, .. } => format!("IndexNLJoin({kind:?})"),
            PhysPlan::NLJoin { kind, .. } => format!("NLJoin({kind:?})"),
            PhysPlan::SortMergeJoin { .. } => "SortMergeJoin".into(),
            PhysPlan::HashNestJoin { as_attr, .. } => format!("HashNestJoin({as_attr})"),
            PhysPlan::MemberNestJoin { as_attr, .. } => format!("MemberNestJoin({as_attr})"),
            PhysPlan::NLNestJoin { as_attr, .. } => format!("NLNestJoin({as_attr})"),
            PhysPlan::Pnhl { set_attr, .. } => format!("PNHL({set_attr})"),
            PhysPlan::UnnestJoin { set_attr, .. } => format!("UnnestJoin({set_attr})"),
            PhysPlan::Assemble { attr, class, .. } => format!("Assemble({attr}->{class})"),
            PhysPlan::Exchange {
                partitioning, dop, ..
            } => format!("Exchange({partitioning:?},{dop})"),
        }
    }
}

/// Drives a compiled plan to completion against `db`, mirroring the
/// result contract of the materialized executor: row-producing roots
/// collect into a canonical set, scalar roots return their single value.
/// The memory budget is the process default ([`MemoryBudget::from_env`],
/// i.e. `OODB_MEMORY_BUDGET` or unbounded); [`run_budgeted`] takes an
/// explicit one.
pub fn run(plan: &PhysPlan, db: &Database, stats: &mut Stats) -> Result<Value, EvalError> {
    run_budgeted(plan, db, stats, MemoryBudget::from_env())
}

/// [`run`] under an explicit [`MemoryBudget`] and the process-default
/// batch layout ([`BatchKind::from_env`]).
pub fn run_budgeted(
    plan: &PhysPlan,
    db: &Database,
    stats: &mut Stats,
    budget: MemoryBudget,
) -> Result<Value, EvalError> {
    run_configured(plan, db, stats, budget, BatchKind::from_env())
}

/// [`run`] under an explicit [`MemoryBudget`] **and** batch layout — how
/// [`crate::plan::Plan`] threads `PlannerConfig::memory_budget` and
/// `PlannerConfig::batch_kind` into execution.
pub fn run_configured(
    plan: &PhysPlan,
    db: &Database,
    stats: &mut Stats,
    budget: MemoryBudget,
    batch_kind: BatchKind,
) -> Result<Value, EvalError> {
    run_full(
        plan,
        db,
        stats,
        budget,
        batch_kind,
        super::columnar::vectorize_from_env(),
    )
}

/// [`run_configured`] with the vectorization switch made explicit — how
/// `PlannerConfig::vectorize` reaches execution without going through
/// the `OODB_VECTORIZE` environment variable. Per-operator timing
/// follows `OODB_TIMING` (on by default); [`run_traced`] makes it
/// explicit.
pub fn run_full(
    plan: &PhysPlan,
    db: &Database,
    stats: &mut Stats,
    budget: MemoryBudget,
    batch_kind: BatchKind,
    vectorize: bool,
) -> Result<Value, EvalError> {
    run_traced(
        plan,
        db,
        stats,
        budget,
        batch_kind,
        vectorize,
        timing_from_env(),
    )
}

/// Whether the instrumentation shim should capture per-operator
/// wall-clock timings: on unless `OODB_TIMING` is `off`/`0`/`false`.
pub fn timing_from_env() -> bool {
    match std::env::var("OODB_TIMING") {
        Ok(v) => !(v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") || v == "0"),
        Err(_) => true,
    }
}

/// [`run_full`] with the per-operator timing switch made explicit — how
/// `PlannerConfig::timing` reaches execution without going through the
/// `OODB_TIMING` environment variable. Implemented as a collect-all
/// drain of a [`ResultStream`] cursor, so the library path and the
/// serving layer's streamed wire protocol drive the very same pipeline
/// machinery.
#[allow(clippy::too_many_arguments)]
pub fn run_traced(
    plan: &PhysPlan,
    db: &Database,
    stats: &mut Stats,
    budget: MemoryBudget,
    batch_kind: BatchKind,
    vectorize: bool,
    timing: bool,
) -> Result<Value, EvalError> {
    let mut stream = ResultStream::new(plan, db, budget, batch_kind, vectorize, timing);
    let result = stream.drain_value();
    stream.close();
    stats.merge(stream.stats());
    let v = result?;
    if let Value::Set(s) = &v {
        stats.output_rows += s.len() as u64;
    }
    Ok(v)
}

/// Where a [`ResultStream`] is in its lifecycle.
enum StreamState {
    /// Compiled, not yet opened — the first [`ResultStream::next_chunk`]
    /// opens the root.
    Created,
    /// Open and producing chunks.
    Streaming,
    /// Exhausted, failed, or closed; `next_chunk` returns `Ok(None)`.
    Done,
}

/// A pull-based cursor over one plan execution — `open` (implicit on the
/// first pull) / [`ResultStream::next_chunk`] / [`ResultStream::close`],
/// mirroring the [`Operator`] contract one level up. This is the handoff
/// the serving layer consumes: each call pulls exactly one batch out of
/// the pipeline, so a consumer can ship the first chunk before the plan
/// has finished executing — nothing here materializes the result set.
///
/// The stream owns its execution state ([`Stats`], [`Env`], the compiled
/// operator tree) and borrows only the database, so it can outlive the
/// plan it was compiled from. Chunks are *raw* pipeline output: they may
/// carry duplicates and arrive in pipeline order — the canonical
/// (deduplicated) set is whatever [`Set::from_values`] makes of their
/// concatenation, which is exactly how [`run_traced`] assembles it.
pub struct ResultStream<'db> {
    root: BoxOp,
    db: &'db Database,
    env: Env,
    stats: Stats,
    budget: MemoryBudget,
    batch_kind: BatchKind,
    vectorize: bool,
    timing: bool,
    scalar: bool,
    state: StreamState,
}

impl<'db> ResultStream<'db> {
    /// Compiles `plan` into a cursor. Nothing executes until the first
    /// [`ResultStream::next_chunk`] (which opens the root), so creation
    /// is cheap and infallible.
    pub fn new(
        plan: &PhysPlan,
        db: &'db Database,
        budget: MemoryBudget,
        batch_kind: BatchKind,
        vectorize: bool,
        timing: bool,
    ) -> ResultStream<'db> {
        let root = plan.compile();
        let scalar = root.scalar();
        ResultStream {
            root,
            db,
            env: Env::new(),
            stats: Stats::default(),
            budget,
            batch_kind,
            vectorize,
            timing,
            scalar,
            state: StreamState::Created,
        }
    }

    /// True when the root produces exactly one (possibly non-set) value;
    /// such a stream yields exactly one single-row chunk.
    pub fn scalar(&self) -> bool {
        self.scalar
    }

    /// True once the stream has been exhausted, failed, or closed.
    pub fn finished(&self) -> bool {
        matches!(self.state, StreamState::Done)
    }

    /// Execution statistics accumulated so far (complete once the stream
    /// is finished). `output_rows` is *not* set here — only whoever
    /// assembles the canonical result knows the deduplicated cardinality.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Builds a per-call [`ExecCtx`] around the stream's owned state and
    /// runs `f` with it. The [`Evaluator`] is a cheap wrapper over the
    /// database reference and [`MemoryBudget`] is stateless
    /// configuration, so rebuilding both per pull costs nothing; the
    /// environment is threaded through by value so bindings survive
    /// across pulls.
    fn with_ctx<T>(&mut self, f: impl FnOnce(&mut BoxOp, &mut ExecCtx<'_, '_>) -> T) -> T {
        let env = std::mem::replace(&mut self.env, Env::new());
        let mut ctx = ExecCtx {
            ev: Evaluator::new(self.db),
            env,
            stats: &mut self.stats,
            budget: self.budget.clone(),
            batch_kind: self.batch_kind,
            vectorize: self.vectorize,
            timing: self.timing,
        };
        let out = f(&mut self.root, &mut ctx);
        self.env = std::mem::replace(&mut ctx.env, Env::new());
        out
    }

    /// Pulls the next non-empty chunk out of the pipeline. `Ok(None)`
    /// once exhausted (the stream closes itself); an error also closes
    /// the stream, and every later call returns `Ok(None)`.
    pub fn next_chunk(&mut self) -> Result<Option<Batch>, EvalError> {
        loop {
            match self.state {
                StreamState::Done => return Ok(None),
                StreamState::Created => {
                    match self.with_ctx(|root, ctx| root.open(ctx)) {
                        Ok(()) => self.state = StreamState::Streaming,
                        Err(e) => {
                            // Parity with the historical collect-all
                            // path: a failed open is not followed by
                            // close (the root never opened).
                            self.state = StreamState::Done;
                            return Err(e);
                        }
                    }
                }
                StreamState::Streaming => {
                    if self.scalar {
                        let r = self.with_ctx(drain_scalar);
                        self.close();
                        return r.map(|v| Some(Batch::from_rows(vec![v])));
                    }
                    match self.with_ctx(|root, ctx| root.next_batch(ctx)) {
                        Ok(Some(b)) if b.is_empty() => continue,
                        Ok(Some(b)) => return Ok(Some(b)),
                        Ok(None) => {
                            self.close();
                            return Ok(None);
                        }
                        Err(e) => {
                            self.close();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Drains the stream to completion, assembling the same value the
    /// collect-all executor produces: scalar roots return their single
    /// value, row roots a canonical (deduplicated) set.
    pub fn drain_value(&mut self) -> Result<Value, EvalError> {
        if self.scalar {
            let chunk = self.next_chunk()?.ok_or(EvalError::OperatorProtocol(
                "scalar stream yielded no chunk",
            ))?;
            let mut rows = chunk.into_values();
            debug_assert_eq!(rows.len(), 1);
            rows.pop().ok_or(EvalError::OperatorProtocol(
                "scalar stream yielded an empty chunk",
            ))
        } else {
            let mut rows = Vec::new();
            while let Some(b) = self.next_chunk()? {
                rows.extend(b.into_values());
            }
            Ok(Value::Set(Set::from_values(rows)))
        }
    }

    /// Closes the root (releasing operator state and flushing
    /// instrumentation) if it was opened. Idempotent; also runs on drop.
    pub fn close(&mut self) {
        if matches!(self.state, StreamState::Streaming) {
            self.with_ctx(|root, ctx| root.close(ctx));
        }
        self.state = StreamState::Done;
    }
}

impl Drop for ResultStream<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinAlgo, Planner, PlannerConfig};
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::{figure3_db, supplier_part_db};

    fn both_paths(db: &Database, e: &Expr) -> (Value, Stats, Value, Stats) {
        let plan = Planner::new(db).plan(e).unwrap();
        let mut ms = Stats::new();
        let materialized = plan.execute(&mut ms).unwrap();
        let mut ss = Stats::new();
        let streamed = plan.execute_streaming(&mut ss).unwrap();
        (materialized, ms, streamed, ss)
    }

    #[test]
    fn streaming_agrees_on_scan_filter_map() {
        let db = supplier_part_db();
        let e = map(
            "p",
            var("p").field("pname"),
            select(
                "p",
                eq(var("p").field("color"), str_lit("red")),
                table("PART"),
            ),
        );
        let (m, ms, s, ss) = both_paths(&db, &e);
        assert_eq!(m, s);
        // identical classic work profile…
        assert_eq!(ms.rows_scanned, ss.rows_scanned);
        assert_eq!(ms.predicate_evals, ss.predicate_evals);
        // …plus the per-operator profile only streaming records
        assert!(ms.operators.is_empty());
        assert_eq!(
            ss.operators.len(),
            3,
            "scan, filter, map: {:?}",
            ss.operators
        );
        let scan = ss.operator("Scan(PART)").unwrap();
        assert_eq!(scan.rows_out, 7);
        assert_eq!(scan.batches, 1);
        let filter = ss.operator("Filter").unwrap();
        assert_eq!(filter.rows_out, 3);
    }

    #[test]
    fn streaming_agrees_on_every_join_algorithm() {
        let db = figure3_db();
        let e = join(
            "x",
            "y",
            eq(var("x").field("b"), var("y").field("d")),
            table("X"),
            table("Y"),
        );
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::NestedLoop] {
            let planner = Planner::with_config(
                &db,
                PlannerConfig {
                    join_algo: algo,
                    ..Default::default()
                },
            );
            let plan = planner.plan(&e).unwrap();
            let mut ms = Stats::new();
            let m = plan.execute(&mut ms).unwrap();
            let mut ss = Stats::new();
            let s = plan.execute_streaming(&mut ss).unwrap();
            assert_eq!(m, s, "algo {algo:?}");
            assert!(!ss.operators.is_empty(), "algo {algo:?} not instrumented");
        }
    }

    #[test]
    fn streaming_agrees_on_member_semijoin_with_probe_stats() {
        let db = supplier_part_db();
        let e = semijoin(
            "s",
            "p",
            and(
                member(var("p").field("pid"), var("s").field("parts")),
                eq(var("p").field("color"), str_lit("red")),
            ),
            table("SUPPLIER"),
            table("PART"),
        );
        let (m, ms, s, ss) = both_paths(&db, &e);
        assert_eq!(m, s);
        assert_eq!(ms.hash_build_rows, ss.hash_build_rows);
        assert_eq!(ms.hash_probes, ss.hash_probes);
        assert_eq!(ss.loop_iterations, 0);
        let join_op = ss.operator("HashMemberJoin").unwrap();
        assert_eq!(join_op.rows_out, 3); // s1, s2, s3
    }

    #[test]
    fn streaming_agrees_on_nestjoin_pnhl_and_assembly() {
        let db = supplier_part_db();
        // membership nestjoin (Example Query 6 shape)
        let nj = nestjoin_with(
            "s",
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            var("p").field("pname"),
            "pnames",
            table("SUPPLIER"),
            table("PART"),
        );
        let (m, _, s, ss) = both_paths(&db, &nj);
        assert_eq!(m, s);
        assert_eq!(ss.operator("MemberNestJoin").unwrap().rows_out, 5);

        // §6.2 materialization: assembly (identity key) and PNHL
        let mat = map(
            "s",
            except(
                var("s"),
                vec![(
                    "parts",
                    select(
                        "p",
                        member(var("p").field("pid"), var("s").field("parts")),
                        table("PART"),
                    ),
                )],
            ),
            table("SUPPLIER"),
        );
        let (m2, _, s2, ss2) = both_paths(&db, &mat);
        assert_eq!(m2, s2);
        assert!(ss2.operator("Assemble").is_some(), "{:?}", ss2.operators);

        let pnhl_planner = Planner::with_config(
            &db,
            PlannerConfig {
                // rule-based so `prefer_assembly: false` really forces PNHL
                cost_based: false,
                prefer_assembly: false,
                pnhl_budget: 2,
                // the assertion below counts the *row*-budget segments;
                // a byte budget (e.g. CI's OODB_MEMORY_BUDGET pass)
                // would switch to the spill-backed PNHL instead
                memory_budget: 0,
                ..Default::default()
            },
        );
        let plan = pnhl_planner.plan(&mat).unwrap();
        let mut ss3 = Stats::new();
        let s3 = plan.execute_streaming(&mut ss3).unwrap();
        assert_eq!(m2, s3);
        assert!(ss3.operator("PNHL").is_some(), "{:?}", ss3.operators);
        assert_eq!(ss3.partitions, 4); // ⌈7 / 2⌉ segments
    }

    #[test]
    fn scalar_roots_return_plain_values() {
        let db = supplier_part_db();
        let count_plan = PhysPlan::AggNode {
            op: oodb_adl::AggOp::Count,
            input: Box::new(PhysPlan::Scan("PART".into())),
        };
        let mut stats = Stats::new();
        let v = count_plan.execute_streaming_on(&db, &mut stats).unwrap();
        assert_eq!(v, Value::Int(7));
        // aggregates drain their input through the instrumented pipeline
        assert!(stats.operator("Scan(PART)").is_some());

        let lit = PhysPlan::Literal(Value::str("hello"));
        let mut s2 = Stats::new();
        assert_eq!(
            lit.execute_streaming_on(&db, &mut s2).unwrap(),
            Value::str("hello")
        );
    }

    #[test]
    fn let_bindings_stay_scoped_to_the_body() {
        let db = supplier_part_db();
        let e = let_(
            "reds",
            map(
                "p",
                var("p").field("pid"),
                select(
                    "p",
                    eq(var("p").field("color"), str_lit("red")),
                    table("PART"),
                ),
            ),
            select(
                "s",
                exists("x", var("s").field("parts"), member(var("x"), var("reds"))),
                table("SUPPLIER"),
            ),
        );
        let (m, _, s, ss) = both_paths(&db, &e);
        assert_eq!(m, s);
        assert_eq!(s.as_set().unwrap().len(), 3);
        assert!(ss.operator("Let(reds)").is_some(), "{:?}", ss.operators);
    }

    #[test]
    fn large_scans_stream_in_multiple_batches() {
        use oodb_catalog::fixtures::supplier_part_catalog;
        use oodb_value::{Oid, Tuple};
        let mut db = Database::new(supplier_part_catalog()).unwrap();
        let n = 3 * BATCH_SIZE + 17;
        for i in 0..n {
            db.insert(
                "PART",
                Tuple::from_pairs([
                    ("pid", Value::Oid(Oid(1_000_000 + i as u64))),
                    ("pname", Value::str(&format!("part-{i}"))),
                    ("price", Value::Int((i % 97) as i64)),
                    ("color", Value::str(if i % 3 == 0 { "red" } else { "blue" })),
                ]),
            )
            .unwrap();
        }
        let e = select("p", lt(var("p").field("price"), int(50)), table("PART"));
        let plan = Planner::new(&db).plan(&e).unwrap();
        let mut ss = Stats::new();
        let got = plan.execute_streaming(&mut ss).unwrap();
        let scan = ss.operator("Scan(PART)").unwrap();
        assert_eq!(scan.rows_out, n as u64);
        assert_eq!(scan.batches, 4, "expected ⌈{n}/{BATCH_SIZE}⌉ batches");
        let filter = ss.operator("Filter").unwrap();
        assert!(filter.batches >= 2);
        assert_eq!(got.as_set().unwrap().len(), filter.rows_out as usize);
        // agrees with the materialized path
        let mut ms = Stats::new();
        assert_eq!(plan.execute(&mut ms).unwrap(), got);
    }

    #[test]
    fn product_and_setop_stream_correctly() {
        let db = supplier_part_db();
        let prod = PhysPlan::ProductOp {
            left: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["eid".into()],
                input: Box::new(PhysPlan::Scan("SUPPLIER".into())),
            }),
            right: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["pid".into()],
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        let mut ss = Stats::new();
        let v = prod.execute_streaming_on(&db, &mut ss).unwrap();
        assert_eq!(v.as_set().unwrap().len(), 35);
        assert_eq!(ss.loop_iterations, 35);

        let inter = PhysPlan::SetOpNode {
            op: SetOp::Intersect,
            left: Box::new(PhysPlan::Filter {
                var: "p".into(),
                pred: eq(var("p").field("color"), str_lit("red")),
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
            right: Box::new(PhysPlan::Filter {
                var: "p".into(),
                pred: lt(var("p").field("price"), int(8)),
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        let mut s2 = Stats::new();
        let v2 = inter.execute_streaming_on(&db, &mut s2).unwrap();
        assert_eq!(v2.as_set().unwrap().len(), 1); // screw (red, 7)
    }

    #[test]
    fn index_nl_join_streams_with_index_probes() {
        let mut db = supplier_part_db();
        db.create_index("DELIVERY", "supplier").unwrap();
        let e = join(
            "s",
            "d",
            eq(var("s").field("eid"), var("d").field("supplier")),
            project(&["eid", "sname"], table("SUPPLIER")),
            table("DELIVERY"),
        );
        let plan = Planner::new(&db).plan(&e).unwrap();
        assert!(matches!(plan.phys, PhysPlan::IndexNLJoin { .. }));
        let mut ss = Stats::new();
        let s = plan.execute_streaming(&mut ss).unwrap();
        assert!(ss.index_probes > 0);
        assert!(ss.operator("IndexNLJoin").is_some());
        let mut ms = Stats::new();
        assert_eq!(plan.execute(&mut ms).unwrap(), s);
    }

    #[test]
    fn errors_propagate_through_the_pipeline() {
        let db = supplier_part_db();
        let bad = PhysPlan::Scan("NO_SUCH".into());
        let mut stats = Stats::new();
        assert!(matches!(
            bad.execute_streaming_on(&db, &mut stats),
            Err(EvalError::UnknownTable(_))
        ));
        // flatten of non-set rows errors exactly like the materialized path
        let flat = PhysPlan::FlattenOp {
            input: Box::new(PhysPlan::MapOp {
                var: "p".into(),
                body: var("p").field("pname"),
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        let mut s2 = Stats::new();
        let streaming_err = flat.execute_streaming_on(&db, &mut s2);
        let mut s3 = Stats::new();
        let materialized_err = flat.execute_on(&db, &mut s3);
        assert!(streaming_err.is_err());
        assert!(materialized_err.is_err());
    }

    #[test]
    fn empty_aggregates_error_like_the_reference_not_panic() {
        // Regression: an aggregate whose child yields no rows used to be
        // able to reach `drain_scalar`'s `expect` — it must return the
        // same defined `EmptyAggregate` error as `eval.rs`.
        let db = supplier_part_db();
        let empty = PhysPlan::Filter {
            var: "p".into(),
            pred: lit(Value::Bool(false)),
            input: Box::new(PhysPlan::Scan("PART".into())),
        };
        for op in [
            oodb_adl::AggOp::Min,
            oodb_adl::AggOp::Max,
            oodb_adl::AggOp::Avg,
        ] {
            let agg = PhysPlan::AggNode {
                op,
                input: Box::new(empty.clone()),
            };
            let mut ss = Stats::new();
            let streaming = agg.execute_streaming_on(&db, &mut ss);
            let mut ms = Stats::new();
            let materialized = agg.execute_on(&db, &mut ms);
            assert!(
                matches!(
                    streaming,
                    Err(EvalError::Value(oodb_value::ValueError::EmptyAggregate(_)))
                ),
                "{op:?}: {streaming:?}"
            );
            assert_eq!(
                format!("{}", streaming.unwrap_err()),
                format!("{}", materialized.unwrap_err()),
                "{op:?} diverged from the reference semantics"
            );
        }
        // count and sum of nothing are defined values, not errors
        let count = PhysPlan::AggNode {
            op: oodb_adl::AggOp::Count,
            input: Box::new(empty),
        };
        let mut ss = Stats::new();
        assert_eq!(
            count.execute_streaming_on(&db, &mut ss).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn scalar_drained_twice_is_a_protocol_error_not_a_panic() {
        let db = supplier_part_db();
        let plan = PhysPlan::AggNode {
            op: oodb_adl::AggOp::Count,
            input: Box::new(PhysPlan::Scan("PART".into())),
        };
        let mut stats = Stats::new();
        let mut ctx = ExecCtx {
            ev: Evaluator::new(&db),
            env: Env::new(),
            stats: &mut stats,
            budget: MemoryBudget::unbounded(),
            batch_kind: BatchKind::from_env(),
            vectorize: true,
            timing: true,
        };
        let mut op = plan.compile();
        op.open(&mut ctx).unwrap();
        assert_eq!(drain_scalar(&mut op, &mut ctx).unwrap(), Value::Int(7));
        // the stream is fused; draining again finds no value
        assert!(matches!(
            drain_scalar(&mut op, &mut ctx),
            Err(EvalError::OperatorProtocol(_))
        ));
        op.close(&mut ctx);
    }

    #[test]
    fn illegal_lifecycle_transitions_return_errors_not_panics() {
        let db = supplier_part_db();
        let plan = PhysPlan::Scan("PART".into());
        let mut stats = Stats::new();
        let mut ctx = ExecCtx {
            ev: Evaluator::new(&db),
            env: Env::new(),
            stats: &mut stats,
            budget: MemoryBudget::unbounded(),
            batch_kind: BatchKind::from_env(),
            vectorize: true,
            timing: true,
        };
        // next_batch before open
        let mut op = plan.compile();
        assert!(matches!(
            op.next_batch(&mut ctx),
            Err(EvalError::OperatorProtocol(_))
        ));
        // next_batch after close
        op.open(&mut ctx).unwrap();
        op.close(&mut ctx);
        assert!(matches!(
            op.next_batch(&mut ctx),
            Err(EvalError::OperatorProtocol(_))
        ));
        // double close is idempotent, re-open revives
        op.close(&mut ctx);
        op.open(&mut ctx).unwrap();
        let batch = op.next_batch(&mut ctx).unwrap().unwrap();
        assert_eq!(batch.len(), 7);
        // exhausted streams are fused: pulling past None stays None
        assert!(op.next_batch(&mut ctx).unwrap().is_none());
        assert!(op.next_batch(&mut ctx).unwrap().is_none());
        op.close(&mut ctx);
    }

    #[test]
    fn let_body_error_restores_the_env_without_unwinding() {
        let db = supplier_part_db();
        // body errors on every row: field access on a string
        let plan = PhysPlan::LetOp {
            var: "n".into(),
            value: Box::new(PhysPlan::AggNode {
                op: oodb_adl::AggOp::Count,
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
            body: Box::new(PhysPlan::Filter {
                var: "p".into(),
                pred: lt(var("p").field("pname").field("oops"), var("n")),
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        let mut stats = Stats::new();
        let mut ctx = ExecCtx {
            ev: Evaluator::new(&db),
            env: Env::new(),
            stats: &mut stats,
            budget: MemoryBudget::unbounded(),
            batch_kind: BatchKind::from_env(),
            vectorize: true,
            timing: true,
        };
        let mut op = plan.compile();
        op.open(&mut ctx).unwrap();
        let err = loop {
            match op.next_batch(&mut ctx) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected the body to error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, EvalError::Value(_)), "{err}");
        // the let restored the env: nothing leaked past the failed pull
        assert_eq!(ctx.env.depth(), 0, "env unbalanced after body error");
        // closing after the error must not panic
        op.close(&mut ctx);
        // and the whole-plan entry point reports the error cleanly too
        let mut s2 = Stats::new();
        assert!(plan.execute_streaming_on(&db, &mut s2).is_err());
    }
}

//! The streaming operator pipeline: `open` / `next_batch` / `close`.
//!
//! The materialized executor ([`PhysPlan::exec`]) builds a full
//! [`Value::Set`] at every operator boundary — faithful to the algebra,
//! but every selection, map and probe side pays an extra clone of its
//! whole input. This module is the set-oriented engine the paper argues
//! *for*, restructured as a pull-based (Volcano-with-batches) pipeline in
//! the style of risinglight's executor layer:
//!
//! * every physical operator implements [`Operator`] — `open` prepares
//!   children, `next_batch` yields up to [`BATCH_SIZE`] rows, `close`
//!   flushes per-operator statistics;
//! * **pipeline breakers are explicit**: hash-join build sides, sort
//!   runs, `ν`/aggregate/set-operation inputs and PNHL operands are
//!   drained into canonical [`Set`]s (preserving the algebra's
//!   deduplicating semantics), while selections, maps, projections,
//!   unnests, assembly and every join **probe side stream** batch by
//!   batch;
//! * each operator is wrapped in an [`Instrument`] shim recording
//!   rows/batches emitted into [`Stats::operators`].
//!
//! Entry point: [`PhysPlan::execute_streaming_on`] (in
//! [`crate::physical`]), or [`crate::plan::Plan::execute_streaming`].

use super::hashjoin::{self, JoinHashTable, MemberHashTable, MemberShape};
use super::sortmerge::SortMergeState;
use super::{pnhl, MatchKeys, PhysPlan};
use crate::eval::{aggregate, nest_set, unnest_value, Env, EvalError, Evaluator};
use crate::stats::{OpStats, Stats};
use oodb_adl::expr::{AggOp, Expr, JoinKind, SetOp};
use oodb_catalog::Database;
use oodb_value::{Name, Set, Value};

/// Rows per batch. Batches are soft-bounded: operators that expand rows
/// (unnest, inner joins) may exceed it rather than split mid-tuple-group.
pub const BATCH_SIZE: usize = 1024;

/// One batch of rows flowing between operators.
pub type Batch = Vec<Value>;

/// A boxed operator node.
pub type BoxOp = Box<dyn Operator>;

/// Everything an operator needs at runtime: the expression interpreter
/// (for predicates, keys and map bodies), the variable environment, and
/// the shared statistics sink.
pub struct ExecCtx<'db, 's> {
    /// Interpreter over the bound database.
    pub ev: Evaluator<'db>,
    /// Lexically scoped variable bindings.
    pub env: Env,
    /// Work counters shared by the whole pipeline.
    pub stats: &'s mut Stats,
}

/// A pull-based physical operator.
pub trait Operator {
    /// Prepares this operator and (recursively) its children. Blocking
    /// work (hash build, sorting) is deferred to the first
    /// [`Operator::next_batch`] so `open` stays cheap.
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError>;

    /// The next batch of rows; `None` once exhausted.
    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError>;

    /// Releases state and flushes instrumentation (idempotent).
    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>);

    /// True when this operator produces exactly one (possibly non-set)
    /// value instead of a stream of set elements.
    fn scalar(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Draining helpers (the explicit pipeline breakers).

fn drain_rows(op: &mut BoxOp, ctx: &mut ExecCtx<'_, '_>) -> Result<Vec<Value>, EvalError> {
    let mut rows = Vec::new();
    while let Some(b) = op.next_batch(ctx)? {
        rows.extend(b);
    }
    Ok(rows)
}

fn drain_scalar(op: &mut BoxOp, ctx: &mut ExecCtx<'_, '_>) -> Result<Value, EvalError> {
    debug_assert!(op.scalar());
    let rows = drain_rows(op, ctx)?;
    debug_assert_eq!(rows.len(), 1, "scalar operators emit exactly one value");
    Ok(rows
        .into_iter()
        .next()
        .expect("scalar operator emitted a value"))
}

/// Materializes a child as a canonical set — the deduplicating boundary
/// every blocking input goes through, mirroring `into_set()` on the
/// materialized path (including its error on non-set scalars).
fn drain_to_set(op: &mut BoxOp, ctx: &mut ExecCtx<'_, '_>) -> Result<Set, EvalError> {
    if op.scalar() {
        let v = drain_scalar(op, ctx)?;
        Ok(v.into_set()?)
    } else {
        Ok(Set::from_values(drain_rows(op, ctx)?))
    }
}

/// Materializes a child as a single value (sets stay sets).
fn drain_value(op: &mut BoxOp, ctx: &mut ExecCtx<'_, '_>) -> Result<Value, EvalError> {
    if op.scalar() {
        drain_scalar(op, ctx)
    } else {
        Ok(Value::Set(Set::from_values(drain_rows(op, ctx)?)))
    }
}

/// Buffered rows emitted in [`BATCH_SIZE`] chunks (blocking operators'
/// output side).
#[derive(Debug, Default)]
struct Buffered {
    rows: Vec<Value>,
    pos: usize,
}

impl Buffered {
    fn new(rows: Vec<Value>) -> Self {
        Buffered { rows, pos: 0 }
    }

    fn next_chunk(&mut self) -> Option<Batch> {
        if self.pos >= self.rows.len() {
            return None;
        }
        let end = (self.pos + BATCH_SIZE).min(self.rows.len());
        // Move rows out (leaving cheap `Null`s) — each buffered row is
        // emitted exactly once, so no deep clone is needed.
        let chunk = self.rows[self.pos..end]
            .iter_mut()
            .map(|v| std::mem::replace(v, Value::Null))
            .collect();
        self.pos = end;
        Some(chunk)
    }
}

// ---------------------------------------------------------------------
// Instrumentation.

/// Wraps every compiled operator, counting rows/batches emitted and
/// reporting them into [`Stats::operators`] when the stream ends.
struct Instrument {
    label: String,
    inner: BoxOp,
    rows_out: u64,
    batches: u64,
    reported: bool,
}

impl Instrument {
    fn report(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        if !self.reported {
            self.reported = true;
            ctx.stats.operators.push(OpStats {
                op: self.label.clone(),
                rows_out: self.rows_out,
                batches: self.batches,
            });
        }
    }
}

impl Operator for Instrument {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.rows_out = 0;
        self.batches = 0;
        self.reported = false;
        self.inner.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        match self.inner.next_batch(ctx)? {
            Some(b) => {
                self.rows_out += b.len() as u64;
                self.batches += 1;
                Ok(Some(b))
            }
            None => {
                self.report(ctx);
                Ok(None)
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.report(ctx);
        self.inner.close(ctx);
    }

    fn scalar(&self) -> bool {
        self.inner.scalar()
    }
}

// ---------------------------------------------------------------------
// Leaf operators.

/// Base-table scan, emitted in batches.
struct ScanOp {
    table: Name,
    buf: Option<Buffered>,
}

impl Operator for ScanOp {
    fn open(&mut self, _ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.buf.is_none() {
            let t = ctx
                .ev
                .db()
                .table(&self.table)
                .ok_or_else(|| EvalError::UnknownTable(self.table.clone()))?;
            ctx.stats.rows_scanned += t.len() as u64;
            self.buf = Some(Buffered::new(t.as_set_value().into_set()?.into_values()));
        }
        Ok(self.buf.as_mut().expect("buffered above").next_chunk())
    }

    fn close(&mut self, _ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
    }
}

/// What a scalar leaf computes.
enum ScalarKind {
    /// A constant.
    Literal(Value),
    /// An arbitrary expression handed to the reference evaluator.
    Eval(Expr),
    /// An aggregate over a drained child.
    Agg { op: AggOp, child: BoxOp },
}

/// Single-value producer (`Literal`, `Eval`, aggregates).
struct ScalarOp {
    kind: ScalarKind,
    done: bool,
}

impl Operator for ScalarOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.done = false;
        if let ScalarKind::Agg { child, .. } = &mut self.kind {
            child.open(ctx)?;
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let v = match &mut self.kind {
            ScalarKind::Literal(v) => v.clone(),
            ScalarKind::Eval(e) => ctx.ev.eval(e, &mut ctx.env, ctx.stats)?,
            ScalarKind::Agg { op, child } => {
                let s = drain_to_set(child, ctx)?;
                aggregate(*op, &s)?
            }
        };
        Ok(Some(vec![v]))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        if let ScalarKind::Agg { child, .. } = &mut self.kind {
            child.close(ctx);
        }
    }

    fn scalar(&self) -> bool {
        true
    }
}

/// Adapts a scalar child for a row-consuming parent: the single value
/// must be a set, whose elements become the stream.
struct ScalarRows {
    child: BoxOp,
    buf: Option<Buffered>,
}

impl Operator for ScalarRows {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        self.child.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.buf.is_none() {
            let v = drain_scalar(&mut self.child, ctx)?;
            self.buf = Some(Buffered::new(v.into_set()?.into_values()));
        }
        Ok(self.buf.as_mut().expect("buffered above").next_chunk())
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
        self.child.close(ctx);
    }
}

// ---------------------------------------------------------------------
// Streaming one-child transforms.

/// The per-row transforms that never block the pipeline.
enum RowTransform {
    /// `σ` — predicate filter.
    Filter { var: Name, pred: Expr },
    /// `α` — function application.
    Map { var: Name, body: Expr },
    /// `π`.
    Project { attrs: Vec<Name> },
    /// `ρ`.
    Rename { pairs: Vec<(Name, Name)> },
    /// `μ`.
    Unnest { attr: Name },
    /// `⋃` — every input row must itself be a set.
    Flatten,
}

/// Applies a [`RowTransform`] to each input batch as it streams past.
struct TransformOp {
    t: RowTransform,
    child: BoxOp,
}

impl TransformOp {
    fn apply(&self, batch: Batch, ctx: &mut ExecCtx<'_, '_>) -> Result<Vec<Value>, EvalError> {
        let mut out = Vec::with_capacity(batch.len());
        match &self.t {
            RowTransform::Filter { var, pred } => {
                for elem in batch {
                    ctx.stats.predicate_evals += 1;
                    ctx.env.push(var, elem.clone());
                    let keep = ctx.ev.eval(pred, &mut ctx.env, ctx.stats);
                    ctx.env.pop();
                    if keep?.as_bool()? {
                        out.push(elem);
                    }
                }
            }
            RowTransform::Map { var, body } => {
                for elem in batch {
                    ctx.stats.predicate_evals += 1;
                    ctx.env.push(var, elem);
                    let r = ctx.ev.eval(body, &mut ctx.env, ctx.stats);
                    ctx.env.pop();
                    out.push(r?);
                }
            }
            RowTransform::Project { attrs } => {
                for elem in &batch {
                    out.push(Value::Tuple(elem.as_tuple()?.subscript(attrs)?));
                }
            }
            RowTransform::Rename { pairs } => {
                for elem in &batch {
                    let mut t = elem.as_tuple()?.clone();
                    for (old, new) in pairs {
                        t = t.rename(old, new)?;
                    }
                    out.push(Value::Tuple(t));
                }
            }
            RowTransform::Unnest { attr } => {
                for elem in &batch {
                    unnest_value(elem, attr, &mut out)?;
                }
            }
            RowTransform::Flatten => {
                for elem in batch {
                    match elem {
                        Value::Set(s) => out.extend(s.into_values()),
                        other => {
                            return Err(EvalError::Value(oodb_value::ValueError::NotASet(
                                other.to_string(),
                            )))
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl Operator for TransformOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.child.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        loop {
            let Some(batch) = self.child.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = self.apply(batch, ctx)?;
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.child.close(ctx);
    }
}

/// Assembly (\[BlMG93\]): pointer dereferencing is per-tuple work, so the
/// operator streams its input through [`hashjoin`]-independent
/// [`super::assembly::assemble_batch`] calls.
struct AssembleOp {
    attr: Name,
    class: Name,
    set_valued: bool,
    checked: bool,
    child: BoxOp,
}

impl Operator for AssembleOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.checked = false;
        self.child.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if !self.checked {
            ctx.ev
                .db()
                .catalog()
                .class(&self.class)
                .ok_or_else(|| EvalError::UnknownClass(self.class.clone()))?;
            self.checked = true;
        }
        loop {
            let Some(batch) = self.child.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = super::assembly::assemble_batch(
                &batch,
                &self.attr,
                &self.class,
                self.set_valued,
                ctx.ev.db(),
                ctx.stats,
            )?;
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.child.close(ctx);
    }
}

// ---------------------------------------------------------------------
// Blocking one/two-child operators.

/// What a blocking (fully materializing) operator computes.
enum BlockingKind {
    /// `ν` — grouping needs the whole input.
    Nest {
        attrs: Vec<Name>,
        as_attr: Name,
        child: BoxOp,
    },
    /// `∪ ∩ −` over two drained sets.
    SetOp {
        op: SetOp,
        left: BoxOp,
        right: BoxOp,
    },
    /// PNHL — both operands drained, output emitted in batches.
    Pnhl {
        outer: BoxOp,
        set_attr: Name,
        inner: BoxOp,
        keys: Box<MatchKeys>,
        budget: usize,
    },
    /// Unnest–join–nest materialization — both operands drained, output
    /// emitted in batches.
    UnnestJoin {
        outer: BoxOp,
        set_attr: Name,
        inner: BoxOp,
        keys: Box<MatchKeys>,
    },
}

/// Drains its input(s), computes, then emits the result in batches.
struct BlockingOp {
    kind: BlockingKind,
    buf: Option<Buffered>,
}

impl Operator for BlockingOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.buf = None;
        match &mut self.kind {
            BlockingKind::Nest { child, .. } => child.open(ctx),
            BlockingKind::SetOp { left, right, .. } => {
                left.open(ctx)?;
                right.open(ctx)
            }
            BlockingKind::Pnhl { outer, inner, .. }
            | BlockingKind::UnnestJoin { outer, inner, .. } => {
                outer.open(ctx)?;
                inner.open(ctx)
            }
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.buf.is_none() {
            let rows = match &mut self.kind {
                BlockingKind::Nest {
                    attrs,
                    as_attr,
                    child,
                } => {
                    let s = drain_to_set(child, ctx)?;
                    nest_set(&s, attrs, as_attr)?.into_set()?.into_values()
                }
                BlockingKind::SetOp { op, left, right } => {
                    let l = drain_to_set(left, ctx)?;
                    let r = drain_to_set(right, ctx)?;
                    let out = match op {
                        SetOp::Union => l.union(&r),
                        SetOp::Intersect => l.intersect(&r),
                        SetOp::Difference => l.difference(&r),
                    };
                    out.into_values()
                }
                BlockingKind::Pnhl {
                    outer,
                    set_attr,
                    inner,
                    keys,
                    budget,
                } => {
                    let o = drain_to_set(outer, ctx)?;
                    let i = drain_to_set(inner, ctx)?;
                    pnhl::pnhl_rows(
                        &o,
                        set_attr,
                        &i,
                        keys,
                        *budget,
                        &ctx.ev,
                        &mut ctx.env,
                        ctx.stats,
                    )?
                }
                BlockingKind::UnnestJoin {
                    outer,
                    set_attr,
                    inner,
                    keys,
                } => {
                    let o = drain_to_set(outer, ctx)?;
                    let i = drain_to_set(inner, ctx)?;
                    pnhl::unnest_join_rows(
                        &o,
                        set_attr,
                        &i,
                        keys,
                        &ctx.ev,
                        &mut ctx.env,
                        ctx.stats,
                    )?
                }
            };
            self.buf = Some(Buffered::new(rows));
        }
        Ok(self.buf.as_mut().expect("buffered above").next_chunk())
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.buf = None;
        match &mut self.kind {
            BlockingKind::Nest { child, .. } => child.close(ctx),
            BlockingKind::SetOp { left, right, .. } => {
                left.close(ctx);
                right.close(ctx);
            }
            BlockingKind::Pnhl { outer, inner, .. }
            | BlockingKind::UnnestJoin { outer, inner, .. } => {
                outer.close(ctx);
                inner.close(ctx);
            }
        }
    }
}

/// `let` — runs the value subplan once, then streams the body with the
/// binding pushed around each pull (strict scoping: the binding never
/// leaks into sibling subtrees between pulls).
struct LetOp {
    var: Name,
    value: BoxOp,
    body: BoxOp,
    bound: Option<Value>,
}

impl Operator for LetOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.bound = None;
        self.value.open(ctx)?;
        self.body.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.bound.is_none() {
            self.bound = Some(drain_value(&mut self.value, ctx)?);
        }
        // Move the binding in for the pull and take it back afterwards
        // (body pulls leave the env stack balanced), so the body streams
        // with no buffering and no per-pull deep clone.
        let v = self.bound.take().expect("bound above");
        ctx.env.push(&self.var, v);
        let r = self.body.next_batch(ctx);
        let (name, v) = ctx.env.pop_binding().expect("balanced env stack");
        debug_assert_eq!(
            name.as_ref(),
            self.var.as_ref(),
            "body left the env unbalanced"
        );
        self.bound = Some(v);
        r
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.bound = None;
        self.value.close(ctx);
        self.body.close(ctx);
    }

    fn scalar(&self) -> bool {
        self.body.scalar()
    }
}

// ---------------------------------------------------------------------
// Joins: build once, stream the probe side.

/// Extended Cartesian product: right side drained, left side streamed.
struct ProductOp {
    left: BoxOp,
    right: BoxOp,
    right_set: Option<Set>,
}

impl Operator for ProductOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.right_set = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.right_set.is_none() {
            self.right_set = Some(drain_to_set(&mut self.right, ctx)?);
        }
        let r = self.right_set.as_ref().expect("drained above");
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let mut out = Vec::with_capacity(batch.len() * r.len());
            for x in &batch {
                for y in r.iter() {
                    ctx.stats.loop_iterations += 1;
                    out.push(Value::Tuple(x.as_tuple()?.concat(y.as_tuple()?)?));
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.right_set = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }
}

/// Whether a hash-family operator produces join rows or nestjoin groups.
enum HashMode {
    /// `⋈ ⋉ ▷ ⟕` on equi-keys.
    Join {
        kind: JoinKind,
        right_attrs: Vec<Name>,
    },
    /// `⊣` — one output row per probe row, carrying its group.
    Nest { rfunc: Option<Expr>, as_attr: Name },
}

/// Hash join family on extracted equi-keys: build on the right (a
/// pipeline breaker), then probe batches as the left side streams.
struct HashJoinOp {
    mode: HashMode,
    lvar: Name,
    rvar: Name,
    lkeys: Vec<Expr>,
    rkeys: Vec<Expr>,
    residual: Option<Expr>,
    left: BoxOp,
    right: BoxOp,
    table: Option<JoinHashTable>,
}

impl Operator for HashJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.table = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.table.is_none() {
            let build = drain_to_set(&mut self.right, ctx)?;
            self.table = Some(JoinHashTable::build(
                &self.rkeys,
                &self.rvar,
                build.into_values(),
                &ctx.ev,
                &mut ctx.env,
                ctx.stats,
            )?);
        }
        let table = self.table.as_ref().expect("built above");
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = match &self.mode {
                HashMode::Join { kind, right_attrs } => table.probe_batch(
                    *kind,
                    &self.lvar,
                    &self.rvar,
                    &self.lkeys,
                    self.residual.as_ref(),
                    right_attrs,
                    &batch,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
                HashMode::Nest { rfunc, as_attr } => table.probe_nest_batch(
                    &self.lvar,
                    &self.rvar,
                    &self.lkeys,
                    self.residual.as_ref(),
                    rfunc.as_ref(),
                    as_attr,
                    &batch,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
            };
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.table = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }
}

/// Membership-keyed hash join family (`p.pid ∈ s.parts` shapes).
struct MemberJoinOp {
    mode: HashMode,
    lvar: Name,
    rvar: Name,
    shape: MemberShape,
    residual: Option<Expr>,
    left: BoxOp,
    right: BoxOp,
    table: Option<MemberHashTable>,
}

impl Operator for MemberJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.table = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.table.is_none() {
            let build = drain_to_set(&mut self.right, ctx)?;
            self.table = Some(MemberHashTable::build(
                &self.shape,
                &self.rvar,
                build.into_values(),
                &ctx.ev,
                &mut ctx.env,
                ctx.stats,
            )?);
        }
        let table = self.table.as_ref().expect("built above");
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = match &self.mode {
                HashMode::Join { kind, right_attrs } => table.probe_batch(
                    *kind,
                    &self.lvar,
                    &self.rvar,
                    &self.shape,
                    self.residual.as_ref(),
                    right_attrs,
                    &batch,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
                HashMode::Nest { rfunc, as_attr } => table.probe_nest_batch(
                    &self.lvar,
                    &self.rvar,
                    &self.shape,
                    self.residual.as_ref(),
                    rfunc.as_ref(),
                    as_attr,
                    &batch,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
            };
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.table = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }
}

/// Index nested-loop join: the left side streams, each row probing the
/// right extent's secondary hash index.
struct IndexNLJoinOp {
    kind: JoinKind,
    lvar: Name,
    rvar: Name,
    lkey: Expr,
    attr: Name,
    extent: Name,
    residual: Option<Expr>,
    right_attrs: Vec<Name>,
    checked: bool,
    left: BoxOp,
}

impl Operator for IndexNLJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.checked = false;
        self.left.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if !self.checked {
            // Resolve the extent before the first pull so an unknown
            // table errors even when the probe side is empty, exactly
            // like the materialized path.
            ctx.ev
                .db()
                .table(&self.extent)
                .ok_or_else(|| EvalError::UnknownTable(self.extent.clone()))?;
            self.checked = true;
        }
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let out = hashjoin::index_nl_join_batch(
                self.kind,
                &self.lvar,
                &self.rvar,
                &self.lkey,
                &self.attr,
                &self.extent,
                self.residual.as_ref(),
                &self.right_attrs,
                &batch,
                &ctx.ev,
                &mut ctx.env,
                ctx.stats,
            )?;
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.left.close(ctx);
    }
}

/// Nested-loop fallback (join and nestjoin): the right side is drained
/// once, the left side streams against it.
struct NLJoinOp {
    mode: HashMode,
    lvar: Name,
    rvar: Name,
    pred: Expr,
    left: BoxOp,
    right: BoxOp,
    right_set: Option<Set>,
}

impl Operator for NLJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.right_set = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.right_set.is_none() {
            self.right_set = Some(drain_to_set(&mut self.right, ctx)?);
        }
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let r = self.right_set.as_ref().expect("drained above");
            let out = match &self.mode {
                HashMode::Join { kind, right_attrs } => hashjoin::nl_join_batch(
                    *kind,
                    &self.lvar,
                    &self.rvar,
                    &self.pred,
                    right_attrs,
                    &batch,
                    r,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
                HashMode::Nest { rfunc, as_attr } => hashjoin::nl_nestjoin_batch(
                    &self.lvar,
                    &self.rvar,
                    &self.pred,
                    rfunc.as_ref(),
                    as_attr,
                    &batch,
                    r,
                    &ctx.ev,
                    &mut ctx.env,
                    ctx.stats,
                )?,
            };
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.right_set = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }
}

/// Sort-merge join: both runs sorted up front (the blocking phase), then
/// match groups are emitted chunk by chunk from the merge cursor.
struct SortMergeJoinOp {
    lvar: Name,
    rvar: Name,
    lkeys: Vec<Expr>,
    rkeys: Vec<Expr>,
    residual: Option<Expr>,
    left: BoxOp,
    right: BoxOp,
    state: Option<SortMergeState>,
}

impl Operator for SortMergeJoinOp {
    fn open(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<(), EvalError> {
        self.state = None;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx<'_, '_>) -> Result<Option<Batch>, EvalError> {
        if self.state.is_none() {
            let l = drain_to_set(&mut self.left, ctx)?;
            let r = drain_to_set(&mut self.right, ctx)?;
            self.state = Some(SortMergeState::build(
                &self.lvar,
                &self.rvar,
                &self.lkeys,
                &self.rkeys,
                l.into_values(),
                r.into_values(),
                &ctx.ev,
                &mut ctx.env,
                ctx.stats,
            )?);
        }
        self.state.as_mut().expect("built above").next_chunk(
            &self.lvar,
            &self.rvar,
            self.residual.as_ref(),
            BATCH_SIZE,
            &ctx.ev,
            &mut ctx.env,
            ctx.stats,
        )
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_, '_>) {
        self.state = None;
        self.left.close(ctx);
        self.right.close(ctx);
    }
}

// ---------------------------------------------------------------------
// Compilation.

impl PhysPlan {
    /// Compiles this plan into a streaming operator tree. Every node is
    /// wrapped in an instrumentation shim that records rows/batches
    /// emitted into [`Stats::operators`].
    pub fn compile(&self) -> BoxOp {
        let label = self.op_label();
        let inner = self.compile_node();
        Box::new(Instrument {
            label,
            inner,
            rows_out: 0,
            batches: 0,
            reported: false,
        })
    }

    /// Compiles a child whose parent consumes rows: scalar-shaped nodes
    /// are adapted so their single set value streams as elements.
    fn compile_rows(&self) -> BoxOp {
        let op = self.compile();
        if op.scalar() {
            Box::new(ScalarRows {
                child: op,
                buf: None,
            })
        } else {
            op
        }
    }

    fn compile_node(&self) -> BoxOp {
        match self {
            PhysPlan::Scan(name) => Box::new(ScanOp {
                table: name.clone(),
                buf: None,
            }),
            PhysPlan::Literal(v) => Box::new(ScalarOp {
                kind: ScalarKind::Literal(v.clone()),
                done: false,
            }),
            PhysPlan::Eval(e) => Box::new(ScalarOp {
                kind: ScalarKind::Eval(e.clone()),
                done: false,
            }),
            PhysPlan::AggNode { op, input } => Box::new(ScalarOp {
                kind: ScalarKind::Agg {
                    op: *op,
                    child: input.compile_rows(),
                },
                done: false,
            }),
            PhysPlan::Filter { var, pred, input } => Box::new(TransformOp {
                t: RowTransform::Filter {
                    var: var.clone(),
                    pred: pred.clone(),
                },
                child: input.compile_rows(),
            }),
            PhysPlan::MapOp { var, body, input } => Box::new(TransformOp {
                t: RowTransform::Map {
                    var: var.clone(),
                    body: body.clone(),
                },
                child: input.compile_rows(),
            }),
            PhysPlan::ProjectOp { attrs, input } => Box::new(TransformOp {
                t: RowTransform::Project {
                    attrs: attrs.clone(),
                },
                child: input.compile_rows(),
            }),
            PhysPlan::RenameOp { pairs, input } => Box::new(TransformOp {
                t: RowTransform::Rename {
                    pairs: pairs.clone(),
                },
                child: input.compile_rows(),
            }),
            PhysPlan::UnnestOp { attr, input } => Box::new(TransformOp {
                t: RowTransform::Unnest { attr: attr.clone() },
                child: input.compile_rows(),
            }),
            PhysPlan::FlattenOp { input } => Box::new(TransformOp {
                t: RowTransform::Flatten,
                child: input.compile_rows(),
            }),
            PhysPlan::NestOp {
                attrs,
                as_attr,
                input,
            } => Box::new(BlockingOp {
                kind: BlockingKind::Nest {
                    attrs: attrs.clone(),
                    as_attr: as_attr.clone(),
                    child: input.compile_rows(),
                },
                buf: None,
            }),
            PhysPlan::SetOpNode { op, left, right } => Box::new(BlockingOp {
                kind: BlockingKind::SetOp {
                    op: *op,
                    left: left.compile_rows(),
                    right: right.compile_rows(),
                },
                buf: None,
            }),
            PhysPlan::Pnhl {
                outer,
                set_attr,
                inner,
                keys,
                budget,
            } => Box::new(BlockingOp {
                kind: BlockingKind::Pnhl {
                    outer: outer.compile_rows(),
                    set_attr: set_attr.clone(),
                    inner: inner.compile_rows(),
                    keys: Box::new(keys.clone()),
                    budget: *budget,
                },
                buf: None,
            }),
            PhysPlan::UnnestJoin {
                outer,
                set_attr,
                inner,
                keys,
            } => Box::new(BlockingOp {
                kind: BlockingKind::UnnestJoin {
                    outer: outer.compile_rows(),
                    set_attr: set_attr.clone(),
                    inner: inner.compile_rows(),
                    keys: Box::new(keys.clone()),
                },
                buf: None,
            }),
            PhysPlan::LetOp { var, value, body } => Box::new(LetOp {
                var: var.clone(),
                value: value.compile(),
                body: body.compile(),
                bound: None,
            }),
            PhysPlan::ProductOp { left, right } => Box::new(ProductOp {
                left: left.compile_rows(),
                right: right.compile_rows(),
                right_set: None,
            }),
            PhysPlan::HashJoin {
                kind,
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                right_attrs,
                left,
                right,
            } => Box::new(HashJoinOp {
                mode: HashMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkeys: lkeys.clone(),
                rkeys: rkeys.clone(),
                residual: residual.clone(),
                left: left.compile_rows(),
                right: right.compile_rows(),
                table: None,
            }),
            PhysPlan::HashNestJoin {
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => Box::new(HashJoinOp {
                mode: HashMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkeys: lkeys.clone(),
                rkeys: rkeys.clone(),
                residual: residual.clone(),
                left: left.compile_rows(),
                right: right.compile_rows(),
                table: None,
            }),
            PhysPlan::HashMemberJoin {
                kind,
                lvar,
                rvar,
                shape,
                residual,
                right_attrs,
                left,
                right,
            } => Box::new(MemberJoinOp {
                mode: HashMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                shape: shape.clone(),
                residual: residual.clone(),
                left: left.compile_rows(),
                right: right.compile_rows(),
                table: None,
            }),
            PhysPlan::MemberNestJoin {
                lvar,
                rvar,
                shape,
                residual,
                rfunc,
                as_attr,
                left,
                right,
            } => Box::new(MemberJoinOp {
                mode: HashMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                shape: shape.clone(),
                residual: residual.clone(),
                left: left.compile_rows(),
                right: right.compile_rows(),
                table: None,
            }),
            PhysPlan::IndexNLJoin {
                kind,
                lvar,
                rvar,
                lkey,
                attr,
                extent,
                residual,
                right_attrs,
                left,
            } => Box::new(IndexNLJoinOp {
                kind: *kind,
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkey: lkey.clone(),
                attr: attr.clone(),
                extent: extent.clone(),
                residual: residual.clone(),
                right_attrs: right_attrs.clone(),
                checked: false,
                left: left.compile_rows(),
            }),
            PhysPlan::NLJoin {
                kind,
                lvar,
                rvar,
                pred,
                right_attrs,
                left,
                right,
            } => Box::new(NLJoinOp {
                mode: HashMode::Join {
                    kind: *kind,
                    right_attrs: right_attrs.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                pred: pred.clone(),
                left: left.compile_rows(),
                right: right.compile_rows(),
                right_set: None,
            }),
            PhysPlan::NLNestJoin {
                lvar,
                rvar,
                pred,
                rfunc,
                as_attr,
                left,
                right,
            } => Box::new(NLJoinOp {
                mode: HashMode::Nest {
                    rfunc: rfunc.clone(),
                    as_attr: as_attr.clone(),
                },
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                pred: pred.clone(),
                left: left.compile_rows(),
                right: right.compile_rows(),
                right_set: None,
            }),
            PhysPlan::SortMergeJoin {
                lvar,
                rvar,
                lkeys,
                rkeys,
                residual,
                left,
                right,
            } => Box::new(SortMergeJoinOp {
                lvar: lvar.clone(),
                rvar: rvar.clone(),
                lkeys: lkeys.clone(),
                rkeys: rkeys.clone(),
                residual: residual.clone(),
                left: left.compile_rows(),
                right: right.compile_rows(),
                state: None,
            }),
            PhysPlan::Assemble {
                input,
                attr,
                class,
                set_valued,
            } => Box::new(AssembleOp {
                attr: attr.clone(),
                class: class.clone(),
                set_valued: *set_valued,
                checked: false,
                child: input.compile_rows(),
            }),
        }
    }

    /// Short operator label used by the per-operator statistics.
    pub fn op_label(&self) -> String {
        match self {
            PhysPlan::Scan(n) => format!("Scan({n})"),
            PhysPlan::Literal(_) => "Literal".into(),
            PhysPlan::Eval(_) => "Eval".into(),
            PhysPlan::Filter { .. } => "Filter".into(),
            PhysPlan::MapOp { .. } => "Map".into(),
            PhysPlan::ProjectOp { .. } => "Project".into(),
            PhysPlan::RenameOp { .. } => "Rename".into(),
            PhysPlan::UnnestOp { attr, .. } => format!("Unnest({attr})"),
            PhysPlan::NestOp { as_attr, .. } => format!("Nest({as_attr})"),
            PhysPlan::FlattenOp { .. } => "Flatten".into(),
            PhysPlan::SetOpNode { op, .. } => format!("SetOp({})", op.symbol()),
            PhysPlan::AggNode { op, .. } => format!("Agg({})", op.name()),
            PhysPlan::LetOp { var, .. } => format!("Let({var})"),
            PhysPlan::ProductOp { .. } => "Product".into(),
            PhysPlan::HashJoin { kind, .. } => format!("HashJoin({kind:?})"),
            PhysPlan::HashMemberJoin { kind, .. } => format!("HashMemberJoin({kind:?})"),
            PhysPlan::IndexNLJoin { kind, .. } => format!("IndexNLJoin({kind:?})"),
            PhysPlan::NLJoin { kind, .. } => format!("NLJoin({kind:?})"),
            PhysPlan::SortMergeJoin { .. } => "SortMergeJoin".into(),
            PhysPlan::HashNestJoin { as_attr, .. } => format!("HashNestJoin({as_attr})"),
            PhysPlan::MemberNestJoin { as_attr, .. } => format!("MemberNestJoin({as_attr})"),
            PhysPlan::NLNestJoin { as_attr, .. } => format!("NLNestJoin({as_attr})"),
            PhysPlan::Pnhl { set_attr, .. } => format!("PNHL({set_attr})"),
            PhysPlan::UnnestJoin { set_attr, .. } => format!("UnnestJoin({set_attr})"),
            PhysPlan::Assemble { attr, class, .. } => format!("Assemble({attr}->{class})"),
        }
    }
}

/// Drives a compiled plan to completion against `db`, mirroring the
/// result contract of the materialized executor: row-producing roots
/// collect into a canonical set, scalar roots return their single value.
pub fn run(plan: &PhysPlan, db: &Database, stats: &mut Stats) -> Result<Value, EvalError> {
    let mut ctx = ExecCtx {
        ev: Evaluator::new(db),
        env: Env::new(),
        stats,
    };
    let mut root = plan.compile();
    root.open(&mut ctx)?;
    let result = if root.scalar() {
        drain_scalar(&mut root, &mut ctx)
    } else {
        drain_rows(&mut root, &mut ctx).map(|rows| Value::Set(Set::from_values(rows)))
    };
    root.close(&mut ctx);
    let v = result?;
    if let Value::Set(s) = &v {
        ctx.stats.output_rows += s.len() as u64;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinAlgo, Planner, PlannerConfig};
    use oodb_adl::dsl::*;
    use oodb_catalog::fixtures::{figure3_db, supplier_part_db};

    fn both_paths(db: &Database, e: &Expr) -> (Value, Stats, Value, Stats) {
        let plan = Planner::new(db).plan(e).unwrap();
        let mut ms = Stats::new();
        let materialized = plan.execute(&mut ms).unwrap();
        let mut ss = Stats::new();
        let streamed = plan.execute_streaming(&mut ss).unwrap();
        (materialized, ms, streamed, ss)
    }

    #[test]
    fn streaming_agrees_on_scan_filter_map() {
        let db = supplier_part_db();
        let e = map(
            "p",
            var("p").field("pname"),
            select(
                "p",
                eq(var("p").field("color"), str_lit("red")),
                table("PART"),
            ),
        );
        let (m, ms, s, ss) = both_paths(&db, &e);
        assert_eq!(m, s);
        // identical classic work profile…
        assert_eq!(ms.rows_scanned, ss.rows_scanned);
        assert_eq!(ms.predicate_evals, ss.predicate_evals);
        // …plus the per-operator profile only streaming records
        assert!(ms.operators.is_empty());
        assert_eq!(
            ss.operators.len(),
            3,
            "scan, filter, map: {:?}",
            ss.operators
        );
        let scan = ss.operator("Scan(PART)").unwrap();
        assert_eq!(scan.rows_out, 7);
        assert_eq!(scan.batches, 1);
        let filter = ss.operator("Filter").unwrap();
        assert_eq!(filter.rows_out, 3);
    }

    #[test]
    fn streaming_agrees_on_every_join_algorithm() {
        let db = figure3_db();
        let e = join(
            "x",
            "y",
            eq(var("x").field("b"), var("y").field("d")),
            table("X"),
            table("Y"),
        );
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::NestedLoop] {
            let planner = Planner::with_config(
                &db,
                PlannerConfig {
                    join_algo: algo,
                    ..Default::default()
                },
            );
            let plan = planner.plan(&e).unwrap();
            let mut ms = Stats::new();
            let m = plan.execute(&mut ms).unwrap();
            let mut ss = Stats::new();
            let s = plan.execute_streaming(&mut ss).unwrap();
            assert_eq!(m, s, "algo {algo:?}");
            assert!(!ss.operators.is_empty(), "algo {algo:?} not instrumented");
        }
    }

    #[test]
    fn streaming_agrees_on_member_semijoin_with_probe_stats() {
        let db = supplier_part_db();
        let e = semijoin(
            "s",
            "p",
            and(
                member(var("p").field("pid"), var("s").field("parts")),
                eq(var("p").field("color"), str_lit("red")),
            ),
            table("SUPPLIER"),
            table("PART"),
        );
        let (m, ms, s, ss) = both_paths(&db, &e);
        assert_eq!(m, s);
        assert_eq!(ms.hash_build_rows, ss.hash_build_rows);
        assert_eq!(ms.hash_probes, ss.hash_probes);
        assert_eq!(ss.loop_iterations, 0);
        let join_op = ss.operator("HashMemberJoin").unwrap();
        assert_eq!(join_op.rows_out, 3); // s1, s2, s3
    }

    #[test]
    fn streaming_agrees_on_nestjoin_pnhl_and_assembly() {
        let db = supplier_part_db();
        // membership nestjoin (Example Query 6 shape)
        let nj = nestjoin_with(
            "s",
            "p",
            member(var("p").field("pid"), var("s").field("parts")),
            var("p").field("pname"),
            "pnames",
            table("SUPPLIER"),
            table("PART"),
        );
        let (m, _, s, ss) = both_paths(&db, &nj);
        assert_eq!(m, s);
        assert_eq!(ss.operator("MemberNestJoin").unwrap().rows_out, 5);

        // §6.2 materialization: assembly (identity key) and PNHL
        let mat = map(
            "s",
            except(
                var("s"),
                vec![(
                    "parts",
                    select(
                        "p",
                        member(var("p").field("pid"), var("s").field("parts")),
                        table("PART"),
                    ),
                )],
            ),
            table("SUPPLIER"),
        );
        let (m2, _, s2, ss2) = both_paths(&db, &mat);
        assert_eq!(m2, s2);
        assert!(ss2.operator("Assemble").is_some(), "{:?}", ss2.operators);

        let pnhl_planner = Planner::with_config(
            &db,
            PlannerConfig {
                // rule-based so `prefer_assembly: false` really forces PNHL
                cost_based: false,
                prefer_assembly: false,
                pnhl_budget: 2,
                ..Default::default()
            },
        );
        let plan = pnhl_planner.plan(&mat).unwrap();
        let mut ss3 = Stats::new();
        let s3 = plan.execute_streaming(&mut ss3).unwrap();
        assert_eq!(m2, s3);
        assert!(ss3.operator("PNHL").is_some(), "{:?}", ss3.operators);
        assert_eq!(ss3.partitions, 4); // ⌈7 / 2⌉ segments
    }

    #[test]
    fn scalar_roots_return_plain_values() {
        let db = supplier_part_db();
        let count_plan = PhysPlan::AggNode {
            op: oodb_adl::AggOp::Count,
            input: Box::new(PhysPlan::Scan("PART".into())),
        };
        let mut stats = Stats::new();
        let v = count_plan.execute_streaming_on(&db, &mut stats).unwrap();
        assert_eq!(v, Value::Int(7));
        // aggregates drain their input through the instrumented pipeline
        assert!(stats.operator("Scan(PART)").is_some());

        let lit = PhysPlan::Literal(Value::str("hello"));
        let mut s2 = Stats::new();
        assert_eq!(
            lit.execute_streaming_on(&db, &mut s2).unwrap(),
            Value::str("hello")
        );
    }

    #[test]
    fn let_bindings_stay_scoped_to_the_body() {
        let db = supplier_part_db();
        let e = let_(
            "reds",
            map(
                "p",
                var("p").field("pid"),
                select(
                    "p",
                    eq(var("p").field("color"), str_lit("red")),
                    table("PART"),
                ),
            ),
            select(
                "s",
                exists("x", var("s").field("parts"), member(var("x"), var("reds"))),
                table("SUPPLIER"),
            ),
        );
        let (m, _, s, ss) = both_paths(&db, &e);
        assert_eq!(m, s);
        assert_eq!(s.as_set().unwrap().len(), 3);
        assert!(ss.operator("Let(reds)").is_some(), "{:?}", ss.operators);
    }

    #[test]
    fn large_scans_stream_in_multiple_batches() {
        use oodb_catalog::fixtures::supplier_part_catalog;
        use oodb_value::{Oid, Tuple};
        let mut db = Database::new(supplier_part_catalog()).unwrap();
        let n = 3 * BATCH_SIZE + 17;
        for i in 0..n {
            db.insert(
                "PART",
                Tuple::from_pairs([
                    ("pid", Value::Oid(Oid(1_000_000 + i as u64))),
                    ("pname", Value::str(&format!("part-{i}"))),
                    ("price", Value::Int((i % 97) as i64)),
                    ("color", Value::str(if i % 3 == 0 { "red" } else { "blue" })),
                ]),
            )
            .unwrap();
        }
        let e = select("p", lt(var("p").field("price"), int(50)), table("PART"));
        let plan = Planner::new(&db).plan(&e).unwrap();
        let mut ss = Stats::new();
        let got = plan.execute_streaming(&mut ss).unwrap();
        let scan = ss.operator("Scan(PART)").unwrap();
        assert_eq!(scan.rows_out, n as u64);
        assert_eq!(scan.batches, 4, "expected ⌈{n}/{BATCH_SIZE}⌉ batches");
        let filter = ss.operator("Filter").unwrap();
        assert!(filter.batches >= 2);
        assert_eq!(got.as_set().unwrap().len(), filter.rows_out as usize);
        // agrees with the materialized path
        let mut ms = Stats::new();
        assert_eq!(plan.execute(&mut ms).unwrap(), got);
    }

    #[test]
    fn product_and_setop_stream_correctly() {
        let db = supplier_part_db();
        let prod = PhysPlan::ProductOp {
            left: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["eid".into()],
                input: Box::new(PhysPlan::Scan("SUPPLIER".into())),
            }),
            right: Box::new(PhysPlan::ProjectOp {
                attrs: vec!["pid".into()],
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        let mut ss = Stats::new();
        let v = prod.execute_streaming_on(&db, &mut ss).unwrap();
        assert_eq!(v.as_set().unwrap().len(), 35);
        assert_eq!(ss.loop_iterations, 35);

        let inter = PhysPlan::SetOpNode {
            op: SetOp::Intersect,
            left: Box::new(PhysPlan::Filter {
                var: "p".into(),
                pred: eq(var("p").field("color"), str_lit("red")),
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
            right: Box::new(PhysPlan::Filter {
                var: "p".into(),
                pred: lt(var("p").field("price"), int(8)),
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        let mut s2 = Stats::new();
        let v2 = inter.execute_streaming_on(&db, &mut s2).unwrap();
        assert_eq!(v2.as_set().unwrap().len(), 1); // screw (red, 7)
    }

    #[test]
    fn index_nl_join_streams_with_index_probes() {
        let mut db = supplier_part_db();
        db.create_index("DELIVERY", "supplier").unwrap();
        let e = join(
            "s",
            "d",
            eq(var("s").field("eid"), var("d").field("supplier")),
            project(&["eid", "sname"], table("SUPPLIER")),
            table("DELIVERY"),
        );
        let plan = Planner::new(&db).plan(&e).unwrap();
        assert!(matches!(plan.phys, PhysPlan::IndexNLJoin { .. }));
        let mut ss = Stats::new();
        let s = plan.execute_streaming(&mut ss).unwrap();
        assert!(ss.index_probes > 0);
        assert!(ss.operator("IndexNLJoin").is_some());
        let mut ms = Stats::new();
        assert_eq!(plan.execute(&mut ms).unwrap(), s);
    }

    #[test]
    fn errors_propagate_through_the_pipeline() {
        let db = supplier_part_db();
        let bad = PhysPlan::Scan("NO_SUCH".into());
        let mut stats = Stats::new();
        assert!(matches!(
            bad.execute_streaming_on(&db, &mut stats),
            Err(EvalError::UnknownTable(_))
        ));
        // flatten of non-set rows errors exactly like the materialized path
        let flat = PhysPlan::FlattenOp {
            input: Box::new(PhysPlan::MapOp {
                var: "p".into(),
                body: var("p").field("pname"),
                input: Box::new(PhysPlan::Scan("PART".into())),
            }),
        };
        let mut s2 = Stats::new();
        let streaming_err = flat.execute_streaming_on(&db, &mut s2);
        let mut s3 = Stats::new();
        let materialized_err = flat.execute_on(&db, &mut s3);
        assert!(streaming_err.is_err());
        assert!(materialized_err.is_err());
    }
}
